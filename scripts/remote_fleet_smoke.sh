#!/usr/bin/env bash
# Remote-fleet smoke: exercise the address-book half of the scan
# fabric across real process boundaries.  Two pre-started --listen
# workers (plus assorted saboteurs) serve campaigns dialed through
# REPRO_DIST_ADDRESS_BOOK behind the HMAC handshake; every arm —
# remote-only, mixed spawned+remote, an injected auth_fail spawn, a
# wrong-secret remote, and a SIGKILLed-then-resumed coordinator — must
# produce status JSON byte-identical to an undisturbed spawn-only
# distributed run, which must itself match serial.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

WORK=$(mktemp -d)
WORKER_PIDS=()
cleanup() {
    for pid in "${WORKER_PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

SECRET=smoke-fleet-key
SPEC=(--preset tiny --protocol http --phi 0.95 --waves 2
      --reseed-mode interval --reseed-interval 0
      --shards 4 --executor distributed --batch-size 16384)

start_worker() {
    # start_worker <name> [env VAR=VALUE ...] -> announces port on stdout
    local name=$1; shift
    env "$@" python -m repro.scan.distributed --listen 127.0.0.1:0 \
        > "$WORK/$name.out" 2> "$WORK/$name.log" &
    WORKER_PIDS+=("$!")
    local port=""
    for _ in $(seq 1 100); do
        port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
               "$WORK/$name.out" | head -n 1)
        [ -n "$port" ] && break
        sleep 0.1
    done
    [ -n "$port" ] || {
        echo "worker $name never announced a port" >&2
        cat "$WORK/$name.log" >&2
        exit 1
    }
    echo "$port"
}

plan_and_run() {
    # plan_and_run <dir> [env VAR=VALUE ...]
    local dir=$1; shift
    python -m repro.orchestrator plan --dir "$dir" "${SPEC[@]}" > /dev/null
    env "$@" python -m repro.orchestrator run --dir "$dir" > /dev/null
    python -m repro.orchestrator status --dir "$dir" --json
}

echo "== undisturbed spawn-only distributed reference"
plan_and_run "$WORK/reference" \
    REPRO_DIST_WORKERS=2 REPRO_DIST_SECRET="$SECRET" \
    > "$WORK/reference.json"

echo "== pre-starting two --listen workers"
PORT_A=$(start_worker worker-a REPRO_DIST_SECRET="$SECRET")
PORT_B=$(start_worker worker-b REPRO_DIST_SECRET="$SECRET")
BOOK="127.0.0.1:$PORT_A,127.0.0.1:$PORT_B"
echo "   address book: $BOOK"

echo "== arm 1: remote-only fleet via the address book"
plan_and_run "$WORK/remote" \
    REPRO_DIST_WORKERS=2 REPRO_DIST_SECRET="$SECRET" \
    REPRO_DIST_ADDRESS_BOOK="$BOOK" \
    > "$WORK/remote.json"
diff "$WORK/remote.json" "$WORK/reference.json" \
    || { echo "remote-only fleet perturbed the campaign" >&2; exit 1; }

echo "== arm 2: mixed fleet with an injected auth_fail spawn"
plan_and_run "$WORK/mixed" \
    REPRO_DIST_WORKERS=3 REPRO_DIST_SECRET="$SECRET" \
    REPRO_DIST_ADDRESS_BOOK="$BOOK" \
    REPRO_FAULT_PLAN="auth_fail@0" \
    > "$WORK/mixed.json"
diff "$WORK/mixed.json" "$WORK/reference.json" \
    || { echo "auth_fail in the mixed fleet perturbed the campaign" >&2
         exit 1; }

echo "== arm 3: a wrong-secret remote is rejected, not fatal"
PORT_BAD=$(start_worker worker-bad REPRO_DIST_SECRET=not-the-key)
plan_and_run "$WORK/badsecret" \
    REPRO_DIST_WORKERS=3 REPRO_DIST_SECRET="$SECRET" \
    REPRO_DIST_ADDRESS_BOOK="$BOOK,127.0.0.1:$PORT_BAD" \
    > "$WORK/badsecret.json"
diff "$WORK/badsecret.json" "$WORK/reference.json" \
    || { echo "a wrong-secret remote perturbed the campaign" >&2; exit 1; }

echo "== arm 4: SIGKILL the coordinator, resume over the address book"
# Dedicated slow remotes (shard delay in *their* env) keep the kill
# window wide; the fleet is remote-only so killing the run process
# kills the coordinator but none of the workers.
PORT_S1=$(start_worker worker-s1 \
    REPRO_DIST_SECRET="$SECRET" REPRO_DIST_SHARD_DELAY=0.4)
PORT_S2=$(start_worker worker-s2 \
    REPRO_DIST_SECRET="$SECRET" REPRO_DIST_SHARD_DELAY=0.4)
SLOW_BOOK="127.0.0.1:$PORT_S1,127.0.0.1:$PORT_S2"
python -m repro.orchestrator plan --dir "$WORK/killed" "${SPEC[@]}" \
    > /dev/null
env REPRO_DIST_WORKERS=2 REPRO_DIST_SECRET="$SECRET" \
    REPRO_DIST_ADDRESS_BOOK="$SLOW_BOOK" \
    python -m repro.orchestrator run --dir "$WORK/killed" &
PID=$!
for _ in $(seq 1 120); do
    compgen -G "$WORK/killed/checkpoint.*.npz" > /dev/null && break
    sleep 0.5
done
compgen -G "$WORK/killed/checkpoint.*.npz" > /dev/null || {
    echo "no checkpoint appeared within 60s" >&2; exit 1; }
sleep 1
kill -KILL "$PID" 2>/dev/null || true
set +e
wait "$PID"
RC=$?
set -e
echo "   SIGKILLed coordinator exited with $RC"

env REPRO_DIST_WORKERS=2 REPRO_DIST_SECRET="$SECRET" \
    REPRO_DIST_ADDRESS_BOOK="$SLOW_BOOK" \
    python -m repro.orchestrator resume --dir "$WORK/killed" > /dev/null
python -m repro.orchestrator status --dir "$WORK/killed" --json \
    > "$WORK/killed.json"
diff "$WORK/killed.json" "$WORK/reference.json"

echo "== serial arm: the fleet must not perturb the science"
python -m repro.orchestrator plan --dir "$WORK/serial" \
    --preset tiny --protocol http --phi 0.95 --waves 2 \
    --reseed-mode interval --reseed-interval 0 \
    --shards 4 --executor serial --batch-size 16384 > /dev/null
python -m repro.orchestrator run --dir "$WORK/serial" > /dev/null
python -m repro.orchestrator status --dir "$WORK/serial" --json \
    > "$WORK/serial.json"
python - "$WORK/reference.json" "$WORK/serial.json" <<'PY'
import json, sys
dist, serial = (json.load(open(p)) for p in sys.argv[1:3])
assert dist["waves"] == serial["waves"], "per-wave accounting diverged"
assert dist["totals"] == serial["totals"], "campaign totals diverged"
print("   remote-fleet == serial on", len(dist["waves"]), "waves")
PY
echo "remote fleet smoke OK: every fleet shape byte-identical"
