#!/usr/bin/env bash
# Chaos smoke: run real CLI campaigns under a rotating fault-plan
# matrix — worker crashes, hangs rescued by speculative re-dispatch,
# corrupt frames, mid-result deaths — and require every disturbed
# run's final status JSON to be byte-identical to an undisturbed
# distributed run.  A final arm layers a SIGTERM + resume on top of a
# combined plan.  This exercises the fault plane across the real
# process boundary (sockets, signals, worker subprocesses, durable
# checkpoints) that the in-process chaos tests approximate.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

SPEC=(--preset tiny --protocol http --phi 0.95 --waves 2
      --reseed-mode interval --reseed-interval 0
      --shards 4 --executor distributed --batch-size 16384)

plan_and_run() {
    # plan_and_run <dir> [env VAR=VALUE ...]
    local dir=$1; shift
    python -m repro.orchestrator plan --dir "$dir" "${SPEC[@]}" > /dev/null
    env "$@" python -m repro.orchestrator run --dir "$dir" > /dev/null
    python -m repro.orchestrator status --dir "$dir" --json
}

echo "== undisturbed distributed reference"
plan_and_run "$WORK/reference" REPRO_DIST_WORKERS=2 \
    > "$WORK/reference.json"

# Each plan entry sabotages a different shard in a different way; the
# tight shard deadline lets speculation rescue the hang in seconds.
declare -A PLANS=(
    [crash]="crash@1"
    [hang]="hang@2"
    [corrupt]="corrupt@0"
    [mid_result]="mid_result@3"
    [combined]="crash@0,corrupt@2,mid_result@1"
)

for name in crash hang corrupt mid_result combined; do
    echo "== fault plan '$name': ${PLANS[$name]}"
    plan_and_run "$WORK/$name" \
        REPRO_DIST_WORKERS=2 \
        REPRO_DIST_SHARD_DEADLINE=2 \
        REPRO_FAULT_PLAN="${PLANS[$name]}" \
        > "$WORK/$name.json"
    diff "$WORK/$name.json" "$WORK/reference.json" \
        || { echo "fault plan '$name' perturbed the campaign" >&2; exit 1; }
done

echo "== SIGTERM + resume under a combined fault plan"
python -m repro.orchestrator plan --dir "$WORK/killed" "${SPEC[@]}" \
    > /dev/null
REPRO_DIST_WORKERS=2 \
REPRO_DIST_SHARD_DEADLINE=2 \
REPRO_DIST_SHARD_DELAY=0.5 \
REPRO_FAULT_PLAN="crash@1,corrupt@3" \
python -m repro.orchestrator run --dir "$WORK/killed" &
PID=$!
for _ in $(seq 1 120); do
    compgen -G "$WORK/killed/checkpoint.*.npz" > /dev/null && break
    sleep 0.5
done
compgen -G "$WORK/killed/checkpoint.*.npz" > /dev/null || {
    echo "no checkpoint appeared within 60s" >&2; exit 1; }
sleep 1
kill -TERM "$PID" 2>/dev/null || true
set +e
wait "$PID"
RC=$?
set -e
echo "   interrupted run exited with $RC"

REPRO_DIST_WORKERS=2 \
REPRO_DIST_SHARD_DEADLINE=2 \
REPRO_FAULT_PLAN="crash@1,corrupt@3" \
python -m repro.orchestrator resume --dir "$WORK/killed" > /dev/null
python -m repro.orchestrator status --dir "$WORK/killed" --json \
    > "$WORK/killed.json"
diff "$WORK/killed.json" "$WORK/reference.json"

echo "== serial arm: chaos must not perturb the science"
python -m repro.orchestrator plan --dir "$WORK/serial" \
    --preset tiny --protocol http --phi 0.95 --waves 2 \
    --reseed-mode interval --reseed-interval 0 \
    --shards 4 --executor serial --batch-size 16384 > /dev/null
python -m repro.orchestrator run --dir "$WORK/serial" > /dev/null
python -m repro.orchestrator status --dir "$WORK/serial" --json \
    > "$WORK/serial.json"
python - "$WORK/reference.json" "$WORK/serial.json" <<'PY'
import json, sys
dist, serial = (json.load(open(p)) for p in sys.argv[1:3])
assert dist["waves"] == serial["waves"], "per-wave accounting diverged"
assert dist["totals"] == serial["totals"], "campaign totals diverged"
print("   distributed-under-chaos == serial on",
      len(dist["waves"]), "waves")
PY
echo "chaos smoke OK: every fault plan byte-identical to the calm run"
