#!/usr/bin/env bash
# Orchestrator kill-and-resume smoke: run a 2-wave tiny-preset campaign
# via the CLI, SIGTERM it mid-wave, resume it, and require the final
# status JSON to be byte-identical to an uninterrupted run of the same
# campaign.  Exercises the real process boundary (signals, durable
# checkpoints) that the in-process test suite can't.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Paced at 150k probes/sec a wave takes ~10s, so a SIGTERM a few
# seconds in reliably lands mid-wave; pacing never changes results, so
# the resumed and reference runs drop it to keep the job fast.
SPEC=(--preset tiny --protocol http --phi 0.95 --waves 2
      --reseed-mode interval --reseed-interval 0
      --shards 4 --executor serial --batch-size 16384
      --probes-per-sec 150000)

echo "== plan (interrupted arm)"
python -m repro.orchestrator plan --dir "$WORK/interrupted" "${SPEC[@]}"

echo "== run + SIGTERM mid-wave"
python -m repro.orchestrator run --dir "$WORK/interrupted" &
PID=$!
# Kill only after the first durable checkpoint exists (a fixed sleep
# races slow runners into a checkpoint-less kill), then give the wave
# a moment so the signal lands mid-wave rather than at its start.
for _ in $(seq 1 120); do
    compgen -G "$WORK/interrupted/checkpoint.*.npz" > /dev/null && break
    sleep 0.5
done
compgen -G "$WORK/interrupted/checkpoint.*.npz" > /dev/null || {
    echo "no checkpoint appeared within 60s" >&2; exit 1; }
sleep 2
kill -TERM "$PID" 2>/dev/null || true
set +e
wait "$PID"
RC=$?
set -e
echo "   interrupted run exited with $RC"

python -m repro.orchestrator status --dir "$WORK/interrupted" --json \
    > "$WORK/mid.json"
python - "$WORK/mid.json" <<'PY'
import json, sys
status = json.load(open(sys.argv[1]))
assert not status["finished"], (
    "campaign finished before the SIGTERM - raise pacing delay?")
position = status["position"]
print(f"   killed at wave {position['wave']} shard {position['shard']} "
      f"({status['waves_completed']} wave(s) complete)")
PY

echo "== resume to completion"
python -m repro.orchestrator resume --dir "$WORK/interrupted" --no-pace
python -m repro.orchestrator status --dir "$WORK/interrupted" --json \
    > "$WORK/resumed.json"

echo "== uninterrupted reference arm"
python -m repro.orchestrator plan --dir "$WORK/reference" "${SPEC[@]}" \
    > /dev/null
python -m repro.orchestrator run --dir "$WORK/reference" --no-pace
python -m repro.orchestrator status --dir "$WORK/reference" --json \
    > "$WORK/reference.json"

echo "== diff final status JSON"
diff "$WORK/resumed.json" "$WORK/reference.json"
echo "orchestrator smoke OK: kill-and-resume status is byte-identical"
