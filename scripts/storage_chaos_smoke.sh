#!/usr/bin/env bash
# Storage chaos smoke: run CLI campaigns under a rotating
# REPRO_FS_FAULT_PLAN matrix — clean save failures (enospc +
# fsync_fail), a simulated crash at the promote rename, bitrot caught
# by `verify --repair`, and a torn final write recovered by the
# automatic rollback-on-resume path — and require every surviving
# arm's journaled checkpoint generations and final status JSON to be
# byte-identical to an unfaulted serial run of the same campaign.
# Exercises the real process boundary (the fault plan, the tmp sweep,
# and the fsck CLI) that the in-process test suite can't.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

SPEC=(--preset tiny --protocol http --phi 0.95 --waves 2
      --reseed-mode interval --reseed-interval 0
      --shards 4 --executor serial --batch-size 16384)

# The journaled generation file names of a campaign directory.
gen_files() {
    python - "$1" <<'PY'
import sys
from repro.orchestrator.checkpoint import CheckpointStore
journal, error = CheckpointStore(sys.argv[1], sweep=False).read_journal()
assert error is None, error
for entry in journal["generations"]:
    print(entry["file"])
PY
}

# Byte-diff an arm against the reference: same journaled generations,
# same generation bytes, same final status JSON.
diff_against_ref() {
    diff <(gen_files "$WORK/ref") <(gen_files "$1")
    while read -r name; do
        cmp "$WORK/ref/$name" "$1/$name"
    done < <(gen_files "$WORK/ref")
    python -m repro.orchestrator status --dir "$1" --json \
        > "$WORK/arm-status.json"
    diff "$WORK/ref.json" "$WORK/arm-status.json"
}

run_arm() {  # run_arm <dir> <fault plan>
    python -m repro.orchestrator plan --dir "$1" "${SPEC[@]}" > /dev/null
    REPRO_FS_FAULT_PLAN="$2" python -m repro.orchestrator run --dir "$1"
}

echo "== reference arm: no faults"
python -m repro.orchestrator plan --dir "$WORK/ref" "${SPEC[@]}" > /dev/null
python -m repro.orchestrator run --dir "$WORK/ref"
python -m repro.orchestrator status --dir "$WORK/ref" --json \
    > "$WORK/ref.json"
python -m repro.orchestrator verify --dir "$WORK/ref"
G=$(gen_files "$WORK/ref" | wc -l)
LATEST=$(gen_files "$WORK/ref" | tail -n 1 | sed 's/checkpoint\.\([0-9]*\)\.npz/\1/')
echo "   reference keeps $G generation(s), latest gen $LATEST"

echo "== arm: enospc + fsync_fail absorbed by the save-retry path"
run_arm "$WORK/retry" "enospc@save-1,fsync_fail@save-3"
diff_against_ref "$WORK/retry"
python -m repro.orchestrator verify --dir "$WORK/retry"

echo "== arm: rename_crash kills the process; resume sweeps and continues"
python -m repro.orchestrator plan --dir "$WORK/crash" "${SPEC[@]}" \
    > /dev/null
set +e
REPRO_FS_FAULT_PLAN="rename_crash@save-2" \
python -m repro.orchestrator run --dir "$WORK/crash" 2> /dev/null
RC=$?
set -e
[ "$RC" -ne 0 ] || { echo "rename_crash arm should have died" >&2; exit 1; }
compgen -G "$WORK/crash/checkpoint.*.tmp.npz" > /dev/null || {
    echo "crash left no orphaned tmp behind" >&2; exit 1; }
python -m repro.orchestrator resume --dir "$WORK/crash"
diff_against_ref "$WORK/crash"
python -m repro.orchestrator verify --dir "$WORK/crash"

echo "== arm: bitrot on the latest generation, caught by verify --repair"
run_arm "$WORK/rot" "bitrot@gen-$LATEST"
set +e
python -m repro.orchestrator verify --dir "$WORK/rot" > /dev/null
RC=$?
set -e
[ "$RC" -ne 0 ] || { echo "verify missed the bitrot" >&2; exit 1; }
set +e
python -m repro.orchestrator verify --dir "$WORK/rot" --repair
RC=$?
set -e
[ "$RC" -ne 0 ] || { echo "repair run must still report problems" >&2; exit 1; }
[ -f "$WORK/rot/quarantine/checkpoint.$LATEST.npz" ] || {
    echo "repair did not quarantine the rotted generation" >&2; exit 1; }
python -m repro.orchestrator verify --dir "$WORK/rot"
# The rolled-back tail replays deterministically to the same bytes.
python -m repro.orchestrator resume --dir "$WORK/rot"
diff_against_ref "$WORK/rot"
python -m repro.orchestrator verify --dir "$WORK/rot"

echo "== arm: torn final write, recovered by automatic rollback on resume"
run_arm "$WORK/torn" "torn_write@save-$((LATEST - 1))"
set +e
python -m repro.orchestrator verify --dir "$WORK/torn" > /dev/null
RC=$?
set -e
[ "$RC" -ne 0 ] || { echo "verify missed the torn write" >&2; exit 1; }
# No repair: resume's load() detects the tear against the journaled
# digest, quarantines, rolls back, and re-runs the lost tail.
python -m repro.orchestrator resume --dir "$WORK/torn"
[ -f "$WORK/torn/quarantine/checkpoint.$LATEST.npz" ] || {
    echo "resume did not quarantine the torn generation" >&2; exit 1; }
diff_against_ref "$WORK/torn"
python -m repro.orchestrator verify --dir "$WORK/torn"

echo "storage chaos smoke OK: every fault arm byte-identical to the unfaulted run"
