#!/usr/bin/env bash
# Observability smoke: run a multi-worker distributed campaign via the
# CLI with REPRO_OBS=full under an injected fault plan, validate the
# trace-event log against the schema, render the rollup report, and
# require every deterministic artifact (status JSON and the latest
# checkpoint generation) to be byte-identical to the same campaign run
# with REPRO_OBS=off.
# Then kill a campaign mid-wave under REPRO_OBS=events, resume it under
# REPRO_OBS=full, and re-assert byte-identity — observability must stay
# strictly on the wall-clock side of the kill-and-resume contract even
# when toggled between processes.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# The newest journaled checkpoint generation of a campaign directory.
latest_ckpt() {
    python - "$1" <<'PY'
import sys
from repro.orchestrator.checkpoint import CheckpointStore
print(CheckpointStore(sys.argv[1], sweep=False).checkpoint_path)
PY
}

SPEC=(--preset tiny --protocol http --phi 0.95 --waves 3
      --reseed-mode interval --reseed-interval 0
      --shards 6 --executor distributed --batch-size 16384)

echo "== reference arm: REPRO_OBS=off, no faults"
python -m repro.orchestrator plan --dir "$WORK/off" "${SPEC[@]}" > /dev/null
REPRO_OBS=off REPRO_DIST_WORKERS=2 \
python -m repro.orchestrator run --dir "$WORK/off"
python -m repro.orchestrator status --dir "$WORK/off" --json \
    > "$WORK/off.json"
[ ! -e "$WORK/off/events.jsonl" ] || {
    echo "REPRO_OBS=off wrote events.jsonl" >&2; exit 1; }

echo "== observed arm: REPRO_OBS=full under a fault plan"
python -m repro.orchestrator plan --dir "$WORK/full" "${SPEC[@]}" > /dev/null
REPRO_OBS=full REPRO_DIST_WORKERS=2 REPRO_FAULT_PLAN="crash@1,stall@4" \
python -m repro.orchestrator run --dir "$WORK/full"
python -m repro.orchestrator status --dir "$WORK/full" --json \
    > "$WORK/full.json"

echo "== validate the trace-event log against the schema"
python -m repro.obs validate --dir "$WORK/full"

echo "== rollup report renders and mentions the fleet"
python -m repro.obs report --dir "$WORK/full" | tee "$WORK/report.txt"
grep -q "per-wave:" "$WORK/report.txt"
grep -q "per-shard:" "$WORK/report.txt"

echo "== fault telemetry reached progress.json"
python - "$WORK/full/progress.json" <<'PY'
import json, sys
progress = json.load(open(sys.argv[1]))
telemetry = progress["executor_telemetry"]
assert telemetry.get("faults_armed", 0) >= 1, telemetry
assert telemetry.get("failures", 0) >= 1, telemetry
print(f"   executor_telemetry: {telemetry}")
PY

echo "== diff deterministic artifacts: off vs full-under-faults"
diff "$WORK/off.json" "$WORK/full.json"
cmp "$(latest_ckpt "$WORK/off")" "$(latest_ckpt "$WORK/full")"

echo "== toggle arm: kill under REPRO_OBS=events, resume under full"
python -m repro.orchestrator plan --dir "$WORK/toggle" "${SPEC[@]}" \
    > /dev/null
REPRO_OBS=events REPRO_DIST_WORKERS=2 REPRO_DIST_SHARD_DELAY=0.5 \
python -m repro.orchestrator run --dir "$WORK/toggle" &
PID=$!
for _ in $(seq 1 120); do
    compgen -G "$WORK/toggle/checkpoint.*.npz" > /dev/null && break
    sleep 0.5
done
compgen -G "$WORK/toggle/checkpoint.*.npz" > /dev/null || {
    echo "no checkpoint appeared within 60s" >&2; exit 1; }
sleep 1
kill -TERM "$PID" 2>/dev/null || true
set +e
wait "$PID"
echo "   interrupted run exited with $?"
set -e
REPRO_OBS=full REPRO_DIST_WORKERS=2 \
python -m repro.orchestrator resume --dir "$WORK/toggle"
python -m repro.orchestrator status --dir "$WORK/toggle" --json \
    > "$WORK/toggle.json"
diff "$WORK/off.json" "$WORK/toggle.json"
cmp "$(latest_ckpt "$WORK/off")" "$(latest_ckpt "$WORK/toggle")"
python -m repro.obs validate --dir "$WORK/toggle"
python - "$WORK/toggle/events.jsonl" <<'PY'
import json, sys
runs = {json.loads(line)["run"] for line in open(sys.argv[1])}
assert len(runs) == 2, f"expected 2 run ids (kill + resume), got {len(runs)}"
print(f"   events.jsonl holds {len(runs)} run ids across the kill")
PY

echo "obs smoke OK: events validate, artifacts byte-identical off/full/toggled"
