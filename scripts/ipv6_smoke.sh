#!/usr/bin/env bash
# IPv6 kill-and-resume smoke: run a 2-wave v6-tiny campaign via the
# CLI (128-bit partition, hitlist + sampled targeting), SIGTERM it
# mid-wave, resume it, and require the final status JSON to be
# byte-identical to an uninterrupted run.  A second arm re-runs the
# same campaign on the distributed executor and requires identical
# wave accounting — serial/distributed parity across the real process
# boundary, on the v6 code path.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# ~4.5k probes/wave at 400/s gives a wave ~10s of wall clock, so the
# SIGTERM lands mid-wave; pacing never changes results, so the resumed
# and reference runs drop it to keep the job fast.
SPEC=(--preset v6-tiny --protocol http --phi 0.9 --waves 2
      --reseed-mode interval --reseed-interval 0
      --shards 4 --samples-per-prefix 16 --batch-size 4096)

echo "== plan (interrupted arm, serial + paced)"
python -m repro.orchestrator plan --dir "$WORK/interrupted" "${SPEC[@]}" \
    --executor serial --probes-per-sec 400

echo "== run + SIGTERM mid-wave"
python -m repro.orchestrator run --dir "$WORK/interrupted" &
PID=$!
for _ in $(seq 1 120); do
    compgen -G "$WORK/interrupted/checkpoint.*.npz" > /dev/null && break
    sleep 0.5
done
compgen -G "$WORK/interrupted/checkpoint.*.npz" > /dev/null || {
    echo "no checkpoint appeared within 60s" >&2; exit 1; }
sleep 2
kill -TERM "$PID" 2>/dev/null || true
set +e
wait "$PID"
RC=$?
set -e
echo "   interrupted run exited with $RC"

python -m repro.orchestrator status --dir "$WORK/interrupted" --json \
    > "$WORK/mid.json"
python - "$WORK/mid.json" <<'PY'
import json, sys
status = json.load(open(sys.argv[1]))
assert status["spec"]["family"] == "v6", status["spec"]["family"]
assert not status["finished"], (
    "campaign finished before the SIGTERM - raise pacing delay?")
position = status["position"]
print(f"   killed at wave {position['wave']} shard {position['shard']} "
      f"({status['waves_completed']} wave(s) complete)")
PY

echo "== resume to completion"
python -m repro.orchestrator resume --dir "$WORK/interrupted" --no-pace
python -m repro.orchestrator status --dir "$WORK/interrupted" --json \
    > "$WORK/resumed.json"

echo "== uninterrupted serial reference arm"
python -m repro.orchestrator plan --dir "$WORK/reference" "${SPEC[@]}" \
    --executor serial --probes-per-sec 400 > /dev/null
python -m repro.orchestrator run --dir "$WORK/reference" --no-pace
python -m repro.orchestrator status --dir "$WORK/reference" --json \
    > "$WORK/reference.json"

echo "== diff final status JSON (kill-and-resume byte identity)"
diff "$WORK/resumed.json" "$WORK/reference.json"

echo "== distributed executor arm"
python -m repro.orchestrator plan --dir "$WORK/distributed" "${SPEC[@]}" \
    --executor distributed > /dev/null
REPRO_DIST_WORKERS=2 \
python -m repro.orchestrator run --dir "$WORK/distributed" > /dev/null
python -m repro.orchestrator status --dir "$WORK/distributed" --json \
    > "$WORK/distributed.json"

echo "== compare wave accounting: serial vs distributed"
python - "$WORK/reference.json" "$WORK/distributed.json" <<'PY'
import json, sys
serial = json.load(open(sys.argv[1]))
distributed = json.load(open(sys.argv[2]))
for key in ("totals", "waves", "announced_addresses", "waves_completed"):
    if serial[key] != distributed[key]:
        raise SystemExit(
            f"serial/distributed divergence in {key}:\n"
            f"  serial:      {serial[key]}\n"
            f"  distributed: {distributed[key]}"
        )
print("   totals and per-wave records identical")
PY

echo "ipv6 smoke OK: v6 kill-and-resume byte-identical, executors agree"
