#!/usr/bin/env bash
# Distributed-executor smoke: run a multi-worker campaign via the CLI
# with an injected worker failure, SIGTERM the coordinator mid-wave,
# resume, and require the final status JSON to be byte-identical to an
# uninterrupted distributed run — and its computed numbers (waves +
# totals) identical to a serial run of the same campaign.  Exercises
# the real process boundary (worker subprocesses, sockets, signals,
# durable checkpoints) that the in-process test suite can't.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

SPEC=(--preset tiny --protocol http --phi 0.95 --waves 3
      --reseed-mode interval --reseed-interval 0
      --shards 6 --executor distributed --batch-size 16384)

echo "== plan (interrupted arm)"
python -m repro.orchestrator plan --dir "$WORK/interrupted" "${SPEC[@]}"

echo "== run + SIGTERM mid-wave (worker failure injected on shard 1)"
# The per-shard delay stretches each wave to a couple of seconds so the
# SIGTERM reliably lands mid-campaign; the injected failure makes the
# first worker assigned shard 1 die and the shard requeue.  Neither
# knob changes any result.
REPRO_DIST_WORKERS=2 \
REPRO_DIST_SHARD_DELAY=0.5 \
REPRO_DIST_FAIL_SHARDS=1 \
python -m repro.orchestrator run --dir "$WORK/interrupted" &
PID=$!
# Kill only after the first durable checkpoint exists (a fixed sleep
# races slow runners into a checkpoint-less kill), then give the wave
# a moment so the signal lands mid-wave rather than at its start.
for _ in $(seq 1 120); do
    compgen -G "$WORK/interrupted/checkpoint.*.npz" > /dev/null && break
    sleep 0.5
done
compgen -G "$WORK/interrupted/checkpoint.*.npz" > /dev/null || {
    echo "no checkpoint appeared within 60s" >&2; exit 1; }
sleep 1
kill -TERM "$PID" 2>/dev/null || true
set +e
wait "$PID"
RC=$?
set -e
echo "   interrupted run exited with $RC"

python -m repro.orchestrator status --dir "$WORK/interrupted" --json \
    > "$WORK/mid.json"
python - "$WORK/mid.json" <<'PY'
import json, sys
status = json.load(open(sys.argv[1]))
assert not status["finished"], (
    "campaign finished before the SIGTERM - raise the shard delay?")
position = status["position"]
print(f"   killed at wave {position['wave']} shard {position['shard']} "
      f"({status['waves_completed']} wave(s) complete)")
PY

echo "== resume to completion"
python -m repro.orchestrator resume --dir "$WORK/interrupted"
python -m repro.orchestrator status --dir "$WORK/interrupted" --json \
    > "$WORK/resumed.json"

echo "== uninterrupted distributed reference arm"
python -m repro.orchestrator plan --dir "$WORK/reference" "${SPEC[@]}" \
    > /dev/null
python -m repro.orchestrator run --dir "$WORK/reference"
python -m repro.orchestrator status --dir "$WORK/reference" --json \
    > "$WORK/reference.json"

echo "== diff final status JSON (kill-and-resume byte-identity)"
diff "$WORK/resumed.json" "$WORK/reference.json"

echo "== serial arm: merged results must be executor-invariant"
python -m repro.orchestrator plan --dir "$WORK/serial" \
    --preset tiny --protocol http --phi 0.95 --waves 3 \
    --reseed-mode interval --reseed-interval 0 \
    --shards 6 --executor serial --batch-size 16384 > /dev/null
python -m repro.orchestrator run --dir "$WORK/serial"
python -m repro.orchestrator status --dir "$WORK/serial" --json \
    > "$WORK/serial.json"
# The specs legitimately differ in the executor field; every computed
# number (per-wave accounting and campaign totals) must not.
python - "$WORK/reference.json" "$WORK/serial.json" <<'PY'
import json, sys
dist, serial = (json.load(open(p)) for p in sys.argv[1:3])
assert dist["waves"] == serial["waves"], "per-wave accounting diverged"
assert dist["totals"] == serial["totals"], "campaign totals diverged"
print("   distributed == serial on", len(dist["waves"]), "waves")
PY
echo "distributed smoke OK: kill-and-resume byte-identical, serial parity holds"
