"""Atomic single-file campaign checkpoints (JSON manifest + npz arrays).

A checkpoint is one compressed ``.npz`` holding the JSON manifest (the
campaign position, accounting, and RNG state) alongside the state
arrays (the live selection mask).  Writing a *single* file via
write-tmp-fsync-then-rename (plus a directory fsync after the rename)
makes every save atomic *and durable*: a kill — or a power loss — at
any instant leaves either the previous checkpoint or the new one,
never a manifest that disagrees with its arrays and never a truncated
file behind a completed rename — which is what makes shard boundaries
safe resume points.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import numpy as np

__all__ = ["CHECKPOINT_VERSION", "CheckpointStore"]


def _fsync_path(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)

#: Bump when the manifest/array schema changes shape.
#: v2: the manifest carries ``wave_attempts`` (the in-flight wave's
#: failed executor attempts), so a resumed campaign replays the
#: wave-level retry budget byte-identically.
CHECKPOINT_VERSION = 2

_MANIFEST_KEY = "manifest"


class CheckpointStore:
    """Durable campaign state under one directory.

    Files:

    - ``campaign.json``  — the immutable (resolved) campaign spec,
      written once at plan time;
    - ``checkpoint.npz`` — the latest atomic checkpoint;
    - ``status.json``    — the deterministic status document;
    - ``progress.json``  — wall-clock telemetry (timestamps, achieved
      probe rate, cumulative executor telemetry); deliberately
      *outside* the determinism contract;
    - ``events.jsonl``   — the structured trace-event log
      (:mod:`repro.obs`, ``REPRO_OBS=events|full``); append-only, so
      a resumed campaign continues the same file under a new run id;
    - ``metrics.json``   — the latest metrics-registry snapshot
      (``REPRO_OBS=full``).
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # A kill mid-write leaves an orphaned tmp file next to the real
        # one; it is never a valid resume source (the rename that would
        # have promoted it never happened), so sweep strays on open.
        for stray in self.directory.glob("*.tmp"):
            stray.unlink(missing_ok=True)
        for stray in self.directory.glob("*.tmp.npz"):
            stray.unlink(missing_ok=True)

    # -- paths ---------------------------------------------------------

    @property
    def spec_path(self) -> Path:
        return self.directory / "campaign.json"

    @property
    def checkpoint_path(self) -> Path:
        return self.directory / "checkpoint.npz"

    @property
    def status_path(self) -> Path:
        return self.directory / "status.json"

    @property
    def progress_path(self) -> Path:
        return self.directory / "progress.json"

    @property
    def events_path(self) -> Path:
        return self.directory / "events.jsonl"

    @property
    def metrics_path(self) -> Path:
        return self.directory / "metrics.json"

    # -- spec ----------------------------------------------------------

    def write_spec(self, spec_dict: dict) -> None:
        self._write_json(self.spec_path, spec_dict)

    def read_spec(self) -> dict:
        if not self.spec_path.exists():
            raise FileNotFoundError(
                f"no campaign.json under {self.directory} — "
                "run `plan` first"
            )
        return json.loads(self.spec_path.read_text())

    # -- checkpoint ----------------------------------------------------

    def has_checkpoint(self) -> bool:
        return self.checkpoint_path.exists()

    def save(self, manifest: dict, arrays: dict) -> None:
        """Atomically persist one checkpoint (manifest + arrays)."""
        manifest = dict(manifest, version=CHECKPOINT_VERSION)
        payload = {_MANIFEST_KEY: json.dumps(manifest, sort_keys=True)}
        for name, array in arrays.items():
            if name == _MANIFEST_KEY:
                raise ValueError(f"array name {name!r} is reserved")
            payload[name] = np.asarray(array)
        tmp = self.checkpoint_path.with_suffix(".tmp.npz")
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **payload)
            # "Atomic" rename without durability is not atomic under
            # power loss: the rename can hit disk before the data does,
            # surfacing a truncated checkpoint.  fsync the file before
            # the rename and the directory after it.
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(self.checkpoint_path)
        _fsync_path(self.directory)

    def load(self) -> tuple[dict, dict]:
        """Load the latest checkpoint as ``(manifest, arrays)``."""
        if not self.has_checkpoint():
            raise FileNotFoundError(
                f"no checkpoint under {self.directory} — nothing to resume"
            )
        with np.load(self.checkpoint_path) as data:
            manifest = json.loads(str(data[_MANIFEST_KEY]))
            arrays = {
                name: data[name]
                for name in data.files
                if name != _MANIFEST_KEY
            }
        if manifest.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {manifest.get('version')!r} does not "
                f"match this code's version {CHECKPOINT_VERSION}"
            )
        return manifest, arrays

    def clear(self) -> None:
        """Drop the checkpoint *and* its wall-clock companions.

        A ``run --fresh`` that kept the previous attempt's
        ``progress.json``/``events.jsonl`` would seed the new run's
        cumulative telemetry (and prepend a stale event history) from
        a campaign that no longer exists.
        """
        self.checkpoint_path.unlink(missing_ok=True)
        self.progress_path.unlink(missing_ok=True)
        self.events_path.unlink(missing_ok=True)
        self.metrics_path.unlink(missing_ok=True)

    # -- status & telemetry -------------------------------------------

    def write_status(self, status: dict) -> None:
        self._write_json(self.status_path, status)

    def write_progress(self, progress: dict) -> None:
        self._write_json(self.progress_path, _sanitize_floats(progress))

    def read_progress(self) -> dict | None:
        """The last progress document, or ``None`` (never raises on a
        malformed file — telemetry must not block a resume)."""
        if not self.progress_path.exists():
            return None
        try:
            document = json.loads(self.progress_path.read_text())
        except ValueError:
            return None
        return document if isinstance(document, dict) else None

    def write_metrics(self, snapshot: dict) -> None:
        """Persist a metrics-registry snapshot (wall-clock-side).

        Atomic (readers never see a torn file) but *not* durable: the
        snapshot is advisory telemetry rewritten at every checkpoint,
        so unlike the checkpoint itself it skips both fsyncs — under
        power loss the next checkpoint simply rewrites it, and paying
        two fsyncs per shard here is exactly the overhead the <5%
        observability budget cannot afford.
        """
        self._write_json(
            self.metrics_path, _sanitize_floats(snapshot), durable=False
        )

    @staticmethod
    def _write_json(path: Path, document: dict, durable: bool = True) -> None:
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            fh.write(
                json.dumps(
                    document, indent=2, sort_keys=True, allow_nan=False
                )
                + "\n"
            )
            if durable:
                fh.flush()
                os.fsync(fh.fileno())
        tmp.replace(path)
        if durable:
            _fsync_path(path.parent)


def _sanitize_floats(value):
    """Replace non-finite floats with ``None``, recursively.

    ``json.dumps`` would happily emit ``Infinity``/``NaN`` tokens that
    no strict JSON parser accepts; progress telemetry aggregates
    wall-clock rates, so a pathological clock must degrade to ``null``,
    not corrupt the file.  (Status/manifest JSON is deterministic by
    construction and goes through ``allow_nan=False`` instead, which
    *raises* — corruption there is a bug to surface, not to paper over.)
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _sanitize_floats(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize_floats(v) for v in value]
    return value
