"""Generation-journaled, self-verifying campaign checkpoints.

A checkpoint is one compressed ``.npz`` holding the JSON manifest (the
campaign position, accounting, RNG state, and per-array SHA-256
digests) alongside the state arrays (the live selection mask).  Saves
never overwrite: every ``save()`` promotes a new ``checkpoint.<gen>.npz``
via write-tmp-fsync-rename (plus a directory fsync), then commits it to
the ``checkpoints.json`` journal — which records each generation's
whole-payload SHA-256 — and prunes generations beyond the keep-N window
(``REPRO_CKPT_KEEP``, default 2).

``load()`` trusts nothing: the newest journaled generation is verified
digest-first (whole file, then every array), and a torn write, bitrot,
or truncation quarantines the damaged file under ``quarantine/`` and
**rolls back** to the newest intact generation — from which shard-replay
determinism re-runs the lost tail byte-identically.  Every detection,
rollback, and injected fault is recorded as an incident for the
observability plane (``checkpoint.corrupt`` / ``checkpoint.rollback`` /
``storage.fault_fired`` events).

Storage faults are injectable deterministically via
``REPRO_FS_FAULT_PLAN`` (:mod:`repro.orchestrator.storage_faults`), and
``python -m repro.orchestrator verify [--repair]`` audits every artifact
through :meth:`CheckpointStore.audit`.
"""

from __future__ import annotations

import errno
import hashlib
import io
import json
import math
import os
import re
from pathlib import Path

import numpy as np

from repro.orchestrator.storage_faults import SimulatedCrash, flip_byte

__all__ = [
    "CHECKPOINT_VERSION",
    "JOURNAL_VERSION",
    "CheckpointCorruption",
    "CheckpointStore",
]


def _fsync_path(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)

#: Bump when the manifest/array schema changes shape.
#: v2: the manifest carries ``wave_attempts`` (wave-level retry budget).
#: v3: the manifest carries ``array_sha256`` (per-array integrity
#: digests, verified on every load).
#: v4: the manifest carries ``hitlist_month`` (v6 hitlist seeding) and
#: the spec carries ``family``/``samples_per_prefix``.
CHECKPOINT_VERSION = 4

#: Bump when the ``checkpoints.json`` journal schema changes shape.
JOURNAL_VERSION = 1

_MANIFEST_KEY = "manifest"

_GENERATION_RE = re.compile(r"^checkpoint\.(\d+)\.npz$")


class CheckpointCorruption(ValueError):
    """Every candidate checkpoint generation failed verification."""


class _CorruptGeneration(Exception):
    """Internal: one generation failed verification (reason in args)."""


def _array_digest(array) -> str:
    """SHA-256 over an array's dtype, shape, and raw bytes."""
    array = np.asarray(array)
    digest = hashlib.sha256()
    digest.update(array.dtype.str.encode())
    digest.update(str(array.shape).encode())
    digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


class CheckpointStore:
    """Durable campaign state under one directory.

    Files:

    - ``campaign.json``        — the immutable (resolved) campaign
      spec, written once at plan time;
    - ``checkpoint.<gen>.npz`` — atomic checkpoint generations, newest
      ``REPRO_CKPT_KEEP`` kept (default 2);
    - ``checkpoints.json``     — the generation journal: the latest
      good generation plus each generation's whole-payload SHA-256;
    - ``quarantine/``          — checkpoint files that failed
      verification, moved aside for inspection instead of deleted;
    - ``status.json``          — the deterministic status document;
    - ``progress.json``        — wall-clock telemetry (timestamps,
      achieved probe rate, cumulative executor telemetry);
      deliberately *outside* the determinism contract;
    - ``events.jsonl``         — the structured trace-event log
      (:mod:`repro.obs`, ``REPRO_OBS=events|full``); append-only, so
      a resumed campaign continues the same file under a new run id;
    - ``metrics.json``         — the latest metrics-registry snapshot
      (``REPRO_OBS=full``).

    ``keep``/``fault_plan`` default to the validated environment knobs
    (``REPRO_CKPT_KEEP`` / ``REPRO_FS_FAULT_PLAN``); ``sweep=False``
    leaves orphaned tmp files in place so :meth:`audit` can report
    them.  Detections and injected faults are appended to
    :attr:`incidents` — the campaign runner drains them into the
    observability plane via :meth:`drain_incidents`.
    """

    def __init__(self, directory, keep=None, fault_plan=None,
                 sweep: bool = True):
        from repro.env import ckpt_keep, fs_fault_plan

        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = ckpt_keep(keep)
        self.fault_plan = fs_fault_plan(fault_plan)
        #: Pending observability incidents (dicts with a ``type`` key).
        self.incidents: list[dict] = []
        self._save_index = 0
        if sweep:
            # A kill mid-write leaves an orphaned tmp file next to the
            # real one; it is never a valid resume source (the rename
            # that would have promoted it never happened), so sweep
            # strays on open.
            for stray in self.directory.glob("*.tmp"):
                stray.unlink(missing_ok=True)
            for stray in self.directory.glob("*.tmp.npz"):
                stray.unlink(missing_ok=True)

    # -- paths ---------------------------------------------------------

    @property
    def spec_path(self) -> Path:
        return self.directory / "campaign.json"

    @property
    def journal_path(self) -> Path:
        return self.directory / "checkpoints.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.directory / "quarantine"

    @property
    def status_path(self) -> Path:
        return self.directory / "status.json"

    @property
    def progress_path(self) -> Path:
        return self.directory / "progress.json"

    @property
    def events_path(self) -> Path:
        return self.directory / "events.jsonl"

    @property
    def metrics_path(self) -> Path:
        return self.directory / "metrics.json"

    def generation_path(self, gen: int) -> Path:
        return self.directory / f"checkpoint.{gen}.npz"

    @property
    def checkpoint_path(self) -> Path | None:
        """The newest journaled generation's path (``None`` when empty)."""
        journal, _ = self.read_journal()
        if journal is not None and journal["generations"]:
            entry = max(journal["generations"], key=lambda e: e["gen"])
            return self.directory / entry["file"]
        files = self.generation_files()
        return files[-1][1] if files else None

    def generation_files(self) -> list[tuple[int, Path]]:
        """``(gen, path)`` for every generation file on disk, ascending."""
        found = []
        for path in self.directory.glob("checkpoint.*.npz"):
            match = _GENERATION_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return sorted(found)

    # -- incidents (observability seam) --------------------------------

    def _incident(self, type_: str, **data) -> None:
        self.incidents.append({"type": type_, **data})

    def drain_incidents(self) -> list[dict]:
        """Take (and clear) the pending observability incidents."""
        taken, self.incidents = self.incidents, []
        return taken

    def _fault_fired(self, spec) -> None:
        self._incident(
            "storage.fault_fired", kind=spec.kind, site=spec.site_label
        )

    # -- spec ----------------------------------------------------------

    def write_spec(self, spec_dict: dict) -> None:
        self._write_json(self.spec_path, spec_dict)

    def read_spec(self) -> dict:
        if not self.spec_path.exists():
            raise FileNotFoundError(
                f"no campaign.json under {self.directory} — "
                "run `plan` first"
            )
        try:
            return json.loads(self.spec_path.read_text())
        except ValueError as exc:
            raise ValueError(
                f"{self.spec_path} is not valid JSON ({exc}) — the "
                "campaign spec is truncated or corrupt; re-run `plan` "
                "to rewrite it, or audit the directory with "
                "`python -m repro.orchestrator verify`"
            ) from None

    # -- journal -------------------------------------------------------

    def read_journal(self) -> tuple[dict | None, str | None]:
        """``(journal, None)``, ``(None, None)`` when absent, or
        ``(None, reason)`` when the journal itself is damaged."""
        if not self.journal_path.exists():
            return None, None
        try:
            document = json.loads(self.journal_path.read_text())
            entries = document["generations"]
            latest = document["latest"]
            if not isinstance(entries, list) or not all(
                isinstance(e, dict)
                and isinstance(e.get("gen"), int)
                and isinstance(e.get("file"), str)
                for e in entries
            ):
                raise ValueError("malformed generation entries")
            if entries and latest != max(e["gen"] for e in entries):
                raise ValueError("latest does not match the newest entry")
        except (ValueError, KeyError, TypeError) as exc:
            return None, f"{type(exc).__name__}: {exc}"
        return document, None

    def _write_journal(self, entries) -> None:
        entries = sorted(entries, key=lambda e: e["gen"])
        self._write_json(
            self.journal_path,
            {
                "version": JOURNAL_VERSION,
                "latest": entries[-1]["gen"] if entries else 0,
                "generations": entries,
            },
        )

    # -- checkpoint ----------------------------------------------------

    def has_checkpoint(self) -> bool:
        return bool(self.generation_files())

    def save(self, manifest: dict, arrays: dict) -> None:
        """Atomically persist one checkpoint generation.

        The payload is serialized in memory first so its SHA-256 lands
        in the journal entry; the manifest gains per-array digests.  A
        failed save cleans up its tmp file and leaves the journal (and
        therefore the resume point) untouched, so the caller may simply
        retry — the generation number is only consumed on success.
        """
        index = self._save_index
        self._save_index += 1
        fault = self.fault_plan.save_fault(index)

        manifest = dict(manifest, version=CHECKPOINT_VERSION)
        payload = {}
        digests = {}
        for name, array in arrays.items():
            if name == _MANIFEST_KEY:
                raise ValueError(f"array name {name!r} is reserved")
            array = np.asarray(array)
            payload[name] = array
            digests[name] = _array_digest(array)
        manifest["array_sha256"] = digests
        payload[_MANIFEST_KEY] = json.dumps(manifest, sort_keys=True)
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **payload)
        data = buffer.getvalue()

        journal, journal_error = self.read_journal()
        if journal_error is not None:
            self._incident(
                "checkpoint.corrupt",
                gen=None,
                reason=f"checkpoints.json: {journal_error}",
            )
        if journal is not None:
            entries = list(journal["generations"])
            gen = journal["latest"] + 1
        else:
            # No (or unreadable) journal: never clobber a real
            # generation file — pick up past the newest on disk.
            files = self.generation_files()
            entries = []
            gen = (files[-1][0] if files else 0) + 1

        path = self.generation_path(gen)
        tmp = path.with_suffix(".tmp.npz")
        to_write = data
        if fault is not None and fault.kind == "torn_write":
            # A lying disk: the rename promotes a silent truncation.
            # The journal records the digest of the *full* payload, so
            # the tear surfaces at the next load and rolls back.
            to_write = data[: max(1, len(data) // 2)]
            self._fault_fired(fault)
        try:
            with open(tmp, "wb") as fh:
                if fault is not None and fault.kind == "enospc":
                    self._fault_fired(fault)
                    raise OSError(
                        errno.ENOSPC,
                        "no space left on device (injected enospc)",
                    )
                fh.write(to_write)
                # "Atomic" rename without durability is not atomic
                # under power loss: the rename can hit disk before the
                # data does, surfacing a truncated checkpoint.  fsync
                # the file before the rename and the directory after.
                fh.flush()
                if fault is not None and fault.kind == "fsync_fail":
                    self._fault_fired(fault)
                    raise OSError(
                        errno.EIO, "fsync: I/O error (injected fsync_fail)"
                    )
                os.fsync(fh.fileno())
            if fault is not None and fault.kind == "rename_crash":
                self._fault_fired(fault)
                raise SimulatedCrash(
                    f"injected rename_crash at save {index}: process "
                    "presumed dead mid-promote"
                )
            tmp.replace(path)
        except SimulatedCrash:
            # A real crash cleans up nothing — the orphaned tmp is
            # exactly what the next open's sweep exists for.
            raise
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        _fsync_path(self.directory)

        entries.append(
            {
                "gen": gen,
                "file": path.name,
                "sha256": hashlib.sha256(data).hexdigest(),
                "bytes": len(data),
            }
        )
        entries.sort(key=lambda e: e["gen"])
        kept, pruned = entries[-self.keep:], entries[: -self.keep]
        self._write_journal(kept)
        for entry in pruned:
            (self.directory / entry["file"]).unlink(missing_ok=True)

        rot = self.fault_plan.gen_fault(gen)
        if rot is not None:
            flip_byte(path, rot.offset)
            self._fault_fired(rot)

    def _read_generation(self, path: Path, entry: dict | None = None):
        """Read + verify one generation; ``(manifest, arrays, data)``.

        Raises :class:`_CorruptGeneration` on any integrity failure and
        plain :class:`ValueError` on a schema-version mismatch (which is
        a code/state skew, not disk damage — never quarantined).
        """
        if not path.exists():
            raise _CorruptGeneration("file missing")
        data = path.read_bytes()
        if entry is not None:
            expected_bytes = entry.get("bytes")
            if expected_bytes is not None and len(data) != expected_bytes:
                raise _CorruptGeneration(
                    f"size {len(data)} != journaled {expected_bytes} "
                    "(torn write?)"
                )
            expected_sha = entry.get("sha256")
            if expected_sha is not None:
                digest = hashlib.sha256(data).hexdigest()
                if digest != expected_sha:
                    raise _CorruptGeneration(
                        "payload sha256 mismatch (journal "
                        f"{expected_sha[:12]}…, file {digest[:12]}…)"
                    )
        try:
            with np.load(io.BytesIO(data)) as npz:
                if _MANIFEST_KEY not in npz.files:
                    raise _CorruptGeneration("no manifest in archive")
                manifest = json.loads(str(npz[_MANIFEST_KEY]))
                arrays = {
                    name: npz[name]
                    for name in npz.files
                    if name != _MANIFEST_KEY
                }
        except _CorruptGeneration:
            raise
        except Exception as exc:
            # BadZipFile, zlib.error, json/KeyError — an opaque parse
            # failure becomes a named integrity failure.
            raise _CorruptGeneration(
                f"unreadable archive ({type(exc).__name__}: {exc})"
            ) from None
        if manifest.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {manifest.get('version')!r} does "
                f"not match this code's version {CHECKPOINT_VERSION}"
            )
        expected = manifest.get("array_sha256")
        if isinstance(expected, dict):
            for name, array in arrays.items():
                if expected.get(name) != _array_digest(array):
                    raise _CorruptGeneration(
                        f"array {name!r} digest mismatch"
                    )
        return manifest, arrays, data

    def verify_generation(self, path, entry: dict | None = None):
        """Verify one generation file; ``None`` or the failure reason."""
        try:
            self._read_generation(Path(path), entry)
        except (_CorruptGeneration, ValueError) as exc:
            return str(exc)
        return None

    def quarantine(self, path) -> Path | None:
        """Move a damaged file under ``quarantine/``; the new path."""
        path = Path(path)
        if not path.exists():
            return None
        self.quarantine_dir.mkdir(exist_ok=True)
        target = self.quarantine_dir / path.name
        copy = 1
        while target.exists():
            target = self.quarantine_dir / f"{path.name}.{copy}"
            copy += 1
        path.replace(target)
        return target

    def load(self) -> tuple[dict, dict]:
        """Load the newest *intact* checkpoint as ``(manifest, arrays)``.

        Generations are verified newest-first; damaged ones are
        quarantined (``checkpoint.corrupt`` incident) and the journal
        rewound to the survivor (``checkpoint.rollback`` incident).  A
        lost or damaged journal is rebuilt from the intact generation
        files on disk.  Only when *no* generation survives does
        :class:`CheckpointCorruption` propagate.
        """
        journal, journal_error = self.read_journal()
        if journal_error is not None:
            self._incident(
                "checkpoint.corrupt",
                gen=None,
                reason=f"checkpoints.json: {journal_error}",
            )
        if journal is not None:
            candidates = [
                (entry["gen"], self.directory / entry["file"], entry)
                for entry in sorted(
                    journal["generations"], key=lambda e: e["gen"]
                )
            ]
        else:
            candidates = [
                (gen, path, None) for gen, path in self.generation_files()
            ]
        if not candidates:
            raise FileNotFoundError(
                f"no checkpoint under {self.directory} — nothing to resume"
            )
        newest = candidates[-1][0]

        adopted = None
        quarantined = 0
        for gen, path, entry in reversed(candidates):
            try:
                manifest, arrays, data = self._read_generation(path, entry)
            except _CorruptGeneration as exc:
                moved = self.quarantine(path)
                quarantined += 1
                self._incident(
                    "checkpoint.corrupt",
                    gen=gen,
                    reason=str(exc),
                    quarantined=moved.name if moved else None,
                )
                continue
            adopted = (gen, manifest, arrays, data)
            break
        if adopted is None:
            raise CheckpointCorruption(
                f"every checkpoint generation under {self.directory} is "
                f"corrupt ({quarantined} file(s) moved to "
                f"{self.quarantine_dir.name}/) — audit with `python -m "
                "repro.orchestrator verify`, or start over with "
                "`run --fresh`"
            )
        gen, manifest, arrays, data = adopted

        if journal is not None:
            if gen != newest:
                self._write_journal(
                    [
                        entry
                        for entry in journal["generations"]
                        if entry["gen"] <= gen
                    ]
                )
        else:
            # Journal lost: rebuild it from whatever verifies on disk.
            survivors = []
            for other_gen, path, _ in candidates:
                if other_gen > gen:
                    continue
                if other_gen == gen:
                    payload = data
                else:
                    try:
                        _, _, payload = self._read_generation(path)
                    except _CorruptGeneration as exc:
                        moved = self.quarantine(path)
                        self._incident(
                            "checkpoint.corrupt",
                            gen=other_gen,
                            reason=str(exc),
                            quarantined=moved.name if moved else None,
                        )
                        continue
                survivors.append(
                    {
                        "gen": other_gen,
                        "file": path.name,
                        "sha256": hashlib.sha256(payload).hexdigest(),
                        "bytes": len(payload),
                    }
                )
            self._write_journal(survivors)
        if gen != newest:
            self._incident(
                "checkpoint.rollback", from_gen=newest, to_gen=gen
            )
        return manifest, arrays

    def clear(self) -> None:
        """Drop every campaign artifact except the planned spec.

        That includes ``status.json``: a ``run --fresh`` that kept the
        previous attempt's status (or its ``progress.json`` /
        ``events.jsonl``) would serve a stale document from a campaign
        that no longer exists until the new run's first checkpoint.
        """
        for _, path in self.generation_files():
            path.unlink(missing_ok=True)
        self.journal_path.unlink(missing_ok=True)
        if self.quarantine_dir.is_dir():
            for path in self.quarantine_dir.iterdir():
                path.unlink(missing_ok=True)
            self.quarantine_dir.rmdir()
        self.status_path.unlink(missing_ok=True)
        self.progress_path.unlink(missing_ok=True)
        self.events_path.unlink(missing_ok=True)
        self.metrics_path.unlink(missing_ok=True)

    # -- status & telemetry -------------------------------------------

    def write_status(self, status: dict) -> None:
        self._write_json(self.status_path, status)

    def write_progress(self, progress: dict) -> None:
        self._write_json(self.progress_path, _sanitize_floats(progress))

    def read_progress(self) -> dict | None:
        """The last progress document, or ``None`` (never raises on a
        malformed file — telemetry must not block a resume)."""
        if not self.progress_path.exists():
            return None
        try:
            document = json.loads(self.progress_path.read_text())
        except ValueError:
            return None
        return document if isinstance(document, dict) else None

    def write_metrics(self, snapshot: dict) -> None:
        """Persist a metrics-registry snapshot (wall-clock-side).

        Atomic (readers never see a torn file) but *not* durable: the
        snapshot is advisory telemetry rewritten at every checkpoint,
        so unlike the checkpoint itself it skips both fsyncs — under
        power loss the next checkpoint simply rewrites it, and paying
        two fsyncs per shard here is exactly the overhead the <5%
        observability budget cannot afford.
        """
        self._write_json(
            self.metrics_path, _sanitize_floats(snapshot), durable=False
        )

    @staticmethod
    def _write_json(path: Path, document: dict, durable: bool = True) -> None:
        tmp = path.with_suffix(".tmp")
        try:
            with open(tmp, "w") as fh:
                fh.write(
                    json.dumps(
                        document, indent=2, sort_keys=True, allow_nan=False
                    )
                    + "\n"
                )
                if durable:
                    fh.flush()
                    os.fsync(fh.fileno())
            tmp.replace(path)
        except BaseException:
            # A failed write (ENOSPC, fsync EIO) must clean up after
            # itself instead of leaving the tmp for the next open's
            # sweep — the retry is the caller's business, the mess is
            # ours.
            tmp.unlink(missing_ok=True)
            raise
        if durable:
            _fsync_path(path.parent)

    # -- fsck ----------------------------------------------------------

    def audit(self, repair: bool = False) -> list[dict]:
        """Audit every artifact; one finding dict per artifact.

        Findings are ``{"artifact", "ok", "detail", "repaired"}``.
        With ``repair=True``, reparable damage is fixed in place:
        corrupt generations are quarantined and dropped from the
        journal, a lost/damaged journal is rebuilt from the intact
        generations, unjournaled generation files and stray tmp files
        are removed, and malformed derived documents (status, progress,
        metrics — all regenerated by the next run/resume) are deleted.
        ``campaign.json`` and ``events.jsonl`` are never modified: the
        spec is the store's source of truth and the event log is
        append-only history.
        """
        findings: list[dict] = []

        def finding(artifact, ok, detail, repaired=None):
            findings.append(
                {
                    "artifact": artifact,
                    "ok": ok,
                    "detail": detail,
                    "repaired": repaired,
                }
            )

        # The spec.
        spec_dict = None
        try:
            spec_dict = self.read_spec()
        except FileNotFoundError:
            finding("campaign.json", False, "missing — run `plan` first")
        except ValueError as exc:
            finding("campaign.json", False, str(exc))
        if spec_dict is not None:
            from repro.orchestrator.campaign import CampaignSpec

            try:
                CampaignSpec.from_dict(spec_dict)
                finding(
                    "campaign.json", True, "spec parses and validates"
                )
            except (ValueError, TypeError, KeyError) as exc:
                finding("campaign.json", False, f"spec invalid: {exc}")

        # The journal and its generations.
        journal, journal_error = self.read_journal()
        files = dict(self.generation_files())
        journaled: set[int] = set()
        survivors: list[dict] = []
        journal_dirty = False
        if journal_error is not None:
            journal_dirty = True
            finding(
                "checkpoints.json",
                False,
                f"damaged journal ({journal_error})",
                "rebuilt from intact generations" if repair else None,
            )
        elif journal is None and files:
            journal_dirty = True
            finding(
                "checkpoints.json",
                False,
                f"missing, but {len(files)} generation file(s) exist",
                "rebuilt from intact generations" if repair else None,
            )
        elif journal is None:
            finding(
                "checkpoints.json",
                True,
                "no checkpoints yet (campaign not run)",
            )
        if journal is not None:
            for entry in sorted(
                journal["generations"], key=lambda e: e["gen"]
            ):
                journaled.add(entry["gen"])
                path = self.directory / entry["file"]
                error = self.verify_generation(path, entry)
                if error is None:
                    survivors.append(entry)
                    finding(
                        entry["file"],
                        True,
                        "payload sha256 + array digests verified",
                    )
                    continue
                repaired = None
                if repair:
                    journal_dirty = True
                    moved = self.quarantine(path)
                    repaired = (
                        f"quarantined as {moved.relative_to(self.directory)}"
                        if moved
                        else "dropped from journal"
                    )
                finding(entry["file"], False, error, repaired)

        # Generation files the journal does not know about: either the
        # rebuild source (journal lost) or the debris of a crash
        # between rename and journal commit (journal present).
        for gen, path in sorted(files.items()):
            if gen in journaled:
                continue
            error = self.verify_generation(path)
            if journal is None and error is None:
                repaired = None
                if repair:
                    data = path.read_bytes()
                    survivors.append(
                        {
                            "gen": gen,
                            "file": path.name,
                            "sha256": hashlib.sha256(data).hexdigest(),
                            "bytes": len(data),
                        }
                    )
                    repaired = "journaled"
                finding(path.name, False, "intact but not journaled",
                        repaired)
                continue
            detail = (
                "not journaled (crash before journal commit?)"
                if error is None
                else f"not journaled and corrupt ({error})"
            )
            repaired = None
            if repair:
                if error is None:
                    path.unlink(missing_ok=True)
                    repaired = "removed"
                else:
                    moved = self.quarantine(path)
                    repaired = (
                        f"quarantined as {moved.relative_to(self.directory)}"
                        if moved
                        else "removed"
                    )
            finding(path.name, False, detail, repaired)
        if repair and journal_dirty:
            self._write_journal(survivors)

        # Orphaned tmp files.
        strays = sorted(
            path.name
            for pattern in ("*.tmp", "*.tmp.npz")
            for path in self.directory.glob(pattern)
        )
        if strays:
            repaired = None
            if repair:
                for name in strays:
                    (self.directory / name).unlink(missing_ok=True)
                repaired = "removed"
            finding(
                "strays",
                False,
                "orphaned tmp file(s): " + ", ".join(strays),
                repaired,
            )
        else:
            finding("strays", True, "none")

        # Derived JSON documents (all regenerated by a run/resume).
        for name, path in (
            ("status.json", self.status_path),
            ("progress.json", self.progress_path),
            ("metrics.json", self.metrics_path),
        ):
            if not path.exists():
                finding(name, True, "absent")
                continue
            try:
                json.loads(path.read_text())
                finding(name, True, "parses")
            except ValueError as exc:
                repaired = None
                if repair:
                    path.unlink(missing_ok=True)
                    repaired = "removed (regenerated on the next resume)"
                finding(name, False, f"not valid JSON ({exc})", repaired)

        # The trace-event log.
        if self.events_path.exists():
            from repro.obs.schema import validate_file

            errors = validate_file(self.events_path)
            if errors:
                shown = "; ".join(errors[:3])
                if len(errors) > 3:
                    shown += "; …"
                finding(
                    "events.jsonl",
                    False,
                    f"{len(errors)} schema error(s): {shown}",
                )
            else:
                with open(self.events_path) as fh:
                    count = sum(1 for line in fh if line.strip())
                finding("events.jsonl", True, f"{count} event(s) validate")
        else:
            finding("events.jsonl", True, "absent")

        # Quarantined damage is held, not hidden.
        if self.quarantine_dir.is_dir():
            held = sum(1 for _ in self.quarantine_dir.iterdir())
            if held:
                finding(
                    "quarantine/",
                    True,
                    f"{held} damaged file(s) held for inspection",
                )
        return findings


def _sanitize_floats(value):
    """Replace non-finite floats with ``None``, recursively.

    ``json.dumps`` would happily emit ``Infinity``/``NaN`` tokens that
    no strict JSON parser accepts; progress telemetry aggregates
    wall-clock rates, so a pathological clock must degrade to ``null``,
    not corrupt the file.  (Status/manifest JSON is deterministic by
    construction and goes through ``allow_nan=False`` instead, which
    *raises* — corruption there is a bug to surface, not to paper over.)
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _sanitize_floats(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize_floats(v) for v in value]
    return value
