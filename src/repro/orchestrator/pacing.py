"""Token-bucket probe pacing.

Unpaced campaigns are exactly the footprint a good Internet citizen
avoids: a scanner that bursts its whole selection saturates stateful
middleboxes and trips rate-based abuse detection.  The orchestrator
bounds probes/sec per wave with a token bucket and records the achieved
rate.  Pacing only ever *delays* probes — it never reorders, drops, or
otherwise perturbs them — so paced and unpaced campaigns produce
byte-identical results and accounting; only the telemetry differs.
"""

from __future__ import annotations

import time

from repro import obs

__all__ = ["TokenBucket", "PacedTargets"]


class TokenBucket:
    """A token bucket bounding an average rate of ``rate`` tokens/sec.

    ``capacity`` is the burst allowance (default: one second of rate).
    ``clock``/``sleep`` are injectable for deterministic tests.
    """

    def __init__(self, rate: float, capacity: float | None = None,
                 clock=time.monotonic, sleep=time.sleep):
        if rate <= 0:
            raise ValueError("pacing rate must be > 0 tokens/sec")
        self.rate = float(rate)
        self.capacity = float(capacity) if capacity is not None else self.rate
        if self.capacity <= 0:
            raise ValueError("bucket capacity must be > 0")
        self._clock = clock
        self._sleep = sleep
        self._tokens = self.capacity
        self._last = clock()
        self._started = None
        self.consumed = 0
        self.slept = 0.0

    def throttle(self, n: int) -> float:
        """Block until ``n`` tokens are available, then consume them.

        Returns the time slept.  Requests larger than the burst
        capacity are allowed — the bucket simply waits long enough —
        so batch sizes need not be tuned to the pacing rate.
        """
        now = self._clock()
        if self._started is None:
            self._started = now
        self._tokens = min(
            self.capacity, self._tokens + (now - self._last) * self.rate
        )
        self._last = now
        waited = 0.0
        if n > self._tokens:
            waited = (n - self._tokens) / self.rate
            self._sleep(waited)
            self.slept += waited
            # Credit the time that actually elapsed rather than zeroing
            # the bucket: a sleep that overshoots the requested wait
            # accrued real tokens, and discarding them drags long paced
            # waves below the configured rate.  The balance is consumed
            # from the true accrual (so oversized requests are never
            # double-charged) and only the *leftover* is capped at the
            # burst capacity; an undershooting sleep leaves a small
            # deficit the next throttle waits out.
            now = self._clock()
            accrued = self._tokens + (now - self._last) * self.rate
            self._tokens = min(accrued - n, self.capacity)
            self._last = now
        else:
            self._tokens -= n
        self.consumed += int(n)
        registry = obs.get_registry()
        if registry is not None:
            registry.counter("pacing.tokens_consumed").inc(int(n))
            if waited:
                registry.counter("pacing.throttle_sleeps").inc()
                registry.counter("pacing.slept_seconds").inc(waited)
        return waited

    @property
    def achieved_rate(self) -> float:
        """Mean tokens/sec since the first throttle call (telemetry).

        Clamped to 0.0 when no time has elapsed: ``float("inf")`` here
        would flow into ``progress.json`` as a bare ``Infinity`` token,
        which is not JSON — every strict parser downstream rejects the
        file.
        """
        if self._started is None or self.consumed == 0:
            return 0.0
        elapsed = self._clock() - self._started
        return self.consumed / elapsed if elapsed > 0 else 0.0


class PacedTargets:
    """Wrap a target stream so each batch pays the bucket before probing.

    Duck-types the ``batches(batch_size)`` contract of
    :class:`~repro.scan.sharded.IntervalTargets`, which is all the scan
    engine needs — batch contents pass through untouched.
    """

    def __init__(self, targets, bucket: TokenBucket):
        self.targets = targets
        self.bucket = bucket

    def batches(self, batch_size: int = 1 << 16):
        for batch in self.targets.batches(batch_size):
            self.bucket.throttle(len(batch))
            yield batch
