"""Entry point: ``python -m repro.orchestrator``."""

import sys

from repro.orchestrator.cli import main

if __name__ == "__main__":
    sys.exit(main())
