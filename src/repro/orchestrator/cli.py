"""``python -m repro.orchestrator`` — plan / run / resume / status / verify.

The campaign directory is the unit of state: ``plan`` writes the
resolved spec there, ``run`` executes it from scratch (checkpointing
after every shard), ``resume`` continues from the latest checkpoint,
``status`` prints the deterministic status document, and ``verify``
fscks every artifact — spec, checkpoint generations (against their
journaled digests), status, progress, metrics, events — reporting
per-artifact findings and, with ``--repair``, quarantining or removing
the damage.  ``run`` and ``resume`` translate SIGTERM/SIGINT into a
clean exit — the durable checkpoint already on disk is the resume
point, so killing a campaign at any moment loses at most one partially
drained shard re-scanned on resume.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time

from repro.bgp.table import LESS_SPECIFIC, MORE_SPECIFIC
from repro.orchestrator.campaign import (
    CampaignRunner,
    CampaignSpec,
    status_from_manifest,
)
from repro.orchestrator.checkpoint import CheckpointStore
from repro.orchestrator.waves import RESEED_MODES, ReseedPolicy

__all__ = ["main", "build_parser"]

#: Exit code after a termination signal (128 + SIGTERM).
SIGTERM_EXIT = 143


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.orchestrator",
        description="Resumable multi-wave TASS scan campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser(
        "plan", help="resolve a campaign spec and write campaign.json"
    )
    plan.add_argument("--dir", required=True, help="campaign directory")
    plan.add_argument("--name", default="campaign")
    plan.add_argument("--preset", default="tiny")
    plan.add_argument("--dataset-seed", type=int, default=0)
    plan.add_argument("--protocol", default="http")
    plan.add_argument("--phi", type=float, default=0.95)
    plan.add_argument(
        "--view",
        default=LESS_SPECIFIC,
        choices=(LESS_SPECIFIC, MORE_SPECIFIC),
    )
    plan.add_argument("--waves", type=int, default=3)
    plan.add_argument(
        "--reseed-mode", default="interval", choices=RESEED_MODES
    )
    plan.add_argument("--reseed-interval", type=int, default=0)
    plan.add_argument("--min-hitrate", type=float, default=0.0)
    plan.add_argument(
        "--reseed-scan",
        action="store_true",
        help="re-seed waves scan the full announced space",
    )
    plan.add_argument("--explore-frac", type=float, default=0.0)
    plan.add_argument("--shards", default=None)
    plan.add_argument(
        "--executor",
        default=None,
        help="registered shard executor: serial, process, or "
        "distributed (coordinator + socket workers; fleet size via "
        "REPRO_DIST_WORKERS, pre-started remote workers via "
        "REPRO_DIST_ADDRESS_BOOK=host:port,..., handshake auth via "
        "REPRO_DIST_SECRET)",
    )
    plan.add_argument("--backend", default=None)
    plan.add_argument("--batch-size", type=int, default=1 << 16)
    plan.add_argument("--probe-budget", type=int, default=None)
    plan.add_argument("--probes-per-sec", type=float, default=None)
    plan.add_argument("--use-blocklist", action="store_true")
    plan.add_argument("--scan-seed", type=int, default=0)
    plan.add_argument(
        "--family",
        default=None,
        choices=("v4", "v6"),
        help="address family (default: $REPRO_ADDR_FAMILY, then the "
        "preset's own family, then v4)",
    )
    plan.add_argument(
        "--samples-per-prefix",
        type=int,
        default=64,
        help="v6 only: pseudorandom probe draws per selected prefix "
        "on top of the hitlist seeding",
    )
    plan.add_argument(
        "--wave-retries",
        type=int,
        default=0,
        help="bounded retries when the executor's infrastructure "
        "collapses mid-wave; each retry resumes from the last "
        "checkpointed shard",
    )
    plan.add_argument(
        "--wave-retry-backoff",
        type=float,
        default=0.5,
        help="base seconds of the deterministic exponential backoff "
        "slept between wave retries",
    )

    run = sub.add_parser(
        "run", help="execute the planned campaign from scratch"
    )
    run.add_argument("--dir", required=True)
    run.add_argument(
        "--fresh",
        action="store_true",
        help="discard an existing checkpoint instead of refusing to run",
    )
    run.add_argument(
        "--no-pace",
        action="store_true",
        help="ignore the spec's pacing rate for this invocation "
        "(results are pacing-invariant)",
    )

    resume = sub.add_parser(
        "resume", help="continue from the latest checkpoint"
    )
    resume.add_argument("--dir", required=True)
    resume.add_argument("--no-pace", action="store_true")

    status = sub.add_parser(
        "status", help="print the deterministic status document"
    )
    status.add_argument("--dir", required=True)
    status.add_argument(
        "--json",
        action="store_true",
        help="machine-readable JSON (the kill-and-resume contract)",
    )
    status.add_argument(
        "--follow",
        action="store_true",
        help="after the status, tail the live trace-event log "
        "(events.jsonl; requires the campaign to run with "
        "REPRO_OBS=events or full) until the campaign finishes or "
        "Ctrl-C",
    )

    verify = sub.add_parser(
        "verify",
        help="audit every campaign artifact (checkpoint fsck)",
        description="Audit the campaign directory: the spec, every "
        "checkpoint generation against its journaled SHA-256 and "
        "per-array digests, the journal itself, stray tmp files, and "
        "the status/progress/metrics/events documents.  Exits 0 when "
        "everything verifies, 1 with a per-artifact report otherwise.",
    )
    verify.add_argument("--dir", required=True)
    verify.add_argument(
        "--repair",
        action="store_true",
        help="fix what can be fixed: quarantine corrupt generations "
        "and rewind the journal past them, rebuild a lost journal "
        "from the intact generations, remove stray tmp files and "
        "malformed derived documents (the exit code still reports "
        "that problems were found)",
    )
    verify.add_argument(
        "--json",
        action="store_true",
        help="machine-readable findings instead of the report lines",
    )
    return parser


def _spec_from_args(args) -> CampaignSpec:
    # .resolved() validates the knob strings (argument > env var >
    # default, via repro.env), so a typo'd --shards or REPRO_SCAN_*
    # value fails at plan time with a clear message instead of deep
    # inside wave execution.
    return CampaignSpec(
        name=args.name,
        preset=args.preset,
        dataset_seed=args.dataset_seed,
        protocol=args.protocol,
        phi=args.phi,
        view=args.view,
        waves=args.waves,
        reseed=ReseedPolicy(
            mode=args.reseed_mode,
            interval=args.reseed_interval,
            min_hitrate=args.min_hitrate,
        ),
        reseed_scan=args.reseed_scan,
        explore_frac=args.explore_frac,
        shards=args.shards,
        executor=args.executor,
        backend=args.backend,
        batch_size=args.batch_size,
        probe_budget=args.probe_budget,
        probes_per_sec=args.probes_per_sec,
        use_blocklist=args.use_blocklist,
        scan_seed=args.scan_seed,
        family=args.family,
        samples_per_prefix=args.samples_per_prefix,
        wave_retries=args.wave_retries,
        wave_retry_backoff=args.wave_retry_backoff,
    ).resolved()


def _install_signal_handlers() -> None:
    def bail(signum, frame):
        # The checkpoint on disk is already consistent; just leave.
        sys.exit(SIGTERM_EXIT)

    signal.signal(signal.SIGTERM, bail)
    signal.signal(signal.SIGINT, bail)


def _render_plan(spec: CampaignSpec, runner: CampaignRunner) -> str:
    lines = [
        f"campaign {spec.name!r}: {spec.waves} wave(s) over preset "
        f"{spec.preset!r} / protocol {spec.protocol!r}",
        f"  phi={spec.phi} view={spec.view} family={spec.family} "
        f"shards={spec.shards} executor={spec.executor} "
        f"backend={spec.backend}",
        f"  reseed={spec.reseed.to_dict()} explore_frac="
        f"{spec.explore_frac} budget={spec.probe_budget} "
        f"pace={spec.probes_per_sec}",
        f"  announced addresses: {runner.announced}",
    ]
    for plan in runner.plans:
        reseed = (
            "reseed"
            if plan.reseed
            else "hold" if plan.reseed is not None else "conditional"
        )
        lines.append(
            f"  wave {plan.wave}: census month {plan.month} [{reseed}]"
        )
    return "\n".join(lines)


def _print_outcome(status: dict) -> None:
    totals = status["totals"]
    print(
        f"campaign {status['name']!r}: "
        f"{status['waves_completed']}/{status['waves_planned']} waves, "
        f"{totals['probes_sent']} probes, "
        f"{totals['responses']} responses, "
        f"{totals['reseeds']} reseed(s)"
        + (" [budget exhausted]" if status["budget_exhausted"] else "")
    )


def _follow_events(store: CheckpointStore) -> int:
    """Tail ``events.jsonl`` — one line per trace event, live.

    Follows until the campaign's ``campaign`` span ends (the run
    completed) or Ctrl-C.  Lines are written atomically (one
    ``O_APPEND`` write each), but the reader still buffers partial
    tails defensively and skips anything that does not parse — a
    follower must never crash on a log it is racing.
    """
    from repro.obs.report import format_event

    path = store.events_path
    position = 0
    buffered = ""
    try:
        while True:
            if not path.exists():
                time.sleep(0.2)
                continue
            with open(path) as fh:
                fh.seek(position)
                chunk = fh.read()
                position = fh.tell()
            buffered += chunk
            *lines, buffered = buffered.split("\n")
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                try:
                    print(format_event(record), flush=True)
                except (KeyError, TypeError):
                    continue
                if (
                    record.get("ev") == "end"
                    and record.get("type") == "campaign"
                ):
                    return 0
            if not chunk:
                time.sleep(0.2)
    except KeyboardInterrupt:
        return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except (ValueError, FileNotFoundError) as exc:
        # Knob/spec/state errors are user errors, not tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args) -> int:
    if args.command == "plan":
        spec = _spec_from_args(args)
        runner = CampaignRunner(spec, directory=args.dir)
        runner.store.write_spec(runner.spec.to_dict())
        print(_render_plan(runner.spec, runner))
        return 0

    if args.command == "run":
        _install_signal_handlers()
        # Refuse before the (potentially expensive) dataset load.
        store = CheckpointStore(args.dir)
        if store.has_checkpoint():
            if not args.fresh:
                print(
                    f"error: {args.dir} already has a checkpoint; "
                    "use `resume` to continue it or `run --fresh` to "
                    "start over",
                    file=sys.stderr,
                )
                return 2
            store.clear()
        runner = CampaignRunner.from_directory(args.dir)
        status = runner.run(pace=not args.no_pace)
        _print_outcome(status)
        return 0

    if args.command == "resume":
        _install_signal_handlers()
        runner = CampaignRunner.resume(args.dir)
        status = runner.run(pace=not args.no_pace)
        _print_outcome(status)
        return 0

    if args.command == "status":
        store = CheckpointStore(args.dir)
        if store.has_checkpoint():
            # The manifest alone carries the whole status document —
            # no dataset load, no runner construction.
            manifest, _ = store.load()
            status = status_from_manifest(manifest)
        else:
            status = CampaignRunner.from_directory(args.dir).status()
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
        else:
            _print_outcome(status)
            for record in status["waves"]:
                print(
                    f"  wave {record['wave']} (month {record['month']}): "
                    f"{'reseed' if record['reseeded'] else 'hold'} "
                    f"hitrate={record['hitrate']:.4f} "
                    f"probes={record['probes_sent']} "
                    f"absorbed={record['absorbed_prefixes']}"
                )
        if args.follow:
            if not store.events_path.exists():
                print(
                    "waiting for events.jsonl — the campaign must run "
                    "with REPRO_OBS=events or REPRO_OBS=full",
                    file=sys.stderr,
                )
            return _follow_events(store)
        return 0

    if args.command == "verify":
        # sweep=False: the audit must *report* orphaned tmp strays,
        # not have the store's open-time sweep destroy the evidence.
        store = CheckpointStore(args.dir, sweep=False)
        findings = store.audit(repair=args.repair)
        problems = [f for f in findings if not f["ok"]]
        if args.json:
            print(json.dumps(findings, indent=2, sort_keys=True))
        else:
            for f in findings:
                line = (
                    f"{'ok  ' if f['ok'] else 'FAIL'}  "
                    f"{f['artifact']}: {f['detail']}"
                )
                if f["repaired"]:
                    line += f" [repaired: {f['repaired']}]"
                print(line)
            summary = (
                "all artifacts verify"
                if not problems
                else f"{len(problems)} problem(s) found"
                + (" (repairs applied)" if args.repair else "")
            )
            print(summary, file=sys.stderr)
        return 1 if problems else 0

    raise AssertionError(f"unhandled command {args.command!r}")
