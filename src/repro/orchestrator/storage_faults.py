"""Deterministic filesystem fault injection for the checkpoint store.

The storage chaos plane mirrors :mod:`repro.scan.faults`: a
declarative :class:`FsFaultPlan` — parsed from the
``REPRO_FS_FAULT_PLAN`` environment variable or built programmatically
— *describes* what goes wrong and where, and the
:class:`~repro.orchestrator.checkpoint.CheckpointStore` enforces it
inside its own file operations.  Faults are keyed on deterministic
positions (the Nth ``save()`` call of a store instance, or a
checkpoint generation number), never on wall clock, so the same plan
replays the same damage on every run — which is what lets the test
matrix assert byte-identical recovery *under* every fault.

Plan syntax (entries separated by ``,`` or ``;``)::

    kind@save-N              fire on the Nth save() call (0-based)
    bitrot@gen-N[:offset=K]  flip one byte of generation N at rest

    torn_write@save-2        save 2 promotes a silently truncated
                             payload (the journal records the digest
                             of the full bytes, so the tear is caught
                             at the next load and rolled back)
    bitrot@gen-3             generation 3 rots on disk after it is
                             journaled (offset defaults to mid-file)
    enospc@save-1            save 1 raises ENOSPC mid-write; the tmp
                             file is cleaned up and the save retried
    fsync_fail@save-0        save 0's fsync raises EIO (a dying disk)
    rename_crash@save-2      the process "dies" at the promote rename:
                             :class:`SimulatedCrash` propagates and
                             the orphaned tmp is left for the next
                             open to sweep

``save-N`` counts ``save()`` calls per store instance (i.e. per
process), 0-based; a resumed campaign starts counting from zero again,
so a resume arm that should run clean simply unsets the plan.
``gen-N`` is the 1-based checkpoint generation number, stable across
kill/resume.  Each entry fires exactly once — its position either
matches or it does not.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "ENV_FS_FAULT_PLAN",
    "FS_FAULT_KINDS",
    "SAVE_FAULT_KINDS",
    "GEN_FAULT_KINDS",
    "FsFaultSpec",
    "FsFaultPlan",
    "SimulatedCrash",
    "flip_byte",
]

ENV_FS_FAULT_PLAN = "REPRO_FS_FAULT_PLAN"

#: Faults fired at a ``save()`` call site.
SAVE_FAULT_KINDS = (
    "torn_write",    # promote a silently truncated payload
    "enospc",        # OSError(ENOSPC) mid-write, before any fsync
    "fsync_fail",    # OSError(EIO) at the payload fsync
    "rename_crash",  # SimulatedCrash at the promote rename (tmp left)
)

#: Faults fired against a generation file already on disk.
GEN_FAULT_KINDS = ("bitrot",)

FS_FAULT_KINDS = SAVE_FAULT_KINDS + GEN_FAULT_KINDS


class SimulatedCrash(RuntimeError):
    """An injected process death mid-operation.

    Deliberately *not* an :class:`OSError`: the campaign's bounded
    save-retry path must not swallow it — a crash kills the process,
    and only a ``resume`` (which sweeps the orphaned tmp and reloads
    the journal) may continue the campaign.
    """


@dataclass(frozen=True)
class FsFaultSpec:
    """One declarative storage fault: what, at which position.

    ``site`` is ``"save"`` (``index`` counts ``save()`` calls,
    0-based) or ``"gen"`` (``index`` is a generation number, 1-based).
    ``offset`` is the byte position ``bitrot`` flips (``None`` = the
    middle of the file).
    """

    kind: str
    site: str
    index: int
    offset: int | None = None

    def __post_init__(self):
        if self.kind not in FS_FAULT_KINDS:
            raise ValueError(
                f"unknown storage fault kind {self.kind!r}; "
                f"choose one of {FS_FAULT_KINDS}"
            )
        expected = "gen" if self.kind in GEN_FAULT_KINDS else "save"
        if self.site != expected:
            raise ValueError(
                f"{self.kind} faults fire at {expected}-N sites, "
                f"not {self.site}-{self.index}"
            )
        if self.index < 0:
            raise ValueError(
                f"fault position must be >= 0, got {self.index}"
            )
        if self.site == "gen" and self.index < 1:
            raise ValueError(
                f"generations are numbered from 1, got gen-{self.index}"
            )
        if self.offset is not None and self.offset < 0:
            raise ValueError(
                f"bitrot offset must be >= 0, got {self.offset}"
            )
        if self.offset is not None and self.kind not in GEN_FAULT_KINDS:
            raise ValueError(f"{self.kind} does not take an offset")

    @property
    def site_label(self) -> str:
        return f"{self.site}-{self.index}"

    # -- text form -----------------------------------------------------

    def to_string(self) -> str:
        text = f"{self.kind}@{self.site}-{self.index}"
        if self.offset is not None:
            text += f":offset={self.offset}"
        return text

    @classmethod
    def parse(cls, entry: str) -> "FsFaultSpec":
        entry = entry.strip()
        head, _, tail = entry.partition(":")
        kind, sep, where = head.partition("@")
        kind = kind.strip()
        if not sep:
            raise ValueError(
                f"storage fault entry {entry!r} needs kind@site-N "
                "(e.g. 'torn_write@save-2' or 'bitrot@gen-3')"
            )
        site, sep, index_text = where.strip().partition("-")
        if not sep or site not in ("save", "gen"):
            raise ValueError(
                f"storage fault entry {entry!r}: site must be save-N "
                "or gen-N"
            )
        try:
            index = int(index_text)
        except ValueError:
            raise ValueError(
                f"storage fault entry {entry!r}: position must be an "
                "integer"
            ) from None
        offset: int | None = None
        for option in filter(None, (p.strip() for p in tail.split(":"))):
            key, sep, value = option.partition("=")
            if not sep:
                raise ValueError(
                    f"storage fault entry {entry!r}: option {option!r} "
                    "must be key=value"
                )
            if key.strip() == "offset":
                try:
                    offset = int(value.strip())
                except ValueError:
                    raise ValueError(
                        f"storage fault entry {entry!r}: offset must "
                        "be an integer"
                    ) from None
            else:
                raise ValueError(
                    f"storage fault entry {entry!r}: unknown option "
                    f"{key.strip()!r} (expected offset=)"
                )
        return cls(kind=kind, site=site, index=index, offset=offset)


class FsFaultPlan:
    """An ordered collection of :class:`FsFaultSpec`\\ s (first match wins)."""

    __slots__ = ("specs",)

    def __init__(self, specs=()):
        self.specs = tuple(specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FsFaultPlan) and self.specs == other.specs
        )

    def __repr__(self) -> str:
        return f"FsFaultPlan({self.to_string()!r})"

    # -- construction --------------------------------------------------

    @classmethod
    def parse(cls, text: str | None) -> "FsFaultPlan":
        """Parse the ``REPRO_FS_FAULT_PLAN`` syntax (empty → no faults)."""
        if not text or not text.strip():
            return cls()
        entries = text.replace(";", ",").split(",")
        return cls(
            FsFaultSpec.parse(entry) for entry in entries if entry.strip()
        )

    @classmethod
    def from_env(cls) -> "FsFaultPlan":
        return cls.parse(os.environ.get(ENV_FS_FAULT_PLAN))

    def to_string(self) -> str:
        return ",".join(spec.to_string() for spec in self.specs)

    # -- queries -------------------------------------------------------

    def save_fault(self, index: int) -> FsFaultSpec | None:
        """The fault (if any) armed for the ``index``-th ``save()`` call."""
        for spec in self.specs:
            if spec.site == "save" and spec.index == index:
                return spec
        return None

    def gen_fault(self, gen: int) -> FsFaultSpec | None:
        """The at-rest fault (if any) armed for generation ``gen``."""
        for spec in self.specs:
            if spec.site == "gen" and spec.index == gen:
                return spec
        return None


def flip_byte(path, offset: int | None = None) -> int:
    """Flip one byte of ``path`` in place; returns the offset used.

    The bitrot primitive: ``offset`` is taken modulo the file size
    (``None`` = the middle of the file), so a plan stays valid whatever
    the payload compresses to.
    """
    path = Path(path)
    size = path.stat().st_size
    if size == 0:
        raise ValueError(f"cannot bitrot empty file {path}")
    position = (size // 2) if offset is None else (offset % size)
    with open(path, "r+b") as fh:
        fh.seek(position)
        byte = fh.read(1)
        fh.seek(position)
        fh.write(bytes([byte[0] ^ 0xFF]))
    return position
