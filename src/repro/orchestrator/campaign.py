"""Campaign spec, state, and the resumable multi-wave runner.

A :class:`CampaignSpec` declares *what* to scan — dataset preset,
strategy parameters, wave count, reseed policy, shard/executor/backend
knobs, probe budget, pacing rate.  :class:`CampaignRunner` compiles it
into waves and executes them: each wave plans a selection with
:class:`~repro.core.tass.TassStrategy`, drains it through
:func:`~repro.scan.sharded.run_sharded`, optionally spends an
exploration budget on the unselected space (absorbing prefixes that
respond), and feeds the achieved hitrate into the reseed decision for
the next wave.

Determinism contract: campaign state is checkpointed atomically after
every shard, and everything the campaign computes — probe counts,
responses, wave accounting, the final status document — is a pure
function of (spec, dataset).  Wall-clock telemetry (pacing rates,
timestamps) goes to ``progress.json`` only.  A run killed at any shard
boundary and resumed therefore produces byte-identical merged results,
wave accounting, and status JSON to an uninterrupted run.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.bgp.table import LESS_SPECIFIC, MORE_SPECIFIC
from repro.core.tass import TassStrategy
from repro.env import (
    ENV_ADDR_FAMILY,
    addr_family,
    count_backend,
    scan_executor,
    scan_shards,
)
from repro.orchestrator.checkpoint import CheckpointStore
from repro.orchestrator.pacing import PacedTargets, TokenBucket
from repro.orchestrator.waves import (
    ReseedPolicy,
    compile_waves,
    explore_unselected,
)
from repro.scan.blocklist import default_blocklist
from repro.scan.engine import EngineConfig, ScanResult
from repro.scan.executors import ExecutorFailure, executor_supports_wrap
from repro.scan.faults import backoff_delay
from repro.scan.sharded import run_sharded

__all__ = [
    "CampaignSpec",
    "WaveRecord",
    "CampaignRunner",
    "run_campaign",
    "status_from_manifest",
    "PROGRESS_KEYS",
]

#: The ``progress.json`` schema: every key ``_progress`` emits, with
#: its meaning.  All of it is wall-clock-side telemetry — the
#: regression tests pin this key set (stable across executors), never
#: the values.
PROGRESS_KEYS = {
    "time": "wall-clock write time (time.time())",
    "executor": "resolved executor name",
    "wave": "in-flight wave index",
    "shard": "next shard index within the in-flight wave",
    "waves_completed": "completed-wave count",
    "probes_sent": "campaign-wide probes sent (incl. in-flight shards)",
    "achieved_probes_per_sec": (
        "token-bucket achieved rate (null when unpaced)"
    ),
    "wave_retries_used": (
        "executor-failure retries, cumulative across resumes"
    ),
    "executor_telemetry": (
        "cumulative fleet telemetry ({} for in-process executors)"
    ),
    "finished": "campaign completion flag",
}

_VIEWS = (LESS_SPECIFIC, MORE_SPECIFIC)

#: Ceiling on one wave-retry backoff sleep, whatever the base.
_RETRY_BACKOFF_CAP = 30.0

#: Attempts per checkpoint save before an OSError propagates.  A save
#: that fails cleanly (ENOSPC, fsync EIO) consumes no generation number
#: and leaves the journal untouched, so retrying is always safe.
_SAVE_ATTEMPTS = 3

#: Base/cap (seconds) of the backoff between save attempts.
_SAVE_BACKOFF_BASE = 0.05
_SAVE_BACKOFF_CAP = 1.0

#: Wall-clock sleep between wave retries (module-level so deterministic
#: tests can stub it out; the sleep is telemetry-side, never state).
_retry_sleep = time.sleep


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of one scan campaign."""

    name: str = "campaign"
    preset: str = "tiny"
    dataset_seed: int = 0
    protocol: str = "http"
    phi: float = 0.95
    view: str = LESS_SPECIFIC
    waves: int = 3
    reseed: ReseedPolicy = ReseedPolicy()
    #: Re-seed waves scan the full announced space (a real discovery
    #: scan, charged at ``announced`` probes) instead of the selection.
    reseed_scan: bool = False
    #: Per-wave exploration budget as a fraction of the unselected
    #: space (0 disables); hits absorb their prefix into the selection.
    explore_frac: float = 0.0
    shards: int | None = None
    executor: str | None = None
    backend: str | None = None
    batch_size: int = 1 << 16
    #: Total probe budget; the campaign stops at the first wave
    #: boundary where completed waves have spent it (None = unlimited).
    probe_budget: int | None = None
    #: Token-bucket pacing rate in probes/sec (None = unpaced).
    probes_per_sec: float | None = None
    use_blocklist: bool = False
    scan_seed: int = 0
    #: Address family (``"v4"``/``"v6"``); ``None`` resolves from
    #: ``$REPRO_ADDR_FAMILY``, then the preset's own family, then v4.
    family: str | None = None
    #: v6 only: pseudorandom probe draws per selected prefix on top of
    #: the hitlist seeding (ignored for v4, which scans exhaustively).
    samples_per_prefix: int = 64
    #: Bounded retries when the executor's infrastructure collapses
    #: mid-wave (:class:`~repro.scan.executors.ExecutorFailure`): the
    #: wave re-runs from its last checkpointed shard, up to this many
    #: times, before the failure propagates.  The attempt counter is
    #: checkpointed, so a killed-and-resumed campaign replays the same
    #: remaining retry budget.
    wave_retries: int = 0
    #: Base (seconds) of the deterministic exponential backoff slept
    #: between wave retries (wall-clock only; never part of state).
    wave_retry_backoff: float = 0.5

    def __post_init__(self):
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        if self.waves < 1:
            raise ValueError("a campaign needs at least one wave")
        if not 0.0 < self.phi <= 1.0:
            raise ValueError("phi must be in (0, 1]")
        if self.view not in _VIEWS:
            raise ValueError(
                f"unknown prefix view {self.view!r}; choose one of {_VIEWS}"
            )
        if not 0.0 <= self.explore_frac < 1.0:
            raise ValueError("explore_frac must be in [0, 1)")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.probe_budget is not None and self.probe_budget < 0:
            raise ValueError("probe_budget must be >= 0")
        if self.probes_per_sec is not None and self.probes_per_sec <= 0:
            raise ValueError("probes_per_sec must be > 0")
        if self.wave_retries < 0:
            raise ValueError("wave_retries must be >= 0")
        if self.wave_retry_backoff < 0:
            raise ValueError("wave_retry_backoff must be >= 0")
        if self.samples_per_prefix < 0:
            raise ValueError("samples_per_prefix must be >= 0")

    def resolved(self) -> "CampaignSpec":
        """Pin the shard/executor/backend knobs (argument > env > default).

        Resolution happens once, at plan time, and the resolved values
        are stored in ``campaign.json`` — so a resume under a different
        environment still replays the original campaign exactly.
        """
        executor = scan_executor(self.executor)
        if self.probes_per_sec is not None and not executor_supports_wrap(
            executor
        ):
            raise ValueError(
                "pacing (probes_per_sec) requires the serial executor: "
                "a token bucket cannot be shared across worker processes"
            )
        if self.family is None and not os.environ.get(ENV_ADDR_FAMILY):
            # Neither argument nor environment: a preset that is
            # intrinsically one family (e.g. "v6-tiny") implies it.
            from repro.census.synth import PRESETS

            preset_spec = PRESETS.get(self.preset)
            family = preset_spec.family if preset_spec else "v4"
        else:
            family = addr_family(self.family)
        if family == "v6":
            if self.explore_frac > 0.0:
                raise ValueError(
                    "explore_frac is v4-only: the v6 unselected space "
                    "cannot be complement-sampled exhaustively"
                )
            if self.use_blocklist:
                raise ValueError(
                    "use_blocklist is v4-only: the built-in blocklist "
                    "holds IPv4 reserved ranges"
                )
        return dataclasses.replace(
            self,
            shards=scan_shards(self.shards),
            executor=executor,
            backend=count_backend(self.backend),
            family=family,
        )

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["reseed"] = self.reseed.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        data = dict(data)
        data["reseed"] = ReseedPolicy.from_dict(data["reseed"])
        return cls(**data)


@dataclass
class WaveRecord:
    """Deterministic accounting of one completed wave."""

    wave: int
    month: int
    reseeded: bool
    selected_prefixes: int
    selected_addresses: int
    probes_sent: int
    responses: int
    blocked: int
    batches: int
    explore_probes: int
    explore_hits: int
    absorbed_prefixes: int
    responsive_hosts: int
    hitrate: float
    missed: int

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "WaveRecord":
        return cls(**data)


@dataclass
class _State:
    """Mutable campaign position — everything a checkpoint persists."""

    wave: int = 0
    shard: int = 0
    wave_planned: bool = False
    wave_reseeded: bool = False
    #: Failed executor attempts for the in-flight wave (0 once done).
    wave_attempts: int = 0
    records: list = field(default_factory=list)
    shard_results: list = field(default_factory=list)
    mask: np.ndarray | None = None
    #: v6 only: the snapshot month whose addresses seed the hitlist —
    #: frozen at the last reseed so non-reseed waves keep probing the
    #: known hosts of the wave that planned the selection.
    hitlist_month: int = 0
    finished: bool = False
    budget_exhausted: bool = False


class CampaignRunner:
    """Execute (or resume) one campaign against a census dataset."""

    def __init__(self, spec: CampaignSpec, dataset=None, directory=None):
        self.spec = spec.resolved()
        if dataset is None:
            from repro.census.loader import get_dataset

            dataset = get_dataset(
                preset=self.spec.preset, seed=self.spec.dataset_seed
            )
        self.dataset = dataset
        dataset_family = getattr(dataset, "family", "v4")
        if dataset_family != self.spec.family:
            raise ValueError(
                f"campaign family {self.spec.family!r} does not match "
                f"the dataset's address family {dataset_family!r}"
            )
        self.series = dataset.series_for(self.spec.protocol)
        self.partition = dataset.topology.table.partition(self.spec.view)
        self.announced = self.partition.address_count()
        self.strategy = TassStrategy(
            self.partition, phi=self.spec.phi, backend=self.spec.backend
        )
        self.blocklist = (
            default_blocklist() if self.spec.use_blocklist else None
        )
        self.store = (
            CheckpointStore(directory) if directory is not None else None
        )
        self.plans = compile_waves(
            self.spec.waves, len(self.series), self.spec.reseed
        )
        self.state = _State(
            mask=np.zeros(len(self.partition), dtype=bool),
        )
        self._rng = np.random.default_rng([self.spec.scan_seed, 0x5EED])
        self._on_checkpoint = None
        self._pace = True
        # Wall-clock telemetry only (progress.json), never state: the
        # deterministic retry position lives in _State.wave_attempts.
        self._retries_used = 0
        # Cumulative executor telemetry (distributed fleet accounting),
        # merged from the always-on mailbox after every executor run.
        self._telemetry_totals: dict = {}
        # Monotonic stamp of the last metrics.json refresh (throttle).
        self._metrics_written_at: float | None = None

    # -- construction from disk ---------------------------------------

    @classmethod
    def from_directory(cls, directory, dataset=None) -> "CampaignRunner":
        """A fresh runner for the spec planned under ``directory``."""
        store = CheckpointStore(directory)
        spec = CampaignSpec.from_dict(store.read_spec())
        return cls(spec, dataset=dataset, directory=directory)

    @classmethod
    def resume(cls, directory, dataset=None) -> "CampaignRunner":
        """Rebuild a runner from the latest checkpoint under ``directory``."""
        store = CheckpointStore(directory)
        manifest, arrays = store.load()
        spec = CampaignSpec.from_dict(manifest["spec"])
        runner = cls(spec, dataset=dataset, directory=directory)
        # The runner built its own store; carry over any incidents the
        # load just queued (a rollback, a quarantined generation) so
        # _drive's drain surfaces them as trace events.
        runner.store.incidents.extend(store.drain_incidents())
        runner._restore(manifest, arrays)
        # Telemetry counters continue across resumes (like the state
        # they describe); a malformed progress.json degrades to fresh
        # counters rather than blocking the resume.
        progress = store.read_progress()
        if progress is not None:
            retries = progress.get("wave_retries_used")
            if isinstance(retries, int) and retries >= 0:
                runner._retries_used = retries
            telemetry = progress.get("executor_telemetry")
            if isinstance(telemetry, dict):
                runner._telemetry_totals = dict(telemetry)
        return runner

    def _restore(self, manifest: dict, arrays: dict) -> None:
        state = self.state
        state.wave = manifest["wave"]
        state.shard = manifest["shard"]
        state.wave_planned = manifest["wave_planned"]
        state.wave_reseeded = manifest["wave_reseeded"]
        state.wave_attempts = manifest.get("wave_attempts", 0)
        state.records = [
            WaveRecord.from_dict(r) for r in manifest["records"]
        ]
        state.shard_results = [
            ScanResult(
                probes_sent=p, responses=r, blocked=b, batches=n,
                protocol=self.spec.protocol,
            )
            for p, r, b, n in manifest["shard_results"]
        ]
        state.hitlist_month = manifest.get("hitlist_month", 0)
        state.finished = manifest["finished"]
        state.budget_exhausted = manifest["budget_exhausted"]
        mask = np.asarray(arrays["mask"], dtype=bool)
        if mask.shape != (len(self.partition),):
            raise ValueError(
                "checkpoint selection mask does not match the dataset "
                "partition — was the campaign planned against a "
                "different dataset?"
            )
        state.mask = mask
        self._rng = np.random.default_rng()
        self._rng.bit_generator.state = manifest["rng_state"]

    # -- checkpointing -------------------------------------------------

    def _manifest(self) -> dict:
        state = self.state
        return {
            "spec": self.spec.to_dict(),
            "announced": self.announced,
            "wave": state.wave,
            "shard": state.shard,
            "wave_planned": state.wave_planned,
            "wave_reseeded": state.wave_reseeded,
            "wave_attempts": state.wave_attempts,
            "records": [r.to_dict() for r in state.records],
            "shard_results": [
                [r.probes_sent, r.responses, r.blocked, r.batches]
                for r in state.shard_results
            ],
            "rng_state": self._rng.bit_generator.state,
            "hitlist_month": state.hitlist_month,
            "finished": state.finished,
            "budget_exhausted": state.budget_exhausted,
        }

    def _checkpoint(self) -> dict:
        manifest = self._manifest()
        if self.store is not None:
            try:
                for attempt in range(1, _SAVE_ATTEMPTS + 1):
                    try:
                        self.store.save(
                            manifest, {"mask": self.state.mask}
                        )
                        break
                    except OSError:
                        # A clean save failure left no generation
                        # behind; the previous checkpoint is still the
                        # durable resume point, so back off and retry.
                        # (A SimulatedCrash is deliberately NOT an
                        # OSError — a dead process cannot retry.)
                        if attempt == _SAVE_ATTEMPTS:
                            raise
                        _retry_sleep(
                            backoff_delay(
                                attempt,
                                _SAVE_BACKOFF_BASE,
                                _SAVE_BACKOFF_CAP,
                            )
                        )
            finally:
                self._drain_storage_incidents()
        if self._on_checkpoint is not None:
            self._on_checkpoint(self)
        return manifest

    def _drain_storage_incidents(self) -> None:
        """Flush the store's pending incidents into the obs plane.

        The store itself never talks to the tracer — ``load()`` runs
        during :meth:`resume`, *before* any observability scope exists —
        so corruption/rollback/fault incidents queue on the store and
        are drained here, inside the campaign's ``observe()`` scope.
        """
        if self.store is None:
            return
        tracer = obs.get_tracer()
        registry = obs.get_registry()
        for incident in self.store.drain_incidents():
            data = dict(incident)
            type_ = data.pop("type")
            tracer.point(type_, **data)
            if registry is not None:
                registry.counter(type_).inc()

    def _progress(self, pacer=None, manifest=None) -> None:
        if self.store is None:
            return
        # Reuse the manifest the checkpoint just built when available —
        # a shard boundary shouldn't serialize the campaign twice.
        totals = status_from_manifest(manifest or self._manifest())[
            "totals"
        ]
        document = {
            "time": time.time(),
            "executor": self.spec.executor,
            "wave": self.state.wave,
            "shard": self.state.shard,
            "waves_completed": len(self.state.records),
            "probes_sent": totals["probes_sent"],
            "achieved_probes_per_sec": (
                pacer.achieved_rate if pacer is not None else None
            ),
            "wave_retries_used": self._retries_used,
            "executor_telemetry": dict(self._telemetry_totals),
            "finished": self.state.finished,
        }
        assert set(document) == set(PROGRESS_KEYS)
        self.store.write_progress(document)
        registry = obs.get_registry()
        if registry is not None:
            registry.gauge("campaign.wave").set(self.state.wave)
            registry.gauge("campaign.shard").set(self.state.shard)
            if pacer is not None:
                registry.gauge("pacing.achieved_probes_per_sec").set(
                    pacer.achieved_rate
                )
            # Snapshotting + serializing the registry at every shard
            # boundary would dominate short shards, so the advisory
            # metrics file refreshes at most ~1/sec — except the final
            # document, which must hold the campaign's complete totals.
            now = time.monotonic()
            if (
                self.state.finished
                or self._metrics_written_at is None
                or now - self._metrics_written_at >= 1.0
            ):
                self._metrics_written_at = now
                self.store.write_metrics(registry.snapshot())

    # -- accounting ----------------------------------------------------

    def _totals(self) -> dict:
        return status_from_manifest(self._manifest())["totals"]

    def _budget_spent(self) -> int:
        """Probes charged against the budget (completed waves only)."""
        return sum(
            r.probes_sent + r.blocked for r in self.state.records
        )

    def status(self) -> dict:
        """The deterministic status document (no wall-clock content)."""
        return status_from_manifest(self._manifest())

    # -- execution -----------------------------------------------------

    def run(self, on_checkpoint=None, pace: bool = True) -> dict:
        """Drive the campaign to completion (or budget exhaustion).

        ``on_checkpoint(runner)`` fires after every durable checkpoint —
        the test suite uses it to kill the campaign at exact shard
        boundaries.  ``pace=False`` ignores ``probes_per_sec`` for this
        invocation only (results are pacing-invariant by construction).
        """
        self._on_checkpoint = on_checkpoint
        self._pace = pace
        tracer, registry = self._observability()
        try:
            with obs.observe(tracer=tracer, registry=registry):
                return self._drive()
        finally:
            if tracer is not None:
                tracer.close()

    def _observability(self):
        """Build this run's (tracer, registry) per ``REPRO_OBS``.

        Resolved here — once per invocation, in the orchestrator
        process — so the knob can differ between a run and its resume
        without ever touching deterministic state.  The tracer needs a
        store to append to; the registry is process-local either way.
        """
        tracer = None
        if self.store is not None and obs.events_enabled():
            tracer = obs.Tracer(self.store.events_path)
        registry = (
            obs.MetricsRegistry() if obs.metrics_enabled() else None
        )
        return tracer, registry

    def _drive(self) -> dict:
        state = self.state
        # Incidents queued before this scope existed (a rollback or
        # quarantine during resume's load()) surface first.
        self._drain_storage_incidents()
        tracer = obs.get_tracer()
        span = tracer.begin(
            "campaign",
            name=self.spec.name,
            waves=self.spec.waves,
            executor=self.spec.executor,
            resumed=bool(state.wave or state.shard or state.records),
        )
        tracer.current = span
        try:
            while not state.finished:
                if state.wave >= self.spec.waves:
                    state.finished = True
                    break
                budget = self.spec.probe_budget
                if (
                    budget is not None
                    and state.shard == 0
                    and not state.wave_planned
                    and self._budget_spent() >= budget
                ):
                    state.finished = True
                    state.budget_exhausted = True
                    break
                self._run_wave()
        except BaseException as exc:
            tracer.current = None
            tracer.end("campaign", span, error=type(exc).__name__)
            raise
        tracer.current = None
        self._checkpoint()
        status = self.status()
        if self.store is not None:
            self.store.write_status(status)
            self._progress()
        tracer.end(
            "campaign",
            span,
            finished=state.finished,
            budget_exhausted=state.budget_exhausted,
            waves_completed=len(state.records),
            probes_sent=status["totals"]["probes_sent"],
        )
        return status

    def _plan_wave(self, plan, snapshot) -> None:
        """Resolve the reseed decision and (re)plan the selection."""
        state = self.state
        previous = state.records[-1].hitrate if state.records else None
        reseeded = self.spec.reseed.decide(plan.wave, previous)
        if reseeded:
            selection = self.strategy.plan(snapshot)
            mask = np.zeros(len(self.partition), dtype=bool)
            mask[selection.indices] = True
            state.mask = mask
            state.hitlist_month = plan.month
        state.wave_reseeded = reseeded
        state.wave_planned = True

    def _wave_targets(self):
        """The interval spec this wave drains through the engine."""
        state = self.state
        if self.spec.reseed_scan and state.wave_reseeded:
            # A real discovery scan: the whole announced space.
            return (self.partition.starts, self.partition.ends)
        mask = state.mask
        return (self.partition.starts[mask], self.partition.ends[mask])

    def _run_wave(self) -> None:
        spec, state = self.spec, self.state
        plan = self.plans[state.wave]
        snapshot = self.series[plan.month]
        if not state.wave_planned:
            self._plan_wave(plan, snapshot)
        selected_prefixes = int(state.mask.sum())
        # Exact under both families (128-bit sizes overflow float64).
        selected_addresses = self.partition.masked_address_count(
            state.mask
        )

        pacer = None
        wrap = None
        if spec.probes_per_sec is not None and self._pace:
            pacer = TokenBucket(spec.probes_per_sec)
            wrap = lambda targets: PacedTargets(targets, pacer)

        tracer = obs.get_tracer()
        campaign_span = tracer.current
        wave_span = tracer.begin(
            "wave",
            wave=plan.wave,
            month=plan.month,
            reseeded=state.wave_reseeded,
            selected_prefixes=selected_prefixes,
        )
        # Events emitted below the runner (the coordinator, deep inside
        # the executor generator) nest under the in-flight wave.
        tracer.current = wave_span
        registry = obs.get_registry()
        if registry is not None and spec.probes_per_sec is not None:
            registry.gauge("pacing.configured_probes_per_sec").set(
                spec.probes_per_sec
            )
        shard_clock = time.monotonic()

        def on_shard(index, result):
            nonlocal shard_clock
            now = time.monotonic()
            seconds = now - shard_clock
            shard_clock = now
            state.shard_results.append(result)
            state.shard = index + 1
            tracer.point(
                "shard",
                wave=plan.wave,
                index=index,
                probes_sent=result.probes_sent,
                responses=result.responses,
                blocked=result.blocked,
                batches=result.batches,
                seconds=seconds,
            )
            if registry is not None:
                registry.histogram("shard.seconds").observe(seconds)
                registry.counter("campaign.probes_sent").inc(
                    result.probes_sent
                )
                registry.counter("campaign.responses").inc(
                    result.responses
                )
            manifest = self._checkpoint()
            tracer.point("checkpoint", wave=plan.wave, shard=state.shard)
            if registry is not None:
                registry.counter("campaign.checkpoints").inc()
            self._progress(pacer, manifest=manifest)

        # Wave-level retry: an executor whose *infrastructure* collapsed
        # (ExecutorFailure — a tripped failure budget, a crash-looped
        # fleet, a progress stall) is retried with bounded deterministic
        # backoff instead of aborting the campaign.  Shards already
        # drained by an interrupted run — or by a failed attempt — stay
        # in place: on_shard checkpointed them, so each retry re-scans
        # only the remainder and the merged results stay byte-identical.
        # The attempt counter itself is checkpointed, so a campaign
        # killed between retries resumes with the same remaining budget.
        # This same path is what survives a *coordinator* death: each
        # retry (and each `resume` of a killed run) builds a fresh
        # distributed Coordinator, which re-dials the address book —
        # the pre-started remote fleet reconnects and the wave
        # continues from the checkpoint stream.
        seeding = {}
        if spec.family == "v6":
            # The hitlist is the last reseed's planning snapshot — the
            # campaign's known-host list — and stays fixed until the
            # next reseed, so resumes rebuild the identical seeding.
            seeding = dict(
                hitlist=self.series[state.hitlist_month].addresses.values,
                samples=spec.samples_per_prefix,
            )
        try:
            while True:
                completed = list(state.shard_results)
                try:
                    sharded = run_sharded(
                        self._wave_targets(),
                        snapshot.addresses,
                        shards=spec.shards,
                        executor=spec.executor,
                        config=EngineConfig(batch_size=spec.batch_size),
                        blocklist=self.blocklist,
                        protocol=spec.protocol,
                        # A distinct probe order per wave, deterministic
                        # in the spec.
                        seed=spec.scan_seed + plan.wave,
                        on_shard=on_shard,
                        completed=completed,
                        wrap_targets=wrap,
                        **seeding,
                    )
                    self._absorb_executor_telemetry()
                    break
                except ExecutorFailure:
                    state.wave_attempts += 1
                    self._retries_used += 1
                    self._absorb_executor_telemetry()
                    tracer.point(
                        "wave_retry",
                        wave=plan.wave,
                        attempt=state.wave_attempts,
                    )
                    if registry is not None:
                        registry.counter("campaign.wave_retries").inc()
                    manifest = self._checkpoint()
                    self._progress(pacer, manifest=manifest)
                    if state.wave_attempts > spec.wave_retries:
                        raise
                    _retry_sleep(
                        backoff_delay(
                            state.wave_attempts,
                            spec.wave_retry_backoff,
                            _RETRY_BACKOFF_CAP,
                        )
                    )
        except BaseException as exc:
            tracer.current = campaign_span
            tracer.end("wave", wave_span, error=type(exc).__name__)
            raise
        state.wave_attempts = 0
        # on_shard only sees newly drained shards; make the state whole.
        state.shard_results = list(sharded.shard_results)
        state.shard = len(state.shard_results)

        explore_probes = explore_hits = absorbed = 0
        values = snapshot.addresses.values
        # A full discovery scan already probed the unselected space —
        # exploring it again would double-count its responsive hosts.
        full_scan = spec.reseed_scan and state.wave_reseeded
        if spec.explore_frac > 0.0 and not full_scan:
            unselected = self.announced - selected_addresses
            explore_n = (
                max(1, int(spec.explore_frac * unselected))
                if unselected > 0
                else 0
            )
            probes, hits, fresh = explore_unselected(
                self._rng, self.partition, state.mask, values, explore_n
            )
            state.mask[fresh] = True
            explore_probes = int(probes.size)
            explore_hits = int(hits.size)
            absorbed = int(fresh.size)

        merged = sharded.result
        responses_total = merged.responses + explore_hits
        hosts = len(values)
        state.records.append(
            WaveRecord(
                wave=plan.wave,
                month=plan.month,
                reseeded=state.wave_reseeded,
                selected_prefixes=selected_prefixes,
                selected_addresses=selected_addresses,
                probes_sent=merged.probes_sent + explore_probes,
                responses=responses_total,
                blocked=merged.blocked,
                batches=merged.batches,
                explore_probes=explore_probes,
                explore_hits=explore_hits,
                absorbed_prefixes=absorbed,
                responsive_hosts=hosts,
                hitrate=responses_total / hosts if hosts else 0.0,
                missed=hosts - responses_total,
            )
        )
        state.wave += 1
        state.shard = 0
        state.wave_planned = False
        state.wave_reseeded = False
        state.shard_results = []
        manifest = self._checkpoint()
        self._progress(pacer, manifest=manifest)
        record = state.records[-1]
        tracer.current = campaign_span
        tracer.end(
            "wave",
            wave_span,
            probes_sent=record.probes_sent,
            responses=record.responses,
            hitrate=record.hitrate,
        )

    def _absorb_executor_telemetry(self) -> None:
        """Fold mailbox publications into the cumulative totals.

        The registry mirrors the *totals* as gauges (not per-update
        counter increments) so sample keys like ``survivors`` read as
        their latest value instead of a nonsense sum.
        """
        for update in obs.take_executor_telemetry():
            obs.merge_telemetry(self._telemetry_totals, update)
        registry = obs.get_registry()
        if registry is not None:
            for key, value in self._telemetry_totals.items():
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    registry.gauge(f"executor.{key}").set(value)


def status_from_manifest(manifest: dict) -> dict:
    """The deterministic status document, from a checkpoint manifest.

    The single source of the status shape: the runner's
    :meth:`CampaignRunner.status` feeds its live manifest through this
    same function, so reading a checkpoint off disk (no dataset load)
    yields byte-identical status to asking the running campaign.
    In-flight shard counters are folded into the totals wholesale —
    probes, responses *and* blocked — so a mid-campaign document stays
    internally consistent.
    """
    spec = manifest["spec"]
    records = manifest["records"]
    in_flight = manifest["shard_results"]
    totals = {
        "probes_sent": sum(r["probes_sent"] for r in records)
        + sum(probes for probes, _, _, _ in in_flight),
        "responses": sum(r["responses"] for r in records)
        + sum(responses for _, responses, _, _ in in_flight),
        "blocked": sum(r["blocked"] for r in records)
        + sum(blocked for _, _, blocked, _ in in_flight),
        "explore_probes": sum(r["explore_probes"] for r in records),
        "explore_hits": sum(r["explore_hits"] for r in records),
        "absorbed_prefixes": sum(
            r["absorbed_prefixes"] for r in records
        ),
        "reseeds": sum(1 for r in records if r["reseeded"]),
    }
    return {
        "name": spec["name"],
        "spec": spec,
        "announced_addresses": manifest["announced"],
        "waves_planned": spec["waves"],
        "waves_completed": len(records),
        "position": {
            "wave": manifest["wave"], "shard": manifest["shard"],
        },
        "finished": manifest["finished"],
        "budget_exhausted": manifest["budget_exhausted"],
        "waves": records,
        "totals": totals,
    }


def run_campaign(
    spec: CampaignSpec, dataset=None, directory=None, **run_kwargs
) -> dict:
    """Plan and run a campaign in one call; returns the status document."""
    runner = CampaignRunner(spec, dataset=dataset, directory=directory)
    if runner.store is not None:
        runner.store.write_spec(runner.spec.to_dict())
    return runner.run(**run_kwargs)
