"""Campaign orchestrator: resumable multi-wave scan campaigns.

A *campaign* is a declarative spec (dataset preset, strategy
parameters, wave count, reseed policy, shard/executor/backend knobs,
probe budget, pacing rate) compiled into a sequence of *waves*.  Each
wave plans a selection with :class:`~repro.core.tass.TassStrategy`,
executes it through the sharded scan layer, and feeds the achieved
hitrate and missed counts into the reseed decision for the next wave.
Campaign state is checkpointed after every shard, so a killed run
resumes byte-identically — run-to-completion ≡ kill-and-resume at any
shard boundary.

Modules:

- :mod:`repro.orchestrator.campaign`   — spec, runner, wave records;
- :mod:`repro.orchestrator.waves`      — wave compilation, the reseed
  policy, and the per-wave cores shared with the analysis layer;
- :mod:`repro.orchestrator.checkpoint` — atomic single-file checkpoints;
- :mod:`repro.orchestrator.pacing`     — token-bucket probe pacing;
- :mod:`repro.orchestrator.cli`        — ``python -m repro.orchestrator``.
"""

from repro.orchestrator.campaign import (
    CampaignRunner,
    CampaignSpec,
    WaveRecord,
    run_campaign,
    status_from_manifest,
)
from repro.orchestrator.checkpoint import CheckpointStore
from repro.orchestrator.pacing import PacedTargets, TokenBucket
from repro.orchestrator.waves import ReseedPolicy, WavePlan, compile_waves

__all__ = [
    "CampaignRunner",
    "CampaignSpec",
    "CheckpointStore",
    "PacedTargets",
    "ReseedPolicy",
    "TokenBucket",
    "WavePlan",
    "WaveRecord",
    "compile_waves",
    "run_campaign",
    "status_from_manifest",
]
