"""Wave compilation, reseed policy, and the shared per-wave cores.

The orchestrator and the analysis layer answer the same per-wave
questions — how well does the current selection cover this month's
population, what does holding vs re-seeding cost, where should an
exploration budget go — so the cores live here, importable by both:
:mod:`repro.analysis.adaptive` and :mod:`repro.analysis.reseeding`
build their figures from these functions, and
:class:`~repro.orchestrator.campaign.CampaignRunner` drives real
(simulated) scans through them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# Module-level on purpose: this feeds per-wave hot loops, which must
# not pay an import-machinery lookup per wave.
from repro.bgp.backends import COUNT_CACHE

__all__ = [
    "RESEED_MODES",
    "ReseedPolicy",
    "WavePlan",
    "compile_waves",
    "sample_complement",
    "selection_stats",
    "explore_unselected",
    "hold_or_reseed",
]

RESEED_MODES = ("never", "interval", "hitrate")


# ---------------------------------------------------------------------------
# Reseed policy and static wave compilation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReseedPolicy:
    """When does a campaign re-derive its selection from a fresh census?

    - ``never``    — the wave-0 selection is kept for the whole campaign;
    - ``interval`` — re-seed every ``interval`` waves (0 = never);
    - ``hitrate``  — re-seed whenever the previous wave's achieved
      hitrate fell below ``min_hitrate`` (the adaptive trigger: the
      response/missed accounting of one wave drives the next).
    """

    mode: str = "interval"
    interval: int = 0
    min_hitrate: float = 0.0

    def __post_init__(self):
        if self.mode not in RESEED_MODES:
            raise ValueError(
                f"unknown reseed mode {self.mode!r}; "
                f"choose one of {RESEED_MODES}"
            )
        if self.interval < 0:
            raise ValueError("reseed interval must be >= 0")
        if not 0.0 <= self.min_hitrate <= 1.0:
            raise ValueError("min_hitrate must be in [0, 1]")

    def decide(self, wave: int, previous_hitrate: float | None) -> bool:
        """Re-seed at ``wave``?  Wave 0 always seeds."""
        if wave == 0:
            return True
        if self.mode == "never":
            return False
        if self.mode == "interval":
            return self.interval > 0 and wave % self.interval == 0
        return (
            previous_hitrate is not None
            and previous_hitrate < self.min_hitrate
        )

    def static_schedule(self) -> bool:
        """Is the reseed schedule known before the campaign runs?"""
        return self.mode != "hitrate"

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "interval": self.interval,
            "min_hitrate": self.min_hitrate,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ReseedPolicy":
        return cls(**data)


@dataclass(frozen=True)
class WavePlan:
    """The static part of one wave: which month it scans, reseed intent.

    ``reseed`` is ``None`` when the decision is runtime-conditional
    (the ``hitrate`` policy) — the runner resolves it from the previous
    wave's accounting.
    """

    wave: int
    month: int
    reseed: bool | None


def compile_waves(waves: int, months: int, policy: ReseedPolicy):
    """Compile a campaign spec into its static wave sequence.

    Wave ``w`` scans the census month ``min(w, months - 1)`` — a
    campaign longer than the dataset keeps scanning the last month's
    population rather than wrapping back to the (stale) seed.
    """
    if waves < 1:
        raise ValueError("a campaign needs at least one wave")
    if months < 1:
        raise ValueError("a campaign needs at least one census month")
    static = policy.static_schedule()
    return [
        WavePlan(
            wave=w,
            month=min(w, months - 1),
            reseed=policy.decide(w, None) if static or w == 0 else None,
        )
        for w in range(waves)
    ]


# ---------------------------------------------------------------------------
# Per-wave cores (shared with repro.analysis.adaptive / .reseeding)
# ---------------------------------------------------------------------------


def sample_complement(rng, partition, selected, n):
    """Uniform sample of ``n`` addresses from the unselected space.

    ``selected`` is a boolean mask over the partition; the draw is
    uniform over all addresses of the unselected intervals.  Returns
    ``(addresses, unselected_indices)``.
    """
    unselected = np.flatnonzero(~selected)
    sizes = partition.sizes[unselected]
    total = int(sizes.sum())
    if total == 0 or n == 0:
        return np.empty(0, dtype=np.int64), unselected
    bounds = np.cumsum(sizes)
    draws = rng.integers(0, total, size=n)
    # Sorting the draws makes the searchsorted below branch-predictable
    # (several times faster on large budgets) and the flat-space ->
    # address map is monotone, so the probes come out sorted too —
    # which is what lets explore_unselected test membership cheaply.
    # The draw multiset (and thus every downstream count) is unchanged.
    draws.sort()
    slot = np.searchsorted(bounds, draws, side="right")
    offset = draws - (bounds[slot] - sizes[slot])
    return partition.starts[unselected[slot]] + offset, unselected


def selection_stats(partition, selected, values, backend=None):
    """(responsive addresses found, probe cost) of a masked selection.

    Counts via the full-partition pass so immutable snapshot arrays
    hit :data:`~repro.bgp.backends.COUNT_CACHE` — every masked query
    against the same snapshot (static vs adaptive, wave after wave)
    reduces to a masked sum over one shared counting pass.
    """
    found = COUNT_CACHE.counts(partition, values, backend)[selected].sum()
    return int(found), int(partition.sizes[selected].sum())


def explore_unselected(rng, partition, selected, values, n):
    """Spend an ``n``-probe exploration budget on the unselected space.

    Draws ``n`` uniform probes outside the selection, checks them
    against the sorted responsive array ``values``, and reports which
    unselected partition indices the hits would absorb.  Returns
    ``(probes, unique_hits, fresh_indices)`` — the caller decides
    whether to absorb (``selected[fresh_indices] = True``).
    """
    probes, _ = sample_complement(rng, partition, selected, n)
    empty = np.empty(0, dtype=np.int64)
    if probes.size == 0 or len(values) == 0:
        return probes, empty, empty
    # probes come out of sample_complement sorted, so the cheap
    # direction is to look each (sorted, unique) responsive address up
    # in the probe array: sorted needles into a sorted haystack.  The
    # survivors are exactly the unique responsive probe hits.
    idx = np.searchsorted(probes, values).clip(max=len(probes) - 1)
    hits = values[probes[idx] == values]
    if hits.size == 0:
        return probes, hits, empty
    parts = np.unique(partition.index_of(hits))
    parts = parts[parts >= 0]
    return probes, hits, parts[~selected[parts]]


def hold_or_reseed(
    strategy, selection, snapshot, reseed, announced, backend=None
):
    """One campaign wave of the paper's step-5 accounting.

    Re-seeding scans the whole announced space (``announced`` probes)
    — which both measures everything (hitrate 1.0) and re-derives the
    selection for later waves.  Holding scans the current selection
    only.  Returns ``(selection, probes, hitrate)``.
    """
    if reseed:
        return strategy.plan(snapshot), announced, 1.0
    values = snapshot.addresses.values
    rate = (
        selection.count_in(values, backend=backend) / len(values)
        if len(values)
        else 0.0
    )
    return selection, selection.probe_count(), rate
