"""``python -m repro.obs report`` — campaign introspection tables.

Reads the observability artifacts of one campaign directory —
``events.jsonl``, ``metrics.json``, ``progress.json``, and the
deterministic ``status.json``/checkpoint — and renders:

- a campaign-wide **rollup JSON** (``--json``): one machine-readable
  document joining status totals, progress telemetry, per-wave /
  per-shard / per-worker breakdowns, and the metrics snapshot;
- human **tables** (default): per-wave accounting with wall-clock
  durations, per-shard probe counters, and the per-worker fleet view
  (shards drained, probes, engine seconds, frame bytes, drops).

Everything here is read-only and wall-clock-side; a report never
touches campaign state.  Missing artifacts degrade gracefully — a
campaign run with ``REPRO_OBS=off`` still reports its status and
progress, just without the event-derived columns.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "read_events",
    "load_rollup",
    "render_report",
    "format_event",
]


def read_events(path) -> list[dict]:
    """Parse an ``events.jsonl``; skips blank lines, raises on garbage."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _read_json(path) -> dict | None:
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def _status_of(directory: Path) -> dict | None:
    status = _read_json(directory / "status.json")
    if status is not None:
        return status
    # Mid-campaign (or killed) directory: derive the deterministic
    # status from the latest checkpoint generation, exactly like
    # `status` does.
    from repro.orchestrator.campaign import status_from_manifest
    from repro.orchestrator.checkpoint import CheckpointStore

    store = CheckpointStore(directory)
    if store.has_checkpoint():
        manifest, _ = store.load()
        return status_from_manifest(manifest)
    return None


def _wave_rows(status, events) -> list[dict]:
    """Per-wave accounting joined with wall-clock span durations."""
    # span id -> begin record, then end records pair durations up.
    seconds: dict[int, float] = {}
    begun: dict[str, dict] = {}
    for record in events:
        if record["type"] != "wave":
            continue
        if record["ev"] == "begin":
            begun[record["span"]] = record
        elif record["ev"] == "end":
            start = begun.pop(record["span"], None)
            if start is not None:
                wave = start["data"].get("wave")
                delta = record["mono"] - start["mono"]
                seconds[wave] = seconds.get(wave, 0.0) + delta
    rows = []
    for record in (status or {}).get("waves", []):
        rows.append(dict(record, seconds=seconds.get(record["wave"])))
    return rows


def _shard_rows(events) -> list[dict]:
    return [
        {
            "wave": r["data"].get("wave"),
            "index": r["data"].get("index"),
            "probes_sent": r["data"].get("probes_sent"),
            "responses": r["data"].get("responses"),
            "blocked": r["data"].get("blocked"),
            "batches": r["data"].get("batches"),
            "seconds": r["data"].get("seconds"),
        }
        for r in events
        if r["type"] == "shard" and r["ev"] == "point"
    ]


def _worker_rows(events, metrics) -> list[dict]:
    """The fleet view: one row per worker pid seen in events/metrics."""
    workers: dict[int, dict] = {}

    def row(pid):
        return workers.setdefault(
            pid,
            {
                "pid": pid,
                "origin": None,
                "connects": 0,
                "drops": 0,
                "last_drop_reason": None,
                "shards": 0,
                "probes": 0,
                "seconds": 0.0,
                "bytes_in": None,
                "bytes_out": None,
            },
        )

    for record in events:
        data = record["data"]
        if record["type"] == "worker_connect":
            entry = row(data["pid"])
            entry["connects"] += 1
            entry["origin"] = data.get("origin") or entry["origin"]
        elif record["type"] == "worker_drop":
            entry = row(data["pid"])
            entry["drops"] += 1
            entry["last_drop_reason"] = data.get("reason")
        elif record["type"] == "shard_result":
            entry = row(data["pid"])
            entry["shards"] += 1
            entry["probes"] += data.get("probes_sent") or 0
            entry["seconds"] += data.get("seconds") or 0.0
    for name, instrument in (metrics or {}).items():
        parts = name.split(".")
        if len(parts) == 3 and parts[0] == "worker":
            try:
                pid = int(parts[1])
            except ValueError:
                continue
            if parts[2] in ("bytes_in", "bytes_out"):
                row(pid)[parts[2]] = instrument.get("value")
    return [workers[pid] for pid in sorted(workers)]


def _event_summary(events) -> dict:
    by_type: dict[str, int] = {}
    for record in events:
        by_type[record["type"]] = by_type.get(record["type"], 0) + 1
    return {
        "total": len(events),
        "runs": len({r["run"] for r in events}),
        "by_type": dict(sorted(by_type.items())),
    }


def load_rollup(directory) -> dict:
    """The campaign-wide rollup document for one campaign directory."""
    directory = Path(directory)
    status = _status_of(directory)
    progress = _read_json(directory / "progress.json")
    metrics = _read_json(directory / "metrics.json")
    events = read_events(directory / "events.jsonl")
    campaign = None
    if status is not None:
        campaign = {
            "name": status["name"],
            "finished": status["finished"],
            "budget_exhausted": status["budget_exhausted"],
            "waves_completed": status["waves_completed"],
            "waves_planned": status["waves_planned"],
            "position": status["position"],
            "totals": status["totals"],
            "executor": status["spec"].get("executor"),
            "shards": status["spec"].get("shards"),
        }
    return {
        "directory": str(directory),
        "campaign": campaign,
        "progress": progress,
        "waves": _wave_rows(status, events),
        "shards": _shard_rows(events),
        "workers": _worker_rows(events, metrics),
        "events": _event_summary(events),
        "metrics": metrics,
    }


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _table(headers, rows) -> str:
    cells = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  " + "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    ]
    for row in cells:
        lines.append(
            "  " + "  ".join(c.rjust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_report(rollup: dict) -> str:
    """Human tables for one rollup document."""
    out = []
    campaign = rollup["campaign"]
    if campaign is None:
        out.append(f"{rollup['directory']}: no campaign artifacts")
    else:
        totals = campaign["totals"]
        out.append(
            f"campaign {campaign['name']!r} "
            f"[{campaign['executor']}, {campaign['shards']} shard(s)]: "
            f"{campaign['waves_completed']}/{campaign['waves_planned']} "
            f"waves, {totals['probes_sent']} probes, "
            f"{totals['responses']} responses"
            + (", finished" if campaign["finished"] else ", in flight")
        )
    progress = rollup["progress"]
    if progress:
        rate = progress.get("achieved_probes_per_sec")
        out.append(
            f"progress: wave {progress.get('wave')} shard "
            f"{progress.get('shard')}, retries "
            f"{progress.get('wave_retries_used')}"
            + (f", {rate:.1f} probes/s achieved" if rate else "")
        )
        telemetry = progress.get("executor_telemetry")
        if telemetry:
            out.append(
                "fleet telemetry: "
                + ", ".join(
                    f"{k}={v}" for k, v in sorted(telemetry.items())
                )
            )
    if rollup["waves"]:
        out.append("\nper-wave:")
        out.append(
            _table(
                ["wave", "month", "reseeded", "probes", "responses",
                 "hitrate", "seconds"],
                [
                    [w["wave"], w["month"], w["reseeded"],
                     w["probes_sent"], w["responses"],
                     round(w["hitrate"], 4), w.get("seconds")]
                    for w in rollup["waves"]
                ],
            )
        )
    if rollup["shards"]:
        out.append("\nper-shard:")
        out.append(
            _table(
                ["wave", "shard", "probes", "responses", "blocked",
                 "batches", "seconds"],
                [
                    [s["wave"], s["index"], s["probes_sent"],
                     s["responses"], s["blocked"], s["batches"],
                     s["seconds"]]
                    for s in rollup["shards"]
                ],
            )
        )
    if rollup["workers"]:
        out.append("\nper-worker:")
        out.append(
            _table(
                ["pid", "origin", "connects", "shards", "probes",
                 "seconds", "bytes_in", "bytes_out", "drops"],
                [
                    [w["pid"], w["origin"], w["connects"], w["shards"],
                     w["probes"], w["seconds"], w["bytes_in"],
                     w["bytes_out"], w["drops"]]
                    for w in rollup["workers"]
                ],
            )
        )
    summary = rollup["events"]
    if summary["total"]:
        out.append(
            f"\nevents: {summary['total']} across {summary['runs']} "
            "run(s): "
            + ", ".join(
                f"{t}={n}" for t, n in summary["by_type"].items()
            )
        )
    return "\n".join(out)


def format_event(record: dict) -> str:
    """One-line rendering of a trace event (``status --follow``)."""
    data = record["data"]
    payload = " ".join(f"{k}={data[k]}" for k in sorted(data))
    marker = {"begin": ">", "end": "<", "point": "."}[record["ev"]]
    return (
        f"{record['ts']:.3f} {marker} {record['type']:<22s} {payload}"
    )
