"""The trace-event schema and its validator (the CI smoke gate).

Every ``events.jsonl`` record carries the fixed envelope documented in
:mod:`repro.obs.events` plus a ``data`` payload whose required keys
depend on the event ``type``.  :data:`EVENT_TYPES` is the single
source of truth for both the emitters and this validator; emitters may
add extra ``data`` keys freely (the schema is open — a reader must
ignore what it does not know), but a missing required key, an unknown
type, a broken span reference, or out-of-order sequence numbers are
validation errors.

``validate_events`` is pure (lines in, error strings out) so tests can
feed it fabricated logs; ``validate_file`` wraps it for the CLI
(``python -m repro.obs validate``) and the CI smoke job.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "ENVELOPE_KEYS",
    "EVENT_KINDS",
    "EVENT_TYPES",
    "validate_events",
    "validate_file",
]

#: Exactly the keys every record carries.
ENVELOPE_KEYS = frozenset(
    {"run", "seq", "pid", "ts", "mono", "ev", "type", "span", "parent",
     "data"}
)

#: The record kinds: span edges and point events.
EVENT_KINDS = frozenset({"begin", "end", "point"})

#: type -> required ``data`` keys (on the *begin*/*point* record; end
#: records carry outcome fields the schema leaves open).
EVENT_TYPES: dict[str, frozenset] = {
    # -- orchestrator ---------------------------------------------------
    "campaign": frozenset({"name", "waves", "executor"}),
    "wave": frozenset({"wave", "month"}),
    "shard": frozenset({"wave", "index", "probes_sent", "responses"}),
    "checkpoint": frozenset({"wave", "shard"}),
    "wave_retry": frozenset({"wave", "attempt"}),
    # -- distributed coordinator ---------------------------------------
    "worker_spawn": frozenset({"pid", "ordinal"}),
    "worker_connect": frozenset({"pid"}),
    "worker_drop": frozenset({"pid", "reason"}),
    "shard_dispatch": frozenset({"index", "shard", "attempt", "pid"}),
    "shard_result": frozenset({"index", "pid"}),
    "fault_armed": frozenset({"shard", "attempt", "kind"}),
    "fault_fired": frozenset({"pid", "kind"}),
    "speculative_redispatch": frozenset({"index"}),
    "duplicate_discarded": frozenset({"index", "pid"}),
    "deadline_kill": frozenset({"pid", "index"}),
    "auth_reject": frozenset({"pid"}),
    "fleet_degraded": frozenset({"survivors"}),
    # -- checkpoint store (storage fault plane) ------------------------
    "checkpoint.corrupt": frozenset({"gen", "reason"}),
    "checkpoint.rollback": frozenset({"from_gen", "to_gen"}),
    "storage.fault_fired": frozenset({"kind", "site"}),
}


def validate_events(lines) -> list[str]:
    """Validate an iterable of JSONL lines; returns error strings.

    An empty list means the log is valid.  Unclosed spans are *not*
    errors — a killed campaign legitimately leaves its campaign/wave
    spans open, and the resumed process appends under a fresh run id.
    """
    errors: list[str] = []
    # Per run id: last seq, last mono, open/known span ids.
    last_seq: dict[str, int] = {}
    last_mono: dict[str, float] = {}
    known_spans: dict[str, set] = {}
    open_spans: dict[str, dict] = {}

    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        where = f"line {lineno}"
        try:
            record = json.loads(line)
        except ValueError as exc:
            errors.append(f"{where}: not JSON ({exc})")
            continue
        if not isinstance(record, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        keys = set(record)
        if keys != set(ENVELOPE_KEYS):
            missing = sorted(ENVELOPE_KEYS - keys)
            extra = sorted(keys - ENVELOPE_KEYS)
            errors.append(
                f"{where}: bad envelope"
                + (f", missing {missing}" if missing else "")
                + (f", unexpected {extra}" if extra else "")
            )
            continue
        run, seq, ev = record["run"], record["seq"], record["ev"]
        type_, span, parent = record["type"], record["span"], record["parent"]
        data = record["data"]
        if ev not in EVENT_KINDS:
            errors.append(f"{where}: unknown ev {ev!r}")
            continue
        if not isinstance(seq, int) or seq < 1:
            errors.append(f"{where}: seq must be a positive int, got {seq!r}")
            continue
        if run in last_seq and seq <= last_seq[run]:
            errors.append(
                f"{where}: seq {seq} not increasing within run {run!r} "
                f"(last {last_seq[run]})"
            )
        last_seq[run] = seq
        mono = record["mono"]
        if not isinstance(mono, (int, float)):
            errors.append(f"{where}: mono must be a number, got {mono!r}")
        else:
            if run in last_mono and mono < last_mono[run]:
                errors.append(
                    f"{where}: mono went backwards within run {run!r}"
                )
            last_mono[run] = mono
        if type_ not in EVENT_TYPES:
            errors.append(f"{where}: unknown event type {type_!r}")
            continue
        if not isinstance(data, dict):
            errors.append(f"{where}: data must be an object")
            continue
        spans = known_spans.setdefault(run, set())
        opened = open_spans.setdefault(run, {})
        if ev == "end":
            begun = opened.pop(span, None)
            if begun is None:
                errors.append(
                    f"{where}: end of span {span!r} that was never begun "
                    f"in run {run!r}"
                )
            elif begun != type_:
                errors.append(
                    f"{where}: span {span!r} begun as {begun!r} but ended "
                    f"as {type_!r}"
                )
            continue
        # begin / point records carry the payload contract.
        missing = sorted(EVENT_TYPES[type_] - set(data))
        if missing:
            errors.append(
                f"{where}: {type_!r} event missing data keys {missing}"
            )
        if not isinstance(span, str) or not span:
            errors.append(f"{where}: span must be a non-empty string")
            continue
        if span in spans:
            errors.append(f"{where}: span id {span!r} reused in run {run!r}")
        spans.add(span)
        if parent is not None and parent not in spans:
            errors.append(
                f"{where}: parent {parent!r} not seen earlier in run "
                f"{run!r}"
            )
        if ev == "begin":
            opened[span] = type_
    return errors


def validate_file(path) -> list[str]:
    """Validate one ``events.jsonl`` on disk; returns error strings."""
    path = Path(path)
    if not path.exists():
        return [f"{path}: no such event log"]
    with open(path) as fh:
        return validate_events(fh)
