"""Structured trace events: append-only JSONL spans with monotonic time.

One campaign writes one ``events.jsonl`` next to its ``progress.json``.
Every line is a self-contained JSON record:

.. code-block:: json

    {"run": "8f3a…", "seq": 12, "pid": 4711, "ts": 1754630000.12,
     "mono": 3.41, "ev": "begin", "type": "wave", "span": "4711-3",
     "parent": "4711-1", "data": {"wave": 1, "month": 2}}

- ``run``    — a random id minted per :class:`Tracer`, so the records
  of a killed-and-resumed campaign (two processes appending to one
  file) never get their ``seq``/``span`` namespaces confused;
- ``seq``    — strictly increasing per run (the validator's ordering
  check);
- ``ts`` / ``mono`` — wall-clock and monotonic seconds; durations are
  always differences of ``mono``, never of ``ts``;
- ``ev``     — ``begin`` / ``end`` (span edges) or ``point``;
- ``span`` / ``parent`` — ids forming the campaign → wave → shard /
  worker tree;
- ``data``   — the event-type-specific payload
  (:mod:`repro.obs.schema` documents each type).

Writes are atomic at line granularity: the file is opened with
``O_APPEND`` and each record is a single ``os.write`` of one
``\\n``-terminated line, so concurrent writers (a coordinator and a
runner, or a resumed process racing a stale one) can interleave lines
but never tear one.  Nothing here is fsync'd — the event log is
telemetry, and losing its tail with the process is fine; the
checkpoint store owns durability.
"""

from __future__ import annotations

import json
import os
import threading
import time

__all__ = ["Tracer", "NullTracer"]

#: Default-parameter sentinel: parent to the tracer's current span.
_CURRENT = object()


class Tracer:
    """Append trace events to one JSONL file; thread-safe; cheap.

    :attr:`current` is the implicit parent: the component that owns
    the scope (the campaign runner) points it at the open campaign or
    wave span, and everything reporting through :func:`~repro.obs.
    get_tracer` — the coordinator, deep inside an executor generator —
    nests under it without threading span ids through every layer.
    Pass ``parent=None`` explicitly to emit a root record.
    """

    def __init__(self, path, clock=time.monotonic, wall=time.time):
        self.path = os.fspath(path)
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._clock = clock
        self._wall = wall
        self._lock = threading.Lock()
        self._seq = 0
        self._pid = os.getpid()
        self.run_id = os.urandom(8).hex()
        self.emitted = 0
        self.current: str | None = None

    # -- record plumbing -----------------------------------------------

    def _emit(self, ev: str, type_: str, span: str,
              parent: str | None, data: dict) -> None:
        with self._lock:
            if self._fd is None:
                return
            self._seq += 1
            record = {
                "run": self.run_id,
                "seq": self._seq,
                "pid": self._pid,
                "ts": self._wall(),
                "mono": self._clock(),
                "ev": ev,
                "type": type_,
                "span": span,
                "parent": parent,
                "data": data,
            }
            line = json.dumps(record, separators=(",", ":")) + "\n"
            os.write(self._fd, line.encode())
            self.emitted += 1

    def _new_span_id(self) -> str:
        # Under the lock of the caller?  No: ids only need uniqueness
        # within the run, and the seq bump in _emit is the only shared
        # counter — mint span ids from their own counter-free source.
        return f"{self._pid:x}-{os.urandom(4).hex()}"

    # -- public API ----------------------------------------------------

    def begin(self, type_: str, parent=_CURRENT, **data) -> str:
        """Open a span; returns its id (pass to :meth:`end`)."""
        if parent is _CURRENT:
            parent = self.current
        span = self._new_span_id()
        self._emit("begin", type_, span, parent, data)
        return span

    def end(self, type_: str, span: str, **data) -> None:
        """Close a span opened by :meth:`begin`."""
        self._emit("end", type_, span, None, data)

    def point(self, type_: str, parent=_CURRENT, **data) -> str:
        """A point event (its own span id, no end record)."""
        if parent is _CURRENT:
            parent = self.current
        span = self._new_span_id()
        self._emit("point", type_, span, parent, data)
        return span

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullTracer:
    """The no-op tracer installed outside any observability scope."""

    run_id = None
    emitted = 0
    current = None

    def begin(self, type_, parent=_CURRENT, **data):
        return None

    def end(self, type_, span, **data):
        return None

    def point(self, type_, parent=_CURRENT, **data):
        return None

    def close(self) -> None:
        return None

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        return None
