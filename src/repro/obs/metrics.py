"""Counters, gauges, and histograms for the campaign hot paths.

A :class:`MetricsRegistry` is a flat namespace of named instruments:

- :class:`Counter`   — a monotonically increasing total (``inc``);
- :class:`Gauge`     — a last-value sample (``set``);
- :class:`Histogram` — a distribution summary: count / sum / min /
  max plus fixed base-2 log buckets, so a shard-latency distribution
  costs O(1) memory however many shards a campaign drains.

Names are dotted paths (``engine.probes``, ``dist.shard_seconds``,
``worker.4711.bytes_out``); the per-entity segment is part of the name
rather than a label system — the report layer groups on it.

Everything is deliberately boring Python: instrument operations are an
attribute lookup and an add, because the engine batch loop calls them.
The registry is **process-local and campaign-scoped** (installed via
:func:`repro.obs.observe`); distributed workers run in other processes
and ship their numbers home inside ``result``/``stats`` protocol
frames instead, which the coordinator folds in under ``worker.*``.

``snapshot()`` renders the whole registry as one plain-JSON dict — the
shape ``metrics.json`` persists and ``repro.obs report`` reads.
"""

from __future__ import annotations

import math
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing total (ints or float seconds)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1) -> None:
        self.value += amount

    def to_json(self):
        return {"kind": "counter", "value": self.value}


class Gauge:
    """A last-value sample."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = None

    def set(self, value) -> None:
        self.value = value

    def to_json(self):
        return {"kind": "gauge", "value": self.value}


class Histogram:
    """Count/sum/min/max plus base-2 log buckets, O(1) memory.

    Bucket ``i`` counts observations in ``(2**(i-1), 2**i]`` (bucket 0
    holds everything ``<= 1``); rendered with the upper bound as the
    key, so a latency histogram reads ``{"0.25": 3, "0.5": 17, …}``.
    Non-positive observations land in the bottom bucket.
    """

    __slots__ = ("count", "total", "min", "max", "_buckets")

    #: Bucket exponent range: 2**-20 (~1 µs) .. 2**20 (~12 days).
    _LO, _HI = -20, 20

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._buckets = {}

    def observe(self, value) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0:
            exp = self._LO
        else:
            exp = min(self._HI, max(self._LO, math.ceil(math.log2(value))))
        self._buckets[exp] = self._buckets.get(exp, 0) + 1

    def to_json(self):
        return {
            "kind": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count if self.count else None,
            "buckets": {
                repr(float(2**exp)): n
                for exp, n in sorted(self._buckets.items())
            },
        }


class MetricsRegistry:
    """A named, typed, process-local instrument namespace."""

    def __init__(self):
        self._instruments = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.setdefault(name, cls())
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def fold_counts(self, prefix: str, mapping: dict) -> None:
        """Add every numeric in ``mapping`` to ``{prefix}.{key}`` counters.

        Booleans count occurrences of ``True``; non-numeric values are
        skipped — this is how coordinator telemetry and worker stats
        frames (arbitrary plain dicts) land in the registry without a
        schema of their own.
        """
        for key, value in mapping.items():
            if isinstance(value, bool):
                self.counter(f"{prefix}.{key}").inc(int(value))
            elif isinstance(value, (int, float)):
                self.counter(f"{prefix}.{key}").inc(value)

    def snapshot(self) -> dict:
        """The whole registry as one plain-JSON dict, sorted by name."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: instrument.to_json() for name, instrument in items}
