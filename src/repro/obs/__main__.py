"""``python -m repro.obs`` — report / validate campaign observability.

- ``report --dir DIR [--json]``  — render per-wave / per-shard /
  per-worker tables (or the machine-readable rollup document) for one
  campaign directory;
- ``validate --dir DIR`` (or ``validate --events FILE``) — check an
  event log against the :mod:`repro.obs.schema`; non-zero exit on any
  violation (the CI smoke gate).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.report import load_rollup, render_report
from repro.obs.schema import validate_file

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Campaign observability: reports and event-log "
        "validation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report",
        help="per-wave/per-shard/per-worker tables + rollup JSON",
    )
    report.add_argument("--dir", required=True, help="campaign directory")
    report.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable rollup document instead",
    )

    validate = sub.add_parser(
        "validate", help="validate an event log against the schema"
    )
    target = validate.add_mutually_exclusive_group(required=True)
    target.add_argument("--dir", help="campaign directory")
    target.add_argument("--events", help="an events.jsonl path")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "report":
        rollup = load_rollup(args.dir)
        if args.json:
            print(json.dumps(rollup, indent=2, sort_keys=True))
        else:
            print(render_report(rollup))
        return 0

    if args.command == "validate":
        path = (
            Path(args.dir) / "events.jsonl" if args.dir else args.events
        )
        errors = validate_file(path)
        if errors:
            for error in errors:
                print(f"error: {error}", file=sys.stderr)
            print(
                f"{path}: {len(errors)} schema violation(s)",
                file=sys.stderr,
            )
            return 1
        print(f"{path}: event log validates")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `repro.obs report ... | head`
        sys.exit(141)
