"""The observability plane: trace events, metrics, introspection.

Everything in this package is **wall-clock-side**: it observes a
campaign without ever becoming part of its state.  Checkpointed
manifests, merged results, ``status.json``, and kill-and-resume
byte-identity are unchanged whether observability is off, on, or
toggled mid-resume — the same contract ``progress.json`` has obeyed
since the state/telemetry split, extended to a full plane:

- :mod:`repro.obs.events`  — an append-only JSONL trace-event log
  (spans with parent/child ids and monotonic timings) written
  atomically alongside ``progress.json``;
- :mod:`repro.obs.metrics` — a process-local registry of counters,
  gauges, and histograms that the orchestrator, the distributed
  coordinator, the token bucket, and the scan engine report into;
- :mod:`repro.obs.schema`  — the event-log schema and its validator
  (the CI smoke gate);
- :mod:`repro.obs.report`  — ``python -m repro.obs report``: per-wave /
  per-shard / per-worker tables plus a campaign-wide rollup JSON.

Activation is scoped, not global: the ``REPRO_OBS`` env knob
(``off`` / ``events`` / ``full``, validated in :mod:`repro.env`) says
what *may* be recorded, and the component that owns an observability
scope — normally :class:`~repro.orchestrator.campaign.CampaignRunner`
— *installs* a tracer and a registry for its duration via
:func:`observe`.  Cross-cutting code (the coordinator, the engine, the
token bucket) asks :func:`get_tracer` / :func:`get_registry` and gets
a no-op tracer / ``None`` outside any scope, so standalone library
calls pay nothing.

The one always-on seam is the executor-telemetry mailbox
(:func:`publish_executor_telemetry` / :func:`take_executor_telemetry`):
the distributed coordinator drops its run telemetry there so the
orchestrator can persist it into ``progress.json`` even with
``REPRO_OBS=off`` — losing the fleet's failure accounting with the
process was a bug, not a feature.
"""

from __future__ import annotations

import contextlib

from repro.env import OBS_MODES, obs_mode
from repro.obs.events import NullTracer, Tracer
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "OBS_MODES",
    "obs_mode",
    "events_enabled",
    "metrics_enabled",
    "Tracer",
    "NullTracer",
    "MetricsRegistry",
    "observe",
    "get_tracer",
    "get_registry",
    "publish_executor_telemetry",
    "take_executor_telemetry",
    "merge_telemetry",
]

_NULL_TRACER = NullTracer()

#: The installed (tracer, registry) scope; module-level because the
#: components that report are constructed far from the campaign that
#: owns them (the coordinator inside an executor generator, the engine
#: inside a worker builder).
_tracer: Tracer | NullTracer = _NULL_TRACER
_registry: MetricsRegistry | None = None

#: Telemetry dicts published by executors since the last take — the
#: always-on mailbox between the coordinator and the orchestrator.
_telemetry_mailbox: list[dict] = []


def events_enabled(explicit=None) -> bool:
    """Whether trace events may be recorded (``REPRO_OBS`` != off)."""
    return obs_mode(explicit) != "off"


def metrics_enabled(explicit=None) -> bool:
    """Whether metrics may be recorded (``REPRO_OBS`` == full)."""
    return obs_mode(explicit) == "full"


def get_tracer():
    """The installed tracer, or a no-op tracer outside any scope."""
    return _tracer


def get_registry() -> MetricsRegistry | None:
    """The installed metrics registry, or ``None`` outside any scope."""
    return _registry


@contextlib.contextmanager
def observe(tracer=None, registry=None):
    """Install an observability scope for the duration of a ``with``.

    ``None`` leaves the corresponding slot at its no-op default, so a
    runner under ``REPRO_OBS=events`` installs only a tracer.  Scopes
    nest: the previous slots are restored on exit, even on error.
    """
    global _tracer, _registry
    previous = (_tracer, _registry)
    _tracer = tracer if tracer is not None else _NULL_TRACER
    _registry = registry
    try:
        yield
    finally:
        _tracer, _registry = previous


def publish_executor_telemetry(telemetry: dict) -> None:
    """Drop one executor run's telemetry in the mailbox (always on)."""
    _telemetry_mailbox.append(dict(telemetry))


def take_executor_telemetry() -> list[dict]:
    """Drain the mailbox — every publication since the last take."""
    global _telemetry_mailbox
    taken, _telemetry_mailbox = _telemetry_mailbox, []
    return taken


#: Telemetry keys that are per-run samples, not cumulative counts.
_LAST_VALUE_KEYS = frozenset({"survivors", "fleet_initial"})


def merge_telemetry(totals: dict, update: dict) -> dict:
    """Accumulate one telemetry dict into running totals, in place.

    Numeric values add (booleans count True occurrences — a campaign
    that degraded in 2 of 5 waves reports ``degraded: 2``), except the
    per-run sample keys (``survivors``, ``fleet_initial``), which keep
    the latest non-``None`` value — as does everything non-numeric.
    """
    for key, value in update.items():
        if key in _LAST_VALUE_KEYS:
            if value is not None or key not in totals:
                totals[key] = value
        elif isinstance(value, bool):
            totals[key] = int(totals.get(key) or 0) + int(value)
        elif isinstance(value, (int, float)):
            totals[key] = (totals.get(key) or 0) + value
        elif value is not None or key not in totals:
            totals[key] = value
    return totals
