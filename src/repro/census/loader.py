"""Census dataset presets, generation, and on-disk caching.

``get_dataset(preset)`` is the single entry point the benchmark suite
uses: the first call generates the synthetic world (see
:mod:`repro.census.synth`) and caches it as a compressed ``.npz`` under
``data/``; later calls reload it in a couple of seconds.  Bump
``LOADER_VERSION`` whenever the generator changes shape — the cache key
(and the CI cache key) includes it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.census.addrset import AddressSet
from repro.census.synth import KINDS, PRESETS, generate_world
from repro.bgp.table import Prefix, RoutingTable
from repro.core.addrspace import V6

__all__ = [
    "LOADER_VERSION",
    "Snapshot",
    "SnapshotSeries",
    "Topology",
    "CensusDataset",
    "get_dataset",
]

#: Dataset schema/generator version; part of every cache key.
LOADER_VERSION = 1


class Snapshot:
    """The responsive population of one protocol in one month."""

    __slots__ = ("addresses", "host_ids", "kinds", "month")

    def __init__(self, addresses, host_ids, kinds, month=0):
        if not isinstance(addresses, AddressSet):
            addresses = AddressSet(addresses, assume_sorted_unique=True)
        self.addresses = addresses
        self.host_ids = np.asarray(host_ids, dtype=np.int64)
        self.kinds = np.asarray(kinds, dtype=np.int8)
        self.month = month

    def __len__(self) -> int:
        return len(self.addresses)


class SnapshotSeries:
    """The monthly snapshots of one protocol, seed first."""

    def __init__(self, protocol, snapshots):
        self.protocol = protocol
        self._snapshots = list(snapshots)

    @property
    def seed_snapshot(self) -> Snapshot:
        return self._snapshots[0]

    def __getitem__(self, month) -> Snapshot:
        return self._snapshots[month]

    def __len__(self) -> int:
        return len(self._snapshots)

    def __iter__(self):
        return iter(self._snapshots)


class Topology:
    """The synthetic routing world: table, origin ASes, allocations."""

    def __init__(self, table: RoutingTable, asns, allocated_blocks):
        self.table = table
        self.asns = dict(asns)
        self.allocated_blocks = [tuple(b) for b in allocated_blocks]

    def allocated_address_count(self) -> int:
        return int(sum(end - start for start, end in self.allocated_blocks))

    def origin_asn(self, prefix: Prefix) -> int:
        return self.asns[prefix]

    def write_mrt(self, path) -> int:
        """Dump the table as an MRT TABLE_DUMP_V2 RIB; returns #entries."""
        from repro.bgp.mrt import write_rib

        entries = (
            (p, self.asns.get(p, 64512)) for p in self.table.prefixes
        )
        return write_rib(path, entries)


class CensusDataset:
    """A full benchmark dataset: topology + per-protocol snapshot series."""

    def __init__(self, preset, seed, topology, series):
        self.preset = preset
        self.seed = seed
        self.topology = topology
        self._series = dict(series)
        self.protocols = sorted(self._series)
        self.kind_names = list(KINDS)

    @property
    def family(self) -> str:
        """The address family of this dataset (from its prefix width)."""
        prefixes = self.topology.table.l_prefixes
        return "v6" if prefixes and prefixes[0].bits == 128 else "v4"

    def series_for(self, protocol: str) -> SnapshotSeries:
        return self._series[protocol]

    @property
    def months(self) -> int:
        return len(next(iter(self._series.values())))

    # -- generation ----------------------------------------------------

    @classmethod
    def generate(cls, preset: str = "small", seed: int = 0) -> "CensusDataset":
        """Generate a dataset from scratch (no cache involvement)."""
        spec, table, asns, blocks, census = generate_world(preset, seed)
        series = {
            protocol: SnapshotSeries(
                protocol,
                [
                    Snapshot(addr, hid, kind, month=m)
                    for m, (addr, hid, kind) in enumerate(months)
                ],
            )
            for protocol, months in census.items()
        }
        return cls(preset, seed, Topology(table, asns, blocks), series)

    # -- serialization -------------------------------------------------

    def save(self, path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        table = self.topology.table
        prefixes = table.prefixes
        index = {p: i for i, p in enumerate(prefixes)}
        parents = np.full(len(prefixes), -1, dtype=np.int64)
        for parent in prefixes:
            for child in table.children_of(parent):
                parents[index[child]] = index[parent]
        if self.family == "v6":
            # 128-bit networks/blocks don't fit int64: store them in the
            # S16 wire representation under v6-only keys (the v4 cache
            # format is untouched, so LOADER_VERSION stays put).
            network_arrays = {
                "pfx_network6": V6.encode([p.network for p in prefixes]),
            }
            block_arrays = {
                "blocks6": V6.encode(
                    [
                        bound
                        for block in self.topology.allocated_blocks
                        for bound in block
                    ]
                ),
            }
        else:
            network_arrays = {
                "pfx_network": np.fromiter(
                    (p.network for p in prefixes), np.int64, len(prefixes)
                ),
            }
            block_arrays = {
                "blocks": np.asarray(
                    self.topology.allocated_blocks, dtype=np.int64
                ),
            }
        arrays = {
            **network_arrays,
            "pfx_length": np.fromiter(
                (p.length for p in prefixes), np.int64, len(prefixes)
            ),
            "pfx_parent": parents,
            "pfx_asn": np.fromiter(
                (self.topology.asns[p] for p in prefixes),
                np.int64,
                len(prefixes),
            ),
            **block_arrays,
        }
        for protocol, series in self._series.items():
            for m, snap in enumerate(series):
                arrays[f"addr_{protocol}_{m}"] = snap.addresses.values
                arrays[f"hid_{protocol}_{m}"] = snap.host_ids
                arrays[f"kind_{protocol}_{m}"] = snap.kinds
        meta = {
            "version": LOADER_VERSION,
            "preset": self.preset,
            "seed": self.seed,
            "protocols": self.protocols,
            "months": self.months,
        }
        if self.family != "v4":
            meta["family"] = self.family
        tmp = path.with_suffix(".tmp.npz")
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, meta=json.dumps(meta), **arrays)
        tmp.replace(path)

    @classmethod
    def load(cls, path) -> "CensusDataset":
        with np.load(path) as data:
            meta = json.loads(str(data["meta"]))
            if meta["version"] != LOADER_VERSION:
                raise ValueError("dataset cache version mismatch")
            family = meta.get("family", "v4")
            lengths = data["pfx_length"]
            parents = data["pfx_parent"]
            asn_arr = data["pfx_asn"]
            if family == "v6":
                networks = V6.decode(data["pfx_network6"])
                prefixes = [
                    Prefix(n, int(l), 128)
                    for n, l in zip(networks, lengths.tolist())
                ]
            else:
                networks = data["pfx_network"]
                prefixes = [
                    Prefix(int(n), int(l))
                    for n, l in zip(networks.tolist(), lengths.tolist())
                ]
            children = {}
            l_prefixes = []
            for i, parent_idx in enumerate(parents.tolist()):
                if parent_idx < 0:
                    l_prefixes.append(prefixes[i])
                else:
                    children.setdefault(prefixes[parent_idx], []).append(
                        prefixes[i]
                    )
            table = RoutingTable(l_prefixes, children)
            asns = {
                p: int(a) for p, a in zip(prefixes, asn_arr.tolist())
            }
            if family == "v6":
                bounds = V6.decode(data["blocks6"])
                blocks = [
                    (bounds[i], bounds[i + 1])
                    for i in range(0, len(bounds), 2)
                ]
            else:
                blocks = [tuple(b) for b in data["blocks"].tolist()]
            series = {}
            for protocol in meta["protocols"]:
                snaps = [
                    Snapshot(
                        data[f"addr_{protocol}_{m}"],
                        data[f"hid_{protocol}_{m}"],
                        data[f"kind_{protocol}_{m}"],
                        month=m,
                    )
                    for m in range(meta["months"])
                ]
                series[protocol] = SnapshotSeries(protocol, snaps)
        return cls(
            meta["preset"], meta["seed"], Topology(table, asns, blocks), series
        )


def _cache_dir() -> Path:
    return Path(os.environ.get("REPRO_DATA_DIR", "data"))


def get_dataset(
    preset: str = "small", seed: int = 0, cache_dir=None
) -> CensusDataset:
    """Load a cached dataset, generating and caching it on first use."""
    if preset not in PRESETS:
        raise ValueError(
            f"unknown preset {preset!r}; choose from {sorted(PRESETS)}"
        )
    directory = Path(cache_dir) if cache_dir is not None else _cache_dir()
    path = directory / f"census-{preset}-seed{seed}-v{LOADER_VERSION}.npz"
    if path.exists():
        try:
            return CensusDataset.load(path)
        except Exception:
            path.unlink(missing_ok=True)
    dataset = CensusDataset.generate(preset=preset, seed=seed)
    dataset.save(path)
    return dataset
