"""Synthetic Internet generator: topology, census seeds, monthly churn.

The generator builds a world whose *shape* matches the measurements the
paper rests on:

- a routing table of disjoint top-level announcements carved out of a
  few allocated /8 blocks (so announced < allocated < the full /0),
  with a deaggregated more-specific layer beneath;
- per-protocol responsive populations concentrated in a small set of
  *dense cores* — few, small, very dense prefixes holding most hosts —
  over a heavy-tailed sparse background (the concentration that makes
  phi-threshold selection pay off);
- monthly churn dominated by *within-prefix renumbering* (hosts move to
  a fresh address in the same routed prefix), with smaller death, move
  and birth flows.  Renumbering kills hitlists but not prefix scans —
  the paper's central stability argument.  CWMP (home routers on
  dynamic addresses) renumbers at more than twice the server-protocol
  rate, which is what collapses its hitlist hitrate in Figure 5.

Everything is vectorized per snapshot: host placement is one
multinomial + one uniform draw, a monthly transition is a handful of
masked array operations.  Python-level loops only ever iterate over
*prefixes* (topology carving), never over addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bgp.table import Prefix, RoutingTable
from repro.core.addrspace import V6

__all__ = [
    "PROTOCOLS",
    "KINDS",
    "ChurnRates",
    "PresetSpec",
    "PRESETS",
    "generate_world",
]

PROTOCOLS = ("cwmp", "ftp", "http", "https")

#: Host kinds, used by the found-vs-missed analysis (§5).
KINDS = ("server", "broadband", "business", "embedded")

_KIND_PROBS_DENSE = np.array([0.55, 0.15, 0.20, 0.10])
_KIND_PROBS_SPARSE = np.array([0.12, 0.48, 0.18, 0.22])

#: First octets of the allocated /8 blocks (stays clear of all
#: special-use space, so the default blocklist never intersects it).
_SAFE_SLASH8 = tuple(range(1, 10)) + tuple(range(11, 100))

#: v6 allocations are /20 blocks inside 2000::/4 (global unicast):
#: block ``o`` spans ``[(0x20000 + o) << 108, (0x20001 + o) << 108)``.
_V6_BLOCK_BASE = 0x20000
_V6_BLOCK_SHIFT = 108
_V6_BLOCK_SLOTS = 4096


@dataclass(frozen=True)
class ChurnRates:
    """Monthly per-host transition probabilities."""

    renumber: float  # new address, same routed prefix
    die: float  # host disappears
    move: float  # new address in a (usually dense) other prefix
    birth: float  # new hosts, as a fraction of the current population
    short_renumber: float = 0.9  # renumbers that stay within their /24


#: Per-protocol churn.  Server protocols lose ~20%/month of their
#: *addresses* (mostly renumbering); CWMP loses ~42%/month.
CHURN = {
    "cwmp": ChurnRates(renumber=0.35, die=0.05, move=0.02, birth=0.07),
    "ftp": ChurnRates(renumber=0.16, die=0.04, move=0.02, birth=0.06),
    "http": ChurnRates(renumber=0.14, die=0.035, move=0.02, birth=0.055),
    "https": ChurnRates(renumber=0.13, die=0.03, move=0.02, birth=0.05),
}

#: Relative population size per protocol (times ``PresetSpec.hosts``).
_POPULATION_SCALE = {"cwmp": 1.1, "ftp": 0.8, "http": 1.2, "https": 1.0}


@dataclass(frozen=True)
class PresetSpec:
    """Scale parameters for one dataset preset."""

    name: str
    n_blocks: int  # allocated /8 blocks
    hosts: int  # seed hosts per protocol (times population scale)
    months: int = 7
    announce_gap: float = 0.3  # unannounced fraction of allocated space
    length_choices: tuple = (13, 14, 15, 16, 17, 18, 19, 20)
    length_weights: tuple = (0.04, 0.08, 0.14, 0.20, 0.22, 0.16, 0.10, 0.06)
    dense_frac: float = 0.12  # fraction of prefixes forming the dense core
    dense_min_length: int = 17  # dense cores are small prefixes
    dense_boost: float = 150.0  # density weight multiplier for cores
    sparse_sigma: float = 1.8  # lognormal sigma of the background
    dense_sigma: float = 0.7
    protocol_sigma: float = 0.35  # per-protocol weight perturbation
    deagg_frac: float = 0.45  # l-prefixes with a more-specific layer
    nest_frac: float = 0.15  # children deaggregated a second level
    explore_frac: float = 0.01  # births/moves landing uniformly at random
    # -- v6-only knobs (ignored for the v4 family) ----------------------
    family: str = "v4"  # address family: "v4" or "v6"
    prefixes_per_block: int = 0  # v6 carve cap (allocations are sparse)
    subnets_per_prefix: int = 12  # active /64s per announced v6 prefix
    iid_bits: int = 16  # interface-ID entropy (low: hitlist-style hosts)


PRESETS = {
    "tiny": PresetSpec(name="tiny", n_blocks=2, hosts=4000),
    "small": PresetSpec(name="small", n_blocks=8, hosts=60000),
    "medium": PresetSpec(name="medium", n_blocks=32, hosts=1_000_000),
    # v6 presets: BGP-announced blocks carved from /20 allocations with
    # realistic announcement lengths (/29../48); hosts concentrate in a
    # few active /64s per prefix with low-entropy interface IDs — the
    # hitlist-discoverable population structure of the v6 literature.
    "v6-tiny": PresetSpec(
        name="v6-tiny",
        n_blocks=2,
        hosts=4000,
        family="v6",
        length_choices=(29, 32, 32, 36, 40, 44, 48),
        length_weights=(0.08, 0.22, 0.22, 0.18, 0.14, 0.10, 0.06),
        dense_min_length=36,
        prefixes_per_block=28,
    ),
    "v6-small": PresetSpec(
        name="v6-small",
        n_blocks=6,
        hosts=60000,
        family="v6",
        length_choices=(29, 32, 32, 36, 40, 44, 48),
        length_weights=(0.08, 0.22, 0.22, 0.18, 0.14, 0.10, 0.06),
        dense_min_length=36,
        prefixes_per_block=60,
    ),
}


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------


def _carve_block(rng, block_start, block_end, spec):
    """Carve disjoint l-prefixes into one allocated block, leaving holes.

    The same carving walk serves both families (Python-int cursor
    arithmetic is width-agnostic); the v6 family additionally caps the
    number of announcements per block — real v6 allocations are only
    sparsely announced, and an uncapped walk over a /20 in /48 steps
    would take 2^28 iterations.
    """
    bits = 128 if spec.family == "v6" else 32
    cap = spec.prefixes_per_block if spec.family == "v6" else None
    lengths = np.asarray(spec.length_choices)
    weights = np.asarray(spec.length_weights, dtype=float)
    weights = weights / weights.sum()
    prefixes = []
    cursor = block_start
    while cursor < block_end:
        if cap is not None and len(prefixes) >= cap:
            break
        length = int(rng.choice(lengths, p=weights))
        size = 1 << (bits - length)
        aligned = -(-cursor // size) * size  # align up
        if aligned + size > block_end:
            # Finish the block with the smallest configured prefix size.
            length = int(lengths[-1])
            size = 1 << (bits - length)
            aligned = -(-cursor // size) * size
            if aligned + size > block_end:
                break
        if rng.random() >= spec.announce_gap:
            prefixes.append(Prefix(int(aligned), length, bits))
        cursor = aligned + size
    return prefixes


def _deaggregate(rng, parent, max_extra=4):
    """Announce a handful of disjoint more-specifics beneath ``parent``."""
    # Deaggregation bottoms out at /24 (v4) or /48 (v6) — the
    # propagation-filter limits of the respective DFZs.
    max_length = 48 if parent.bits == 128 else 24
    children = []
    cursor = parent.start
    while cursor < parent.end and len(children) < max_extra:
        delta = int(rng.integers(1, 4))
        length = min(parent.length + delta, max_length)
        if length <= parent.length:
            break
        size = 1 << (parent.bits - length)
        aligned = -(-cursor // size) * size
        if aligned + size > parent.end:
            break
        if rng.random() < 0.5:
            children.append(Prefix(int(aligned), length, parent.bits))
        cursor = aligned + size
    return children


def generate_topology(rng, spec):
    """Build the synthetic routing table and its origin-AS map."""
    if spec.family == "v6":
        slots = rng.choice(
            _V6_BLOCK_SLOTS, size=spec.n_blocks, replace=False
        )
        blocks = [
            (
                (_V6_BLOCK_BASE + int(o)) << _V6_BLOCK_SHIFT,
                (_V6_BLOCK_BASE + int(o) + 1) << _V6_BLOCK_SHIFT,
            )
            for o in sorted(slots)
        ]
    else:
        octets = rng.choice(
            np.asarray(_SAFE_SLASH8), size=spec.n_blocks, replace=False
        )
        blocks = [
            (int(o) << 24, (int(o) + 1) << 24) for o in sorted(octets)
        ]
    l_prefixes = []
    for start, end in blocks:
        l_prefixes.extend(_carve_block(rng, start, end, spec))

    children = {}
    asns = {}
    next_asn = 64512
    deagg_floor = 44 if spec.family == "v6" else 22
    nest_floor = deagg_floor
    for parent in l_prefixes:
        asns[parent] = next_asn
        next_asn += 1
        if parent.length >= deagg_floor or rng.random() >= spec.deagg_frac:
            continue
        kids = _deaggregate(rng, parent)
        if not kids:
            continue
        children[parent] = kids
        for kid in kids:
            # Deaggregation is often by a customer AS of the aggregate.
            asns[kid] = asns[parent] if rng.random() < 0.7 else next_asn
            next_asn += 1
            if kid.length <= nest_floor and rng.random() < spec.nest_frac:
                grandkids = _deaggregate(rng, kid, max_extra=2)
                if grandkids:
                    children[kid] = grandkids
                    for g in grandkids:
                        asns[g] = asns[kid]
    table = RoutingTable(l_prefixes, children)
    return table, asns, blocks


# ---------------------------------------------------------------------------
# Census populations
# ---------------------------------------------------------------------------


class _World:
    """Per-protocol placement context: prefix intervals and densities."""

    def __init__(self, partition, weights, is_dense, spec, rng):
        self.partition = partition
        self.starts = partition.starts
        self.sizes = partition.sizes
        self.is_dense = is_dense
        self.spec = spec
        probs = weights / weights.sum()
        self.probs = probs
        self.rng = rng

    def choose_prefixes(self, n: int) -> np.ndarray:
        """Destination prefixes for births/moves: density-proportional
        with a small uniform exploration flow (the only mechanism that
        ever occupies a previously-empty prefix)."""
        rng = self.rng
        out = rng.choice(len(self.probs), size=n, p=self.probs)
        uniform = rng.random(n) < self.spec.explore_frac
        k = int(uniform.sum())
        if k:
            out[uniform] = rng.integers(0, len(self.probs), k)
        return out.astype(np.int64)

    def uniform_addresses(self, prefix_idx: np.ndarray) -> np.ndarray:
        """One uniform address inside each given prefix."""
        rng = self.rng
        offsets = (
            rng.random(len(prefix_idx)) * self.sizes[prefix_idx]
        ).astype(np.int64)
        return self.starts[prefix_idx] + offsets

    def draw_kinds(self, prefix_idx: np.ndarray) -> np.ndarray:
        """Host kinds, skewed by whether the prefix is a dense core."""
        rng = self.rng
        out = np.empty(len(prefix_idx), dtype=np.int8)
        dense = self.is_dense[prefix_idx]
        for mask, probs in (
            (dense, _KIND_PROBS_DENSE),
            (~dense, _KIND_PROBS_SPARSE),
        ):
            k = int(mask.sum())
            if k:
                out[mask] = rng.choice(
                    len(KINDS), size=k, p=probs
                ).astype(np.int8)
        return out


class _WorldV6(_World):
    """v6 placement: hosts concentrate in a few active /64s per prefix.

    Each announced prefix gets ``spec.subnets_per_prefix`` active /64
    subnets (chosen once per protocol world); a host address is one of
    those subnets plus a low-entropy interface ID — the structure that
    makes hitlist seeding work and exhaustive scanning pointless.
    Addresses are built vectorized from (hi, lo) uint64 halves; no
    per-host Python loop.
    """

    def __init__(self, partition, weights, is_dense, spec, rng):
        super().__init__(partition, weights, is_dense, spec, rng)
        # Announced lengths are <= 48 < 64, so every prefix start is
        # /64-aligned and its top 64 bits identify the first subnet.
        start_ints = V6.decode(partition.starts)
        self._starts_hi = np.array(
            [s >> 64 for s in start_ints], dtype=np.uint64
        )
        sizes = partition.sizes_exact
        k = spec.subnets_per_prefix
        table = np.empty((len(partition), k), dtype=np.uint64)
        for i, size in enumerate(sizes):
            subnet_count = size >> 64  # /64 subnets in this prefix
            table[i] = rng.integers(0, subnet_count, k, dtype=np.uint64)
        self._subnets = table

    def uniform_addresses(self, prefix_idx: np.ndarray) -> np.ndarray:
        rng = self.rng
        n = len(prefix_idx)
        slot = rng.integers(0, self._subnets.shape[1], n)
        iid = rng.integers(1, 1 << self.spec.iid_bits, n).astype(np.uint64)
        hi = self._starts_hi[prefix_idx] + self._subnets[prefix_idx, slot]
        return V6.from_hi_lo(hi, iid)


def _base_weights(rng, partition, spec):
    """Heavy-tailed per-prefix density weights with a dense core."""
    n = len(partition)
    weights = rng.lognormal(0.0, spec.sparse_sigma, n)
    lengths = partition.lengths
    candidates = np.flatnonzero(lengths >= spec.dense_min_length)
    k = max(1, int(spec.dense_frac * n))
    dense_idx = rng.choice(
        candidates, size=min(k, len(candidates)), replace=False
    )
    weights[dense_idx] = (
        rng.lognormal(0.0, spec.dense_sigma, len(dense_idx))
        * spec.dense_boost
    )
    is_dense = np.zeros(n, dtype=bool)
    is_dense[dense_idx] = True
    return weights, is_dense


def _dedupe_sorted(addr, hid, kind):
    """Sort by address and drop duplicate addresses (first owner wins)."""
    uniq, first = np.unique(addr, return_index=True)
    return uniq, hid[first], kind[first]


def _seed_snapshot(world, n_hosts):
    rng = world.rng
    counts = rng.multinomial(n_hosts, world.probs)
    prefix_idx = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    addr = world.uniform_addresses(prefix_idx)
    hid = np.arange(len(addr), dtype=np.int64)
    kind = world.draw_kinds(prefix_idx)
    return _dedupe_sorted(addr, hid, kind), len(addr)


def _evolve(world, rates, addr, hid, kind, next_hid):
    """One monthly transition, fully vectorized."""
    rng = world.rng
    n = len(addr)
    u = rng.random(n)
    renumber = u < rates.renumber
    die = (u >= rates.renumber) & (u < rates.renumber + rates.die)
    move = (~renumber) & (~die) & (
        u < rates.renumber + rates.die + rates.move
    )

    new_addr = addr.copy()

    # Renumbering: a fresh address in the same /24 (short) or anywhere
    # in the same routed prefix (long).  Prefix scans survive both.
    ridx = np.flatnonzero(renumber)
    short = rng.random(len(ridx)) < rates.short_renumber
    sidx, lidx = ridx[short], ridx[~short]
    if addr.dtype.kind == "S":
        # v6 short renumber: same /64 subnet, fresh interface ID.
        hi, _ = V6.to_hi_lo(addr[sidx])
        iid = rng.integers(
            1, 1 << world.spec.iid_bits, len(sidx)
        ).astype(np.uint64)
        new_addr[sidx] = V6.from_hi_lo(hi, iid)
    else:
        new_addr[sidx] = (addr[sidx] & ~np.int64(0xFF)) | rng.integers(
            0, 256, len(sidx)
        )
    if len(lidx):
        owner = world.partition.index_of(addr[lidx])
        new_addr[lidx] = world.uniform_addresses(owner)

    # Moves: the host reappears in another (usually dense) prefix.
    midx = np.flatnonzero(move)
    if len(midx):
        dest = world.choose_prefixes(len(midx))
        new_addr[midx] = world.uniform_addresses(dest)

    keep = ~die
    new_addr, new_hid, new_kind = new_addr[keep], hid[keep], kind[keep]

    # Births: new hosts, mostly inside the existing dense structure.
    n_births = int(round(rates.birth * n))
    if n_births:
        dest = world.choose_prefixes(n_births)
        birth_addr = world.uniform_addresses(dest)
        birth_hid = np.arange(next_hid, next_hid + n_births, dtype=np.int64)
        birth_kind = world.draw_kinds(dest)
        next_hid += n_births
        new_addr = np.concatenate([new_addr, birth_addr])
        new_hid = np.concatenate([new_hid, birth_hid])
        new_kind = np.concatenate([new_kind, birth_kind])

    return _dedupe_sorted(new_addr, new_hid, new_kind), next_hid


def generate_census(rng, spec, table):
    """Generate the monthly snapshot series for every protocol.

    Returns ``{protocol: [(addresses, host_ids, kinds), ...]}`` with one
    sorted triple per month.
    """
    partition = table.partition("less-specific")
    base_weights, is_dense = _base_weights(rng, partition, spec)
    series = {}
    for protocol in PROTOCOLS:
        # Protocols share the dense cores but differ in the details.
        weights = base_weights * rng.lognormal(
            0.0, spec.protocol_sigma, len(partition)
        )
        world_cls = _WorldV6 if spec.family == "v6" else _World
        world = world_cls(partition, weights, is_dense, spec, rng)
        n_hosts = int(spec.hosts * _POPULATION_SCALE[protocol])
        (addr, hid, kind), next_hid = _seed_snapshot(world, n_hosts)
        months = [(addr, hid, kind)]
        rates = CHURN[protocol]
        for _ in range(spec.months - 1):
            (addr, hid, kind), next_hid = _evolve(
                world, rates, addr, hid, kind, next_hid
            )
            months.append((addr, hid, kind))
        series[protocol] = months
    return series


def generate_world(preset: str, seed: int = 0):
    """Generate topology + census for a preset.  Deterministic in seed."""
    try:
        spec = PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown preset {preset!r}; choose from {sorted(PRESETS)}"
        ) from None
    rng = np.random.default_rng(seed)
    table, asns, blocks = generate_topology(rng, spec)
    census = generate_census(rng, spec, table)
    return spec, table, asns, blocks, census
