"""Census layer: responsive-address sets and synthetic census datasets."""
