"""Sorted-array address sets (IPv4 ``int64`` or IPv6 ``S16``).

An :class:`AddressSet` is a sorted, duplicate-free NumPy array — plain
``int64`` for the v4 family, or 16-byte big-endian strings (``S16``,
see :mod:`repro.core.addrspace`) for 128-bit v6 addresses, whose
lexicographic order is numeric order so every idiom below works on both
families unchanged.
All set algebra is array-at-a-time: union is a single vectorized merge of
the two sorted operands, intersection/difference/membership are
``searchsorted`` passes.  This representation is what makes the rest of
the pipeline fast — per-prefix counting over a snapshot is two
``searchsorted`` calls (see ``repro.bgp.table.Partition``), and the scan
engine's per-batch responsive check is one.
"""

from __future__ import annotations

import numpy as np

from repro.core.addrspace import space_of

__all__ = ["AddressSet"]

_EMPTY = np.empty(0, dtype=np.int64)


def _coerce(values) -> np.ndarray:
    """Family-preserving coercion: S16 passes through, the rest is int64."""
    arr = np.asarray(values)
    if arr.dtype.kind == "S":
        return space_of(arr).asarray(arr)
    return np.asarray(values, dtype=np.int64)


def _as_sorted_unique(values) -> np.ndarray:
    arr = _coerce(values)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    return np.unique(arr)  # sorts and removes duplicates


class AddressSet:
    """An immutable set of IPv4 addresses stored as a sorted int64 array."""

    __slots__ = ("_values",)

    def __init__(self, values=(), *, assume_sorted_unique: bool = False):
        if assume_sorted_unique:
            arr = _coerce(values)
        else:
            arr = _as_sorted_unique(values)
        arr.setflags(write=False)
        self._values = arr

    @classmethod
    def _trusted(cls, arr: np.ndarray) -> "AddressSet":
        return cls(arr, assume_sorted_unique=True)

    # -- basic protocol ------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """The sorted, unique address array (read-only view)."""
        return self._values

    @property
    def space(self):
        """The :class:`~repro.core.addrspace.AddressSpace` of this set."""
        return space_of(self._values)

    def __len__(self) -> int:
        return int(self._values.shape[0])

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self):
        # Yield Python ints, not NumPy scalars: iteration is the JSON /
        # telemetry boundary, and ``np.int64`` is not JSON-serializable.
        if self._values.dtype.kind == "S":
            decode = self.space.decode_scalar
            return iter([decode(v) for v in self._values])
        return iter(self._values.tolist())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AddressSet(n={len(self)})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, AddressSet):
            return NotImplemented
        return self._values.shape == other._values.shape and bool(
            np.array_equal(self._values, other._values)
        )

    def __hash__(self):
        return hash((len(self), self._values[:64].tobytes()))

    def __contains__(self, address) -> bool:
        a = self._values
        if a.dtype.kind == "S" and isinstance(address, int):
            address = self.space.encode_scalar(address)
        i = int(np.searchsorted(a, address))
        if i >= len(a):
            return False
        if a.dtype.kind == "S":
            return bool(a[i] == np.asarray(address, dtype=a.dtype)[()])
        return int(a[i]) == int(address)

    # -- vectorized membership ----------------------------------------

    def membership(self, probes: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``probes`` are in this set.

        One ``searchsorted`` over the sorted member array — the same
        O(m log n) pass a zmap-class simulator runs per probe batch.
        """
        a = self._values
        probes = _coerce(probes)
        if len(a) == 0 or probes.size == 0:
            return np.zeros(probes.shape, dtype=bool)
        idx = np.searchsorted(a, probes)
        idx[idx == len(a)] = len(a) - 1
        return a[idx] == probes

    def intersection_count(self, other: "AddressSet") -> int:
        """``len(self & other)`` without materialising the intersection."""
        small, big = (
            (self, other) if len(self) <= len(other) else (other, self)
        )
        return int(big.membership(small._values).sum())

    # -- set algebra ---------------------------------------------------

    def __or__(self, other: "AddressSet") -> "AddressSet":
        a, b = self._values, other._values
        if len(a) == 0:
            return other
        if len(b) == 0:
            return self
        # Merge-based union: splice b into a at its insertion points
        # (one vectorized O(n+m) pass), then drop adjacent duplicates.
        idx = np.searchsorted(a, b)
        merged = np.insert(a, idx, b)
        keep = np.empty(len(merged), dtype=bool)
        keep[0] = True
        np.not_equal(merged[1:], merged[:-1], out=keep[1:])
        return AddressSet._trusted(merged[keep])

    def __and__(self, other: "AddressSet") -> "AddressSet":
        small, big = (
            (self, other) if len(self) <= len(other) else (other, self)
        )
        if len(small) == 0:
            return AddressSet._trusted(small._values)
        return AddressSet._trusted(
            small._values[big.membership(small._values)]
        )

    def __sub__(self, other: "AddressSet") -> "AddressSet":
        if len(self) == 0 or len(other) == 0:
            return self
        return AddressSet._trusted(
            self._values[~other.membership(self._values)]
        )

    def __xor__(self, other: "AddressSet") -> "AddressSet":
        return (self | other) - (self & other)

    def issubset(self, other: "AddressSet") -> bool:
        if len(self) == 0:
            return True
        return bool(other.membership(self._values).all())
