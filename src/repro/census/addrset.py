"""Sorted-array IPv4 address sets.

An :class:`AddressSet` is a sorted, duplicate-free ``int64`` NumPy array.
All set algebra is array-at-a-time: union is a single vectorized merge of
the two sorted operands, intersection/difference/membership are
``searchsorted`` passes.  This representation is what makes the rest of
the pipeline fast — per-prefix counting over a snapshot is two
``searchsorted`` calls (see ``repro.bgp.table.Partition``), and the scan
engine's per-batch responsive check is one.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AddressSet"]

_EMPTY = np.empty(0, dtype=np.int64)


def _as_sorted_unique(values) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    return np.unique(arr)  # sorts and removes duplicates


class AddressSet:
    """An immutable set of IPv4 addresses stored as a sorted int64 array."""

    __slots__ = ("_values",)

    def __init__(self, values=(), *, assume_sorted_unique: bool = False):
        if assume_sorted_unique:
            arr = np.asarray(values, dtype=np.int64)
        else:
            arr = _as_sorted_unique(values)
        arr.setflags(write=False)
        self._values = arr

    @classmethod
    def _trusted(cls, arr: np.ndarray) -> "AddressSet":
        return cls(arr, assume_sorted_unique=True)

    # -- basic protocol ------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """The sorted, unique int64 address array (read-only view)."""
        return self._values

    def __len__(self) -> int:
        return int(self._values.shape[0])

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self):
        return iter(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AddressSet(n={len(self)})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, AddressSet):
            return NotImplemented
        return self._values.shape == other._values.shape and bool(
            np.array_equal(self._values, other._values)
        )

    def __hash__(self):
        return hash((len(self), self._values[:64].tobytes()))

    def __contains__(self, address) -> bool:
        a = self._values
        i = int(np.searchsorted(a, address))
        return i < len(a) and int(a[i]) == int(address)

    # -- vectorized membership ----------------------------------------

    def membership(self, probes: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``probes`` are in this set.

        One ``searchsorted`` over the sorted member array — the same
        O(m log n) pass a zmap-class simulator runs per probe batch.
        """
        a = self._values
        probes = np.asarray(probes, dtype=np.int64)
        if len(a) == 0 or probes.size == 0:
            return np.zeros(probes.shape, dtype=bool)
        idx = np.searchsorted(a, probes)
        idx[idx == len(a)] = len(a) - 1
        return a[idx] == probes

    def intersection_count(self, other: "AddressSet") -> int:
        """``len(self & other)`` without materialising the intersection."""
        small, big = (
            (self, other) if len(self) <= len(other) else (other, self)
        )
        return int(big.membership(small._values).sum())

    # -- set algebra ---------------------------------------------------

    def __or__(self, other: "AddressSet") -> "AddressSet":
        a, b = self._values, other._values
        if len(a) == 0:
            return other
        if len(b) == 0:
            return self
        # Merge-based union: splice b into a at its insertion points
        # (one vectorized O(n+m) pass), then drop adjacent duplicates.
        idx = np.searchsorted(a, b)
        merged = np.insert(a, idx, b)
        keep = np.empty(len(merged), dtype=bool)
        keep[0] = True
        np.not_equal(merged[1:], merged[:-1], out=keep[1:])
        return AddressSet._trusted(merged[keep])

    def __and__(self, other: "AddressSet") -> "AddressSet":
        small, big = (
            (self, other) if len(self) <= len(other) else (other, self)
        )
        if len(small) == 0:
            return AddressSet._trusted(_EMPTY)
        return AddressSet._trusted(
            small._values[big.membership(small._values)]
        )

    def __sub__(self, other: "AddressSet") -> "AddressSet":
        if len(self) == 0 or len(other) == 0:
            return self
        return AddressSet._trusted(
            self._values[~other.membership(self._values)]
        )

    def __xor__(self, other: "AddressSet") -> "AddressSet":
        return (self | other) - (self & other)

    def issubset(self, other: "AddressSet") -> bool:
        if len(self) == 0:
            return True
        return bool(other.membership(self._values).all())
