"""Probe target streams: prefix lists expanded into permuted batches."""

from __future__ import annotations

import numpy as np

from repro.scan.permutation import CyclicPermutation

__all__ = ["PrefixTargets", "RangeTargets"]

_SEED_MIX = 0x9E3779B9  # golden-ratio stride decorrelates per-prefix seeds


class PrefixTargets:
    """Expand a list of prefixes into per-prefix permuted probe batches.

    Each prefix is walked by its own :class:`CyclicPermutation` (group
    parameters are cached per prefix size), offset to the prefix base.
    The loop is per *prefix*; every address-level operation is a
    vectorized batch.
    """

    def __init__(self, prefixes, seed: int = 0):
        self._prefixes = list(prefixes)
        self._seed = int(seed)

    def __len__(self) -> int:
        return len(self._prefixes)

    @property
    def prefixes(self):
        return self._prefixes

    def probe_count(self) -> int:
        return int(sum(p.size for p in self._prefixes))

    def batches(self, batch_size: int = 1 << 16):
        for i, prefix in enumerate(self._prefixes):
            perm = CyclicPermutation(
                prefix.size, seed=self._seed + i * _SEED_MIX
            )
            base = np.int64(prefix.network)
            for values in perm.batches(batch_size):
                yield base + values


class RangeTargets:
    """A single [0, n) range as permuted batches (for micro-benchmarks)."""

    def __init__(self, n: int, seed: int = 0):
        self._perm = CyclicPermutation(n, seed=seed)

    def probe_count(self) -> int:
        return self._perm.n

    def batches(self, batch_size: int = 1 << 16):
        yield from self._perm.batches(batch_size)
