"""Probe target streams: prefix lists expanded into permuted batches."""

from __future__ import annotations

import numpy as np

from repro.scan.permutation import CyclicPermutation

__all__ = ["PrefixTargets", "RangeTargets"]

_SEED_MIX = 0x9E3779B9  # golden-ratio stride decorrelates per-prefix seeds


class PrefixTargets:
    """Expand a list of prefixes into per-prefix permuted probe batches.

    Each prefix is walked by its own :class:`CyclicPermutation` (group
    parameters are cached per prefix size), offset to the prefix base.
    The loop is per *prefix*; every address-level operation is a
    vectorized batch.
    """

    def __init__(self, prefixes, seed: int = 0):
        self._prefixes = list(prefixes)
        self._seed = int(seed)

    def __len__(self) -> int:
        return len(self._prefixes)

    @property
    def prefixes(self):
        return self._prefixes

    def probe_count(self) -> int:
        return int(sum(p.size for p in self._prefixes))

    def batches(self, batch_size: int = 1 << 16):
        for i, prefix in enumerate(self._prefixes):
            perm = CyclicPermutation(
                prefix.size, seed=self._seed + i * _SEED_MIX
            )
            if getattr(prefix, "bits", 32) == 128:
                # 128-bit bases overflow int64: offset in Python ints
                # (the permutation already yields them for big sizes)
                # and hand back the S16 wire form the v6 stack speaks.
                from repro.core.addrspace import V6

                base = int(prefix.network)
                for values in perm.batches(batch_size):
                    yield V6.encode(
                        [base + v for v in values.tolist()]
                    )
                continue
            base = np.int64(prefix.network)
            for values in perm.batches(batch_size):
                yield base + values

    def __iter__(self):
        """Yield probe addresses one at a time, as Python ints.

        Scalar iteration is the JSON/telemetry boundary: ``np.int64``
        (or a 16-byte ``np.bytes_``) leaking out of here breaks
        ``json.dumps`` downstream, so both families normalize.
        """
        for batch in self.batches():
            if batch.dtype.kind == "S":
                from repro.core.addrspace import space_of

                yield from space_of(batch).decode(batch)
            else:
                yield from batch.tolist()


class RangeTargets:
    """A single [0, n) range as permuted batches (for micro-benchmarks)."""

    def __init__(self, n: int, seed: int = 0):
        self._perm = CyclicPermutation(n, seed=seed)

    def probe_count(self) -> int:
        return self._perm.n

    def batches(self, batch_size: int = 1 << 16):
        yield from self._perm.batches(batch_size)
