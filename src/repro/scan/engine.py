"""The batched scan engine: probe generation, filtering, classification.

This is the zmap-class simulator core: it drains a target stream in
fixed-size batches and classifies every probe in one fused pass per
batch: each batch is brought into sorted order once (streams that
already yield sorted batches, like the sharded interval walk, skip
even that), then the blocklist mask and the responsive-membership test
run as branch-predictable sorted ``searchsorted`` passes with no
intermediate filtered copy of the batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.bgp.table import interval_membership
from repro.census.addrset import AddressSet

__all__ = ["EngineConfig", "ScanResult", "ScanEngine"]


@dataclass(frozen=True)
class EngineConfig:
    """Engine tuning knobs."""

    batch_size: int = 1 << 16


@dataclass
class ScanResult:
    """Outcome of one scan pass."""

    probes_sent: int = 0
    responses: int = 0
    blocked: int = 0
    batches: int = 0
    protocol: str | None = None

    @property
    def hitrate(self) -> float:
        return self.responses / self.probes_sent if self.probes_sent else 0.0


def _responsive_values(responsive) -> np.ndarray:
    """The sorted unique address array behind any truth spec.

    Accepts an :class:`AddressSet` or a raw array (``int64`` for v4,
    ``S16`` for v6 — see :mod:`repro.core.addrspace`).  A raw array
    that is already sorted and duplicate-free is used as-is — no
    AddressSet re-wrap (and no ``np.unique`` re-sort) per call.
    """
    if isinstance(responsive, AddressSet):
        return responsive.values
    arr = np.asarray(responsive)
    if arr.dtype.kind != "S":
        arr = np.asarray(responsive, dtype=np.int64)
    if arr.ndim == 1 and (arr.size < 2 or bool((arr[1:] > arr[:-1]).all())):
        return arr
    return AddressSet(arr).values


class ScanEngine:
    """Batched probe engine with blocklist filtering."""

    def __init__(self, config: EngineConfig | None = None, blocklist=None):
        self.config = config or EngineConfig()
        self.blocklist = blocklist

    def run(self, targets, responsive, protocol: str | None = None) -> ScanResult:
        """Scan a target stream against a responsive-address set.

        ``targets`` must provide ``batches(batch_size)`` yielding int64
        address arrays; ``responsive`` is an :class:`AddressSet` or a
        plain address array (pre-sorted duplicate-free arrays are used
        directly) defining which probes elicit a response.
        """
        truth = _responsive_values(responsive)
        n_truth = len(truth)
        result = ScanResult(protocol=protocol)
        blocklist = self.blocklist
        # Resolved once per run: outside an observability scope this is
        # None and the batch loop pays a single predictable branch.
        registry = obs.get_registry()
        probes_before = 0
        for batch in targets.batches(self.config.batch_size):
            if registry is not None:
                registry.counter("engine.batches").inc()
                sent = result.probes_sent - probes_before
                if sent:
                    registry.counter("engine.probes_sent").inc(sent)
                probes_before = result.probes_sent
            size = int(batch.size)
            result.batches += 1
            if size == 0:
                continue
            # Probe order within a batch never changes any counter, so
            # sort once and every searchsorted below runs over sorted
            # needles — several times faster than random-order lookups.
            if size > 1 and not bool((batch[1:] >= batch[:-1]).all()):
                batch = np.sort(batch)
            # Raw scalars, not int(): v6 batches are 16-byte strings,
            # and searchsorted takes both families' scalars directly.
            lo, hi = batch[0], batch[-1]
            # Blocklist fast path: two scalar lookups decide whether the
            # batch's [lo, hi] span touches any blocked range at all;
            # target streams stay inside announced space, so the full
            # per-probe mask is almost always skipped.
            blocked = None
            if blocklist is not None:
                b_lo = int(np.searchsorted(blocklist.starts, lo, side="right"))
                b_hi = int(np.searchsorted(blocklist.starts, hi, side="right"))
                if b_lo != b_hi or (
                    b_lo > 0 and lo < blocklist.ends[b_lo - 1]
                ):
                    blocked = interval_membership(
                        blocklist.starts, blocklist.ends, batch
                    )
                    n_blocked = int(blocked.sum())
                    if n_blocked:
                        result.blocked += n_blocked
                        size -= n_blocked
                    else:
                        blocked = None
            result.probes_sent += size
            if n_truth == 0:
                continue
            # Only the truth addresses inside the batch's span can
            # match; the slice is usually far smaller than the batch.
            t_lo = int(np.searchsorted(truth, lo))
            t_hi = int(np.searchsorted(truth, hi, side="right"))
            sliver = truth[t_lo:t_hi]
            if sliver.size == 0:
                continue
            if blocked is None and sliver.size <= batch.size >> 3:
                # Sparse truth: probe it into the batch instead — far
                # fewer needles.  The insertion-point difference counts
                # every occurrence, so duplicate probes of the same
                # responsive address each score a response, exactly as
                # the per-probe direction below would count them.
                span = np.searchsorted(batch, sliver, side="right")
                span -= np.searchsorted(batch, sliver, side="left")
                result.responses += int(span.sum())
            else:
                idx = np.searchsorted(sliver, batch)
                np.minimum(idx, sliver.size - 1, out=idx)
                hit = sliver[idx] == batch
                if blocked is not None:
                    # A blocked probe is never sent, so it can never
                    # respond: fold the mask in place of filtering the
                    # batch down to an allowed copy.
                    np.logical_not(blocked, out=blocked)
                    np.logical_and(hit, blocked, out=hit)
                result.responses += int(hit.sum())
        if registry is not None:
            # Flush the last batch's probes and fold the run's totals.
            sent = result.probes_sent - probes_before
            if sent:
                registry.counter("engine.probes_sent").inc(sent)
            registry.counter("engine.responses").inc(result.responses)
            registry.counter("engine.blocked").inc(result.blocked)
        return result
