"""The batched scan engine: probe generation, filtering, classification.

This is the zmap-class simulator core: it drains a target stream in
fixed-size batches, drops blocklisted probes with one vectorized mask,
and classifies the remainder against the responsive-address set with a
single ``searchsorted`` membership pass per batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.census.addrset import AddressSet

__all__ = ["EngineConfig", "ScanResult", "ScanEngine"]


@dataclass(frozen=True)
class EngineConfig:
    """Engine tuning knobs."""

    batch_size: int = 1 << 16


@dataclass
class ScanResult:
    """Outcome of one scan pass."""

    probes_sent: int = 0
    responses: int = 0
    blocked: int = 0
    batches: int = 0
    protocol: str | None = None

    @property
    def hitrate(self) -> float:
        return self.responses / self.probes_sent if self.probes_sent else 0.0


class ScanEngine:
    """Batched probe engine with blocklist filtering."""

    def __init__(self, config: EngineConfig | None = None, blocklist=None):
        self.config = config or EngineConfig()
        self.blocklist = blocklist

    def run(self, targets, responsive, protocol: str | None = None) -> ScanResult:
        """Scan a target stream against a responsive-address set.

        ``targets`` must provide ``batches(batch_size)`` yielding int64
        address arrays; ``responsive`` is an :class:`AddressSet` (or a
        sorted array) defining which probes elicit a response.
        """
        if isinstance(responsive, AddressSet):
            truth = responsive
        else:
            truth = AddressSet(responsive)
        result = ScanResult(protocol=protocol)
        blocklist = self.blocklist
        for batch in targets.batches(self.config.batch_size):
            if blocklist is not None:
                mask = blocklist.allowed_mask(batch)
                if not mask.all():
                    result.blocked += int(batch.size - mask.sum())
                    batch = batch[mask]
            result.probes_sent += int(batch.size)
            result.responses += int(truth.membership(batch).sum())
            result.batches += 1
        return result
