"""Distributed shard execution: a coordinator driving socket workers.

This is the multi-node seam: the coordinator serializes
:class:`~repro.scan.sharded.IntervalTargets` shard descriptions onto a
work queue and drives ``N`` workers over a small wire protocol —
length-prefixed JSON frames over TCP, with ``int64`` arrays carried as
base64 ``tobytes`` payloads.  The workers here are local child
processes (``python -m repro.scan.distributed --connect HOST:PORT``),
but nothing in the protocol is process-local: a worker on another
machine speaking the same five message types would slot straight in.

Protocol (all frames are ``>I``-length-prefixed UTF-8 JSON):

- ``hello``    worker → coordinator: ``{"type": "hello", "pid": ...}``
- ``init``     coordinator → worker: responsive set, blocklist, engine
  batch size, protocol, and the shared shard geometry
  (``starts``/``ends``/``seed``/``shards``) — sent once per worker.
- ``shard``    coordinator → worker: ``{"type": "shard", "shard": i}``
  — drain the ``i``-th sub-walk of the init geometry.  May carry a
  ``fault`` object when a chaos plan armed one for this attempt.
- ``result``   worker → coordinator: the shard's ``ScanResult`` counters.
- ``shutdown`` coordinator → worker: drain done, exit cleanly.

Determinism and failure semantics: every shard's ``ScanResult`` is a
pure function of the shard description, so *which* worker drains a
shard (or how often it is retried, or whether two workers race it)
never changes the outcome.  The coordinator survives the full chaos
matrix of :mod:`repro.scan.faults`:

- a worker that **dies** (mid-shard, mid-result, or before saying
  hello) has its shard re-queued and a replacement spawned;
- a worker that sends a **malformed, truncated, or oversized frame**
  is dropped — just that worker — and charged to the failure budget;
- a worker that **hangs or stalls** past the per-shard attempt
  deadline has its shard *speculatively re-dispatched* to an idle
  worker; the first result wins, late duplicates are discarded, and a
  worker far past its deadline is killed outright;
- **respawns back off exponentially** (deterministic, no jitter), and
  a crash-looping replacement fleet trips a detector that *degrades*
  the fleet — the wave finishes on the survivors instead of
  tight-loop respawning, surfaced in :attr:`Coordinator.telemetry`;
- only when no worker remains and none can be spawned does the run
  abort, with a bounded tail of each dead worker's stderr in the
  error message.

Throughout, results are released strictly in shard order, so the
orchestrator's ``on_shard`` checkpoint stream (and therefore
kill-and-resume byte-identity) is preserved under every fault.

Knobs: ``REPRO_DIST_WORKERS`` (worker count; default one per shard
capped at the CPU count), ``REPRO_FAULT_PLAN`` (declarative fault
injection; see :mod:`repro.scan.faults`), ``REPRO_DIST_SHARD_DEADLINE``
(per-shard attempt deadline, default 30 s; 0 disables),
``REPRO_DIST_RESPAWN_BASE`` / ``REPRO_DIST_CRASH_LOOP`` (respawn
backoff base and crash-loop threshold).  Legacy fault injection:
``REPRO_DIST_FAIL_SHARDS`` (comma-separated shard indices whose first
assigned worker dies mid-shard — sugar for ``crash@i`` plan entries)
and ``REPRO_DIST_SHARD_DELAY`` (seconds each worker sleeps per shard,
to make smoke-test kill windows deterministic); none of these change
any result.
"""

from __future__ import annotations

import argparse
import base64
import json
import os
import selectors
import socket
import struct
import subprocess
import sys
import tempfile
import time
from collections import deque
from pathlib import Path

import numpy as np

from repro.env import (
    dist_crash_loop_threshold,
    dist_respawn_base,
    dist_shard_deadline,
    fault_plan as _env_fault_plan,
)
from repro.scan.engine import ScanResult
from repro.scan.executors import (
    ExecutorFailure,
    build_worker,
    register_executor,
)
from repro.scan.faults import FaultPlan, RespawnGovernor, deadline_action

__all__ = [
    "ENV_FAIL_SHARDS",
    "ENV_SHARD_DELAY",
    "FrameStream",
    "Coordinator",
    "distributed_executor",
    "worker_main",
    "main",
]

ENV_FAIL_SHARDS = "REPRO_DIST_FAIL_SHARDS"
ENV_SHARD_DELAY = "REPRO_DIST_SHARD_DELAY"

_HEADER = struct.Struct(">I")
#: Frame-size sanity cap: a corrupt length prefix must not allocate GBs.
MAX_FRAME = 1 << 30

#: At most one speculative copy of a shard races the original attempt.
_MAX_SPECULATION = 2
#: A worker this many deadlines past dispatch is killed, not raced.
_HARD_KILL_FACTOR = 3.0
#: Bytes of each dead worker's stderr kept for the failure report.
_STDERR_TAIL_BYTES = 512

#: Worker exit codes, one per injected death (diagnosable from `ps`).
_EXIT_CRASH = 17
_EXIT_TRUNCATE = 18
_EXIT_OVERSIZE = 19
_EXIT_MID_RESULT = 20
_EXIT_SPAWN = 21

#: "Forever" for a hung worker; the coordinator kills it long before.
_HANG_SECONDS = 3600.0
_DEFAULT_STALL = 1.0

#: Constructor sentinel: resolve the knob from the environment.
_ENV = object()


# ---------------------------------------------------------------------------
# Wire encoding
# ---------------------------------------------------------------------------


def encode_array(arr) -> dict:
    """A JSON-safe ``{"dtype", "data"}`` carrier for a 1-D array."""
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": str(arr.dtype),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_array(obj) -> np.ndarray:
    return np.frombuffer(
        base64.b64decode(obj["data"]), dtype=np.dtype(obj["dtype"])
    )


class FrameStream:
    """Length-prefixed JSON frames over a blocking socket."""

    def __init__(self, sock: socket.socket):
        self.sock = sock

    def send(self, message: dict) -> None:
        payload = json.dumps(message).encode()
        self.sock.sendall(_HEADER.pack(len(payload)) + payload)

    def send_raw(self, data: bytes) -> None:
        """Ship pre-framed (possibly malformed) bytes — fault injection."""
        self.sock.sendall(data)

    def recv(self) -> dict | None:
        """The next frame, or ``None`` on a clean EOF.

        Raises :class:`ValueError` (which includes
        :class:`json.JSONDecodeError` and :class:`UnicodeDecodeError`)
        on an oversized length prefix or a non-JSON body — the caller
        decides whether that kills the connection or the process.
        """
        header = self._read_exact(_HEADER.size)
        if header is None:
            return None
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME:
            raise ValueError(f"frame of {length} bytes exceeds MAX_FRAME")
        body = self._read_exact(length)
        if body is None:
            return None
        return json.loads(body)

    def _read_exact(self, n: int) -> bytes | None:
        chunks = []
        while n > 0:
            chunk = self.sock.recv(n)
            if not chunk:
                return None
            chunks.append(chunk)
            n -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


def _parse_fail_shards(raw: str | None) -> frozenset:
    if not raw:
        return frozenset()
    return frozenset(int(part) for part in raw.split(",") if part.strip())


class _Worker:
    """One connected worker: its stream, process, and assigned shard."""

    __slots__ = ("stream", "pid", "assigned", "assigned_at")

    def __init__(self, stream: FrameStream, pid: int):
        self.stream = stream
        self.pid = pid
        self.assigned = None  # local queue index, or None when idle
        self.assigned_at = 0.0  # coordinator clock at dispatch


class Coordinator:
    """Drive N socket workers over a shard work queue, in-order results.

    ``worker_args`` is the ``(responsive_values, batch_size,
    block_state, protocol)`` tuple shared by every executor.
    ``workers=None`` spawns one worker per shard, capped at the CPU
    count.

    Chaos and recovery knobs (each defaults to its ``repro.env``
    resolution, so env vars apply unless a test passes a value):

    - ``fault_plan`` — a :class:`~repro.scan.faults.FaultPlan` (or plan
      string) of injected faults; default ``$REPRO_FAULT_PLAN``.  The
      legacy ``fail_shards`` / ``fail_every_spawn`` parameters (and
      ``$REPRO_DIST_FAIL_SHARDS``) are folded in as ``crash@i``
      entries.
    - ``shard_deadline`` — seconds one attempt may hold a shard before
      it is speculatively re-dispatched to an idle worker (first
      result wins, duplicates discarded); ``None`` disables.
    - ``respawn_base`` / ``crash_loop_threshold`` — exponential-backoff
      base for replacement spawns and the consecutive spawn-failure
      count that degrades the fleet to its survivors.
    - ``timeout`` — the global no-progress watchdog (backstop).

    After (or during) a run, :attr:`telemetry` reports failures,
    respawns, speculative re-dispatches, discarded duplicates, and
    whether the fleet degraded.
    """

    def __init__(
        self,
        worker_args,
        workers: int | None = None,
        fail_shards=None,
        fail_every_spawn: bool = False,
        timeout: float = 120.0,
        fault_plan=None,
        shard_deadline=_ENV,
        respawn_base=_ENV,
        crash_loop_threshold=_ENV,
        clock=time.monotonic,
    ):
        self.worker_args = worker_args
        self.workers = workers
        legacy = (
            frozenset(fail_shards)
            if fail_shards is not None
            else _parse_fail_shards(os.environ.get(ENV_FAIL_SHARDS))
        )
        plan = _env_fault_plan(fault_plan)
        if legacy:
            plan = plan.merged_with(
                FaultPlan.crash_shards(
                    legacy, every_attempt=fail_every_spawn
                )
            )
        self.fault_plan = plan
        self.shard_deadline = (
            dist_shard_deadline()
            if shard_deadline is _ENV
            else shard_deadline
        )
        self.timeout = timeout
        self._governor = RespawnGovernor(
            base=(
                dist_respawn_base()
                if respawn_base is _ENV
                else respawn_base
            ),
            crash_loop_threshold=(
                dist_crash_loop_threshold()
                if crash_loop_threshold is _ENV
                else crash_loop_threshold
            ),
        )
        self._clock = clock
        self.failures = 0
        self.telemetry = {
            "failures": 0,
            "respawns": 0,
            "faults_armed": 0,
            "speculative_requeues": 0,
            "duplicates_discarded": 0,
            "deadline_kills": 0,
            "degraded": False,
            "fleet_initial": 0,
            "survivors": None,
        }
        self._listener = None
        self._selector = None
        self._procs: dict[int, subprocess.Popen] = {}
        self._connected: set[int] = set()
        self._live: list[_Worker] = []
        self._init_message = None
        self._targets = ()
        self._results: dict[int, ScanResult] = {}
        self._attempts: dict[int, int] = {}
        self._max_failures = 8
        self._last_failure = ""
        self._spawn_ordinal = 0
        self._spawn_backlog = 0
        self._next_spawn_at = 0.0
        self._degraded = False
        self._stderr_files: dict[int, object] = {}
        self._stderr_tails: deque = deque(maxlen=8)

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Tear everything down; safe to call twice."""
        for worker in self._live:
            try:
                worker.stream.send({"type": "shutdown"})
            except OSError:
                pass
            worker.stream.close()
        self._live = []
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        # One short shared grace for clean exits, then escalate: a hung
        # worker must not stall teardown for 5 s apiece — every result
        # is already durable, so killing laggards loses nothing.
        grace = time.monotonic() + 1.0
        for proc in self._procs.values():
            try:
                proc.wait(timeout=max(0.0, grace - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        self._procs = {}
        for fh in self._stderr_files.values():
            try:
                fh.close()
            except OSError:
                pass
        self._stderr_files = {}
        self._connected = set()

    # -- spawning ------------------------------------------------------

    def _spawn(self, first_generation: bool) -> None:
        """Launch one worker process pointed at the coordinator socket."""
        port = self._listener.getsockname()[1]
        argv = [
            sys.executable,
            "-m",
            "repro.scan.distributed",
            "--connect",
            f"127.0.0.1:{port}",
        ]
        ordinal = self._spawn_ordinal
        self._spawn_ordinal += 1
        if self.fault_plan.spawn_fault(ordinal) is not None:
            argv.append("--die-at-spawn")
        env = dict(os.environ)
        # Make the repro package importable in the child regardless of
        # how this process found it (installed, PYTHONPATH, or src/).
        pkg_root = str(Path(__file__).resolve().parents[2])
        path = env.get("PYTHONPATH", "")
        if pkg_root not in path.split(os.pathsep):
            env["PYTHONPATH"] = (
                pkg_root + (os.pathsep + path if path else "")
            )
        stderr = tempfile.TemporaryFile()
        try:
            proc = subprocess.Popen(
                argv, env=env, stdout=subprocess.DEVNULL, stderr=stderr
            )
        except OSError as exc:
            # ENOMEM, a missing interpreter, fd exhaustion: a spawn
            # failure is a worker failure, not a coordinator crash —
            # charge the budget and retry through the backoff path.
            stderr.close()
            self._governor.record_failure()
            self._fail(f"spawn of worker ordinal {ordinal} raised {exc}")
            self._request_spawn()
            return
        if not first_generation:
            self._governor.record_respawn()
            self.telemetry["respawns"] += 1
        self._procs[proc.pid] = proc
        self._stderr_files[proc.pid] = stderr

    def _request_spawn(self) -> None:
        """Ask for one replacement; honored by :meth:`_pump_spawns`."""
        if not self._degraded:
            self._spawn_backlog += 1

    def _pump_spawns(self) -> None:
        """Spawn owed replacements, backoff-paced; degrade on crash loop."""
        if not self._spawn_backlog or self._degraded:
            return
        if self._governor.in_crash_loop:
            self._enter_degraded()
            return
        now = self._clock()
        if now < self._next_spawn_at:
            return
        self._spawn_backlog -= 1
        self._next_spawn_at = now + self._governor.delay()
        self._spawn(first_generation=False)

    def _enter_degraded(self) -> None:
        """Crash loop: stop respawning, finish on the survivors."""
        self._degraded = True
        self._spawn_backlog = 0
        self.telemetry["degraded"] = True
        self.telemetry["survivors"] = len(self._live)
        sys.stderr.write(
            "repro.scan.distributed: crash loop detected after "
            f"{self._governor.failures} consecutive spawn failures; "
            f"degrading fleet to {len(self._live)} surviving worker(s)\n"
        )

    # -- stderr attribution --------------------------------------------

    def _stderr_tail(self, pid: int) -> None:
        """Bank the last bytes of a dead worker's stderr for the report."""
        fh = self._stderr_files.pop(pid, None)
        if fh is None:
            return
        try:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            fh.seek(max(0, size - _STDERR_TAIL_BYTES))
            tail = fh.read().decode(errors="replace").strip()
        except (OSError, ValueError):
            tail = ""
        finally:
            fh.close()
        if tail:
            self._stderr_tails.append(f"pid {pid}: {tail}")

    def _stderr_report(self) -> str:
        if not self._stderr_tails:
            return ""
        return "\nworker stderr tails:\n" + "\n".join(
            f"  {tail}" for tail in self._stderr_tails
        )

    # -- event handling ------------------------------------------------

    def _fail(self, message: str) -> None:
        self.failures += 1
        self.telemetry["failures"] = self.failures
        self._last_failure = message
        if self.failures > self._max_failures:
            raise ExecutorFailure(
                f"distributed executor: too many worker failures "
                f"({self.failures}); last: {message}"
                + self._stderr_report()
            )

    def _needs_requeue(self, index: int, pending: deque) -> bool:
        """Is nobody else (result, queue, live worker) covering ``index``?"""
        if index in self._results or index in pending:
            return False
        return not any(w.assigned == index for w in self._live)

    def _drop_worker(self, worker: _Worker, pending: deque,
                     reason: str) -> None:
        """A worker died or misbehaved: re-queue its shard, count it."""
        if worker in self._live:
            self._live.remove(worker)
        try:
            self._selector.unregister(worker.stream.sock)
        except (KeyError, ValueError):
            pass
        worker.stream.close()
        proc = self._procs.pop(worker.pid, None)
        if proc is not None:
            # Usually the process is already dead (that's why the drop
            # happened); a protocol-violating or hung survivor is
            # terminated so the reap below cannot block the event loop.
            if proc.poll() is None:
                proc.terminate()
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._stderr_tail(worker.pid)
        requeued = worker.assigned
        worker.assigned = None
        if requeued is not None and self._needs_requeue(requeued, pending):
            # Front of the queue: the lost shard is the next dispatch,
            # keeping the in-order release window as small as possible.
            pending.appendleft(requeued)
        self._fail(
            f"worker pid {worker.pid} {reason}"
            + (f" while draining queue slot {requeued}" if requeued
               is not None else "")
        )
        # An already-idle survivor picks the re-queued shard up at once;
        # a replacement is only spawned for work nobody can absorb.
        for idle in list(self._live):
            if not pending:
                break
            self._dispatch(idle, pending, self._targets)
        if pending:
            self._request_spawn()

    def _dispatch(self, worker: _Worker, pending: deque, targets) -> None:
        if worker.assigned is not None or not pending:
            return
        # Skip queue entries whose result already landed (a speculative
        # copy that lost the race before ever being dispatched).
        while pending and pending[0] in self._results:
            pending.popleft()
        if not pending:
            return
        index = pending.popleft()
        shard_no = int(targets[index].shard)
        attempt = self._attempts.get(index, 0)
        message = {"type": "shard", "shard": shard_no, "index": index}
        spec = self.fault_plan.shard_fault(shard_no, attempt)
        if spec is not None:
            message["fault"] = {"kind": spec.kind, "delay": spec.delay}
            self.telemetry["faults_armed"] += 1
        self._attempts[index] = attempt + 1
        try:
            worker.stream.send(message)
            worker.assigned = index
            worker.assigned_at = self._clock()
        except OSError:
            self._attempts[index] = attempt  # never actually dispatched
            pending.appendleft(index)
            self._drop_worker(worker, pending, "died at dispatch")

    def _accept(self, pending: deque, targets) -> None:
        sock, _ = self._listener.accept()
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Every read/write on a worker socket is bounded: a peer that
        # connects and then stalls (mid-hello, mid-frame, or refusing
        # to drain the init payload) times out and is handled as a
        # failure instead of wedging the event loop past the watchdog.
        sock.settimeout(self.timeout)
        stream = FrameStream(sock)
        try:
            hello = stream.recv()
        except (OSError, ValueError):
            # A garbled hello is the connecting peer's failure, not the
            # coordinator's: drop the connection, keep the event loop.
            hello = None
        if not isinstance(hello, dict) or hello.get("type") != "hello":
            stream.close()
            self._governor.record_failure()
            self._fail("worker connected without a valid hello")
            if pending:
                self._request_spawn()
            return
        worker = _Worker(stream, int(hello.get("pid", -1)))
        self._connected.add(worker.pid)
        try:
            stream.send(self._init_message)
        except OSError:
            # The pid is already marked connected, so _reap_unconnected
            # will never replace this worker — do it here.
            stream.close()
            self._governor.record_failure()
            self._fail(f"worker pid {worker.pid} died at init")
            if pending:
                self._request_spawn()
            return
        self._governor.record_success()
        self._live.append(worker)
        self._selector.register(sock, selectors.EVENT_READ, worker)
        self._dispatch(worker, pending, targets)

    def _on_readable(self, worker: _Worker, pending: deque, targets,
                     results: dict) -> bool:
        """Handle one frame from a worker; True when a result landed."""
        try:
            message = worker.stream.recv()
        except (OSError, ValueError) as exc:
            # ValueError covers the whole malformed-frame family: an
            # oversized length prefix, a non-JSON body
            # (json.JSONDecodeError), and undecodable bytes
            # (UnicodeDecodeError).  One bad frame costs one worker,
            # never the run.
            self._drop_worker(
                worker, pending, f"sent an unreadable frame ({exc})"
            )
            return False
        if message is None:
            if worker.assigned is None and not pending:
                # Clean EOF from an idle worker during wind-down.
                if worker in self._live:
                    self._live.remove(worker)
                try:
                    self._selector.unregister(worker.stream.sock)
                except (KeyError, ValueError):
                    pass
                worker.stream.close()
                return False
            self._drop_worker(worker, pending, "hung up")
            return False
        if not isinstance(message, dict) or message.get("type") != "result":
            kind = (
                message.get("type") if isinstance(message, dict)
                else type(message).__name__
            )
            self._drop_worker(
                worker, pending, f"sent unexpected {kind!r}"
            )
            return False
        index = worker.assigned
        if index is None or index != message.get("index"):
            # Validate *before* clearing the assignment: a stale or
            # duplicate result frame must not erase the in-flight shard
            # — _drop_worker re-queues whatever is still assigned.
            self._drop_worker(
                worker, pending, "sent a result for an unassigned shard"
            )
            return False
        worker.assigned = None
        if index in results:
            # A speculative race this worker lost: the shard already
            # completed elsewhere.  Both results are byte-identical by
            # construction, so the duplicate is simply discarded and
            # the worker goes back to useful work.
            self.telemetry["duplicates_discarded"] += 1
            self._dispatch(worker, pending, targets)
            return False
        results[index] = ScanResult(
            probes_sent=int(message["probes_sent"]),
            responses=int(message["responses"]),
            blocked=int(message["blocked"]),
            batches=int(message["batches"]),
            protocol=message.get("protocol"),
        )
        self._dispatch(worker, pending, targets)
        return True

    def _reap_unconnected(self, pending: deque) -> None:
        """Workers that died before saying hello never hit the selector."""
        for pid, proc in list(self._procs.items()):
            if pid not in self._connected and proc.poll() is not None:
                del self._procs[pid]
                self._stderr_tail(pid)
                self._governor.record_failure()
                self._fail(
                    f"worker pid {pid} exited with {proc.returncode} "
                    "before connecting"
                )
                if pending:
                    self._request_spawn()

    def _check_deadlines(self, pending: deque, targets) -> None:
        """Rescue shards held past their deadline by hung/slow workers."""
        deadline = self.shard_deadline
        if deadline is None:
            return
        now = self._clock()
        for worker in list(self._live):
            index = worker.assigned
            if index is None:
                continue
            action = deadline_action(
                now, worker.assigned_at, deadline, _HARD_KILL_FACTOR
            )
            if action == "ok":
                continue
            if action == "kill":
                # Far past the deadline the worker is presumed hung;
                # reclaim its process (its shard re-queues if nobody
                # else covered it).
                self.telemetry["deadline_kills"] += 1
                self._drop_worker(
                    worker, pending,
                    f"held a shard {now - worker.assigned_at:.1f}s "
                    f"(deadline {deadline:.1f}s)",
                )
                continue
            if index in self._results or index in pending:
                continue
            live_copies = sum(
                1 for w in self._live if w.assigned == index
            )
            if live_copies >= _MAX_SPECULATION:
                continue
            # Speculative re-dispatch: race a second attempt on an idle
            # worker.  First completed result wins; the loser's frame
            # is discarded in _on_readable.  In-order release and every
            # merged byte are unchanged — shard results are pure.
            pending.appendleft(index)
            self.telemetry["speculative_requeues"] += 1
            for idle in list(self._live):
                if not pending:
                    break
                self._dispatch(idle, pending, targets)
            if pending and not any(
                w.assigned is None for w in self._live
            ):
                self._request_spawn()

    # -- the drive loop ------------------------------------------------

    def run(self, targets):
        """Drain ``targets``; yield one ScanResult per shard, in order."""
        targets = self._targets = list(targets)
        if not targets:
            return
        geometry = targets[0]
        for t in targets[1:]:
            if (
                t.seed != geometry.seed
                or t.shards != geometry.shards
                or not np.array_equal(t.starts, geometry.starts)
                or not np.array_equal(t.ends, geometry.ends)
            ):
                raise ValueError(
                    "distributed executor requires shards of one walk "
                    "(shared starts/ends/seed/shards geometry)"
                )
        values, batch_size, block_state, protocol = self.worker_args
        self._init_message = {
            "type": "init",
            "protocol": protocol,
            "batch_size": int(batch_size),
            "responsive": encode_array(values),
            "block_starts": (
                encode_array(block_state[0]) if block_state else None
            ),
            "block_ends": (
                encode_array(block_state[1]) if block_state else None
            ),
            "starts": encode_array(geometry.starts),
            "ends": encode_array(geometry.ends),
            "seed": int(geometry.seed),
            "shards": int(geometry.shards),
        }
        self._max_failures = max(8, 2 * len(targets))
        pending = deque(range(len(targets)))
        results = self._results = {}
        next_emit = 0

        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(64)
        self._selector = selectors.DefaultSelector()
        self._selector.register(
            self._listener, selectors.EVENT_READ, None
        )
        n_workers = self.workers or min(
            len(targets), os.cpu_count() or 1
        )
        fleet = max(1, min(n_workers, len(targets)))
        self.telemetry["fleet_initial"] = fleet
        for _ in range(fleet):
            self._spawn(first_generation=True)

        last_progress = self._clock()
        try:
            while next_emit < len(targets):
                for key, _ in self._selector.select(timeout=0.2):
                    if key.data is None:
                        self._accept(pending, targets)
                        last_progress = self._clock()
                    elif self._on_readable(
                        key.data, pending, targets, results
                    ):
                        last_progress = self._clock()
                self._reap_unconnected(pending)
                self._check_deadlines(pending, targets)
                self._pump_spawns()
                while next_emit in results:
                    yield results.pop(next_emit)
                    next_emit += 1
                    last_progress = self._clock()
                if (
                    next_emit < len(targets)
                    and not self._live
                    and not self._procs
                    and not self._spawn_backlog
                ):
                    # Nobody is working, nobody is starting, and no
                    # spawn is owed: the fleet is gone.
                    raise ExecutorFailure(
                        "distributed executor: too many worker failures"
                        " — no live workers remain and respawning "
                        + (
                            "is halted by the crash-loop detector"
                            if self._degraded
                            else "produced none"
                        )
                        + f" ({self.failures} failures; "
                        f"last: {self._last_failure})"
                        + self._stderr_report()
                    )
                if self._clock() - last_progress > self.timeout:
                    raise ExecutorFailure(
                        "distributed executor: no worker progress for "
                        f"{self.timeout:.0f}s "
                        f"(shard {next_emit}/{len(targets)})"
                    )
        finally:
            if self.telemetry["degraded"]:
                self.telemetry["survivors"] = len(self._live)
            self.close()


@register_executor("distributed")
def distributed_executor(targets, worker_args, wrap_targets=None):
    """Coordinator + N local socket workers (the multi-node protocol)."""
    from repro.env import dist_workers

    if wrap_targets is not None:
        raise ValueError(
            "wrap_targets requires the serial executor: wrapper state "
            "cannot be shared across worker processes"
        )
    with Coordinator(worker_args, workers=dist_workers()) as coordinator:
        yield from coordinator.run(targets)


# ---------------------------------------------------------------------------
# Worker side (`python -m repro.scan.distributed --connect HOST:PORT`)
# ---------------------------------------------------------------------------


def _scream(text: str) -> None:
    """Announce an injected death on stderr — the coordinator banks a
    bounded tail of each dead worker's stderr for its failure report,
    exactly as a real crashing worker's traceback would be."""
    sys.stderr.write(f"repro.scan.distributed worker: {text}\n")
    sys.stderr.flush()


def _execute_fault_and_maybe_die(stream: FrameStream, kind: str,
                                 delay: float) -> None:
    """Run the pre-result half of an injected fault (may not return)."""
    if kind in ("crash", "hang", "oversize", "truncate"):
        _scream(f"injected fault {kind!r}")
    if kind == "crash":
        # Injected node loss: die without a result, mid-shard.
        os._exit(_EXIT_CRASH)
    elif kind == "hang":
        # Never answer; only the coordinator's shard deadline (or a
        # hard kill) rescues the shard.
        time.sleep(_HANG_SECONDS)
        os._exit(_EXIT_CRASH)
    elif kind == "stall":
        # Slow I/O: answer, but late — possibly after a speculative
        # duplicate already won the race.
        time.sleep(delay or _DEFAULT_STALL)
    elif kind == "oversize":
        # A length prefix past MAX_FRAME: recv() raises ValueError.
        stream.send_raw(_HEADER.pack(MAX_FRAME + 1))
        os._exit(_EXIT_OVERSIZE)
    elif kind == "truncate":
        # Promise a megabyte, deliver seven bytes, die: recv() sees a
        # mid-frame EOF.
        stream.send_raw(_HEADER.pack(1 << 20) + b"partial")
        os._exit(_EXIT_TRUNCATE)


def worker_main(host: str, port: int, fail_shards=frozenset()) -> int:
    """Connect, drain shards until shutdown/EOF.  The remote-node loop."""
    # Imported lazily: this module is imported by repro.scan.executors
    # while repro.scan.sharded is still initialising, so a top-level
    # import would be circular.
    from repro.scan.sharded import IntervalTargets

    delay = float(os.environ.get(ENV_SHARD_DELAY, "0") or 0.0)
    stream = FrameStream(socket.create_connection((host, port)))
    stream.send({"type": "hello", "pid": os.getpid()})
    engine = truth = protocol = None
    geometry = None
    while True:
        message = stream.recv()
        if message is None or message["type"] == "shutdown":
            stream.close()
            return 0
        if message["type"] == "init":
            block_state = None
            if message["block_starts"] is not None:
                block_state = (
                    decode_array(message["block_starts"]),
                    decode_array(message["block_ends"]),
                )
            engine, truth, protocol = build_worker(
                decode_array(message["responsive"]),
                message["batch_size"],
                block_state,
                message["protocol"],
            )
            geometry = (
                decode_array(message["starts"]),
                decode_array(message["ends"]),
                message["seed"],
                message["shards"],
            )
        elif message["type"] == "shard":
            if engine is None:
                raise RuntimeError("shard received before init")
            shard = int(message["shard"])
            fault = message.get("fault") or {}
            kind = fault.get("kind")
            if delay:
                time.sleep(delay)
            if shard in fail_shards:
                # Legacy --fail-shards injection (same as kind=crash).
                _scream(f"injected fault 'crash' on shard {shard}")
                os._exit(_EXIT_CRASH)
            if kind == "corrupt":
                # A well-framed body that is not JSON: recv() raises
                # JSONDecodeError.  No result follows; the coordinator
                # drops this worker and its next recv sees a clean EOF.
                _scream("injected fault 'corrupt'")
                body = b"\x00\xffthis is not json"
                stream.send_raw(_HEADER.pack(len(body)) + body)
                continue
            if kind is not None:
                _execute_fault_and_maybe_die(
                    stream, kind, float(fault.get("delay") or 0.0)
                )
            starts, ends, seed, shards = geometry
            targets = IntervalTargets(
                (starts, ends), seed=seed, shard=shard, shards=shards
            )
            result = engine.run(targets, truth, protocol=protocol)
            reply = json.dumps(
                {
                    "type": "result",
                    "index": message["index"],
                    "shard": shard,
                    "probes_sent": result.probes_sent,
                    "responses": result.responses,
                    "blocked": result.blocked,
                    "batches": result.batches,
                    "protocol": result.protocol,
                }
            ).encode()
            if kind == "mid_result":
                # Die halfway through the result frame: the shard's
                # work is done but the coordinator must still re-queue
                # it (the counters never arrived whole).
                _scream("injected fault 'mid_result'")
                frame = _HEADER.pack(len(reply)) + reply
                stream.send_raw(frame[: max(5, len(frame) // 2)])
                os._exit(_EXIT_MID_RESULT)
            stream.send_raw(_HEADER.pack(len(reply)) + reply)
        else:
            raise RuntimeError(f"unexpected message {message['type']!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.scan.distributed",
        description="Distributed scan worker: connect to a coordinator "
        "and drain shards.",
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address",
    )
    parser.add_argument(
        "--fail-shards", default="",
        help="test-only: die when first asked for these shard indices",
    )
    parser.add_argument(
        "--die-at-spawn", action="store_true",
        help="test-only: exit immediately (an injected crash-looping "
        "spawn; see repro.scan.faults)",
    )
    args = parser.parse_args(argv)
    if args.die_at_spawn:
        _scream("injected fault 'spawn_crash'")
        os._exit(_EXIT_SPAWN)
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"--connect must be HOST:PORT, got {args.connect!r}")
    return worker_main(
        host, int(port), _parse_fail_shards(args.fail_shards)
    )


if __name__ == "__main__":
    sys.exit(main())
