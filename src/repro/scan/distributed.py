"""Distributed shard execution: a coordinator driving socket workers.

This is the multi-node seam: the coordinator serializes
:class:`~repro.scan.sharded.IntervalTargets` shard descriptions onto a
work queue and drives ``N`` workers over a small wire protocol —
length-prefixed JSON frames over TCP, with ``int64`` arrays carried as
base64 ``tobytes`` payloads pinned to little-endian (``<i8``) on the
wire, so hosts of different endianness interoperate.  Workers join the
fleet two ways, mixed freely:

- **spawned** — local child processes the coordinator launches
  (``python -m repro.scan.distributed --connect HOST:PORT``) that dial
  back in to its listener;
- **remote** — pre-started workers (``python -m repro.scan.distributed
  --listen HOST:PORT``) named in the ``REPRO_DIST_ADDRESS_BOOK``
  address book that the coordinator dials *out* to.  A listen worker
  serves coordinator *sessions* in sequence: when one session ends
  (shutdown, coordinator death, a stray peer hanging up) it returns to
  ``accept`` and waits for the next — which is what lets a restarted
  coordinator reconnect the same fleet and resume from its checkpoint
  stream, and lets a worker that starts late join mid-wave through the
  coordinator's redial pump.

Protocol (all frames are ``>I``-length-prefixed UTF-8 JSON):

- ``hello``     worker → coordinator: ``{"type": "hello", "pid": ...,
  "nonce": ...}`` — always the worker's first frame, whichever side
  dialed the connection.
- ``challenge`` coordinator → worker (only when ``REPRO_DIST_SECRET``
  is set): a fresh nonce plus the coordinator's HMAC-SHA256 proof over
  both nonces — authentication is *mutual*, a worker never drains
  shards for an impostor coordinator.
- ``auth``      worker → coordinator: the worker's HMAC-SHA256 proof.
  Peers that fail the exchange are dropped **without charging the
  failure budget** — stray or impostor connections must not be able to
  abort a healthy campaign.
- ``init``     coordinator → worker: responsive set, blocklist, engine
  batch size, protocol, and the shared shard geometry
  (``starts``/``ends``/``seed``/``shards``, plus the v6-only
  ``hitlist``/``samples`` seeding) — sent once per worker.
- ``shard``    coordinator → worker: ``{"type": "shard", "shard": i}``
  — drain the ``i``-th sub-walk of the init geometry.  May carry a
  ``fault`` object when a chaos plan armed one for this attempt.
- ``result``   worker → coordinator: the shard's ``ScanResult`` counters.
- ``shutdown`` coordinator → worker: drain done — a spawned worker
  exits cleanly, a listen worker returns to ``accept``.

Determinism and failure semantics: every shard's ``ScanResult`` is a
pure function of the shard description, so *which* worker drains a
shard (or how often it is retried, or whether two workers race it)
never changes the outcome.  The coordinator survives the full chaos
matrix of :mod:`repro.scan.faults`:

- a worker that **dies** (mid-shard, mid-result, or before saying
  hello) has its shard re-queued and a replacement spawned;
- a worker that sends a **malformed, truncated, or oversized frame**
  is dropped — just that worker — and charged to the failure budget;
- a worker that **hangs or stalls** past the per-shard attempt
  deadline has its shard *speculatively re-dispatched* to an idle
  worker; the first result wins, late duplicates are discarded, and a
  worker far past its deadline is killed outright;
- **respawns back off exponentially** (deterministic, no jitter), and
  a crash-looping replacement fleet trips a detector that *degrades*
  the fleet — the wave finishes on the survivors instead of
  tight-loop respawning, surfaced in :attr:`Coordinator.telemetry`;
- only when no worker remains and none can be spawned does the run
  abort, with a bounded tail of each dead worker's stderr in the
  error message.

Throughout, results are released strictly in shard order, so the
orchestrator's ``on_shard`` checkpoint stream (and therefore
kill-and-resume byte-identity) is preserved under every fault.

Failure-budget accounting draws one safety line: a peer that was never
a fleet member — a clean pre-hello EOF from a port scanner or health
checker, or a connection that fails authentication — is logged and
ignored (``stray_disconnects`` / ``auth_rejects`` telemetry), while a
*garbled* hello and every failure of an initialized worker still
charge the budget.  A noisy or hostile network can therefore never
wedge a healthy run, but genuine infrastructure collapse still aborts
loudly.

Knobs: ``REPRO_DIST_WORKERS`` (fleet size, spawned + remote; default
one per shard capped at the CPU count plus the address book),
``REPRO_DIST_ADDRESS_BOOK`` (``host:port,host:port`` of pre-started
``--listen`` workers), ``REPRO_DIST_SECRET`` (shared HMAC key; unset
disables the challenge/response), ``REPRO_FAULT_PLAN`` (declarative
fault injection; see :mod:`repro.scan.faults`),
``REPRO_DIST_SHARD_DEADLINE``
(per-shard attempt deadline, default 30 s; 0 disables),
``REPRO_DIST_RESPAWN_BASE`` / ``REPRO_DIST_CRASH_LOOP`` (respawn
backoff base and crash-loop threshold).  Legacy fault injection:
``REPRO_DIST_FAIL_SHARDS`` (comma-separated shard indices whose first
assigned worker dies mid-shard — sugar for ``crash@i`` plan entries)
and ``REPRO_DIST_SHARD_DELAY`` (seconds each worker sleeps per shard,
to make smoke-test kill windows deterministic); none of these change
any result.
"""

from __future__ import annotations

import argparse
import base64
import hashlib
import hmac
import json
import os
import selectors
import socket
import struct
import subprocess
import sys
import tempfile
import time
from collections import deque
from pathlib import Path

import numpy as np

from repro import obs
from repro.env import (
    ENV_DIST_SECRET,
    dist_address_book,
    dist_crash_loop_threshold,
    dist_respawn_base,
    dist_secret,
    dist_shard_deadline,
    fault_plan as _env_fault_plan,
)
from repro.scan.engine import ScanResult
from repro.scan.executors import (
    ExecutorFailure,
    build_worker,
    register_executor,
)
from repro.scan.faults import FaultPlan, RespawnGovernor, deadline_action

__all__ = [
    "ENV_FAIL_SHARDS",
    "ENV_SHARD_DELAY",
    "FrameStream",
    "Coordinator",
    "distributed_executor",
    "worker_main",
    "listen_main",
    "main",
]

ENV_FAIL_SHARDS = "REPRO_DIST_FAIL_SHARDS"
ENV_SHARD_DELAY = "REPRO_DIST_SHARD_DELAY"

_HEADER = struct.Struct(">I")
#: Frame-size sanity cap: a corrupt length prefix must not allocate GBs.
MAX_FRAME = 1 << 30

#: At most one speculative copy of a shard races the original attempt.
_MAX_SPECULATION = 2
#: A worker this many deadlines past dispatch is killed, not raced.
_HARD_KILL_FACTOR = 3.0
#: Bytes of each dead worker's stderr kept for the failure report.
_STDERR_TAIL_BYTES = 512

#: Worker exit codes, one per injected death (diagnosable from `ps`).
_EXIT_CRASH = 17
_EXIT_TRUNCATE = 18
_EXIT_OVERSIZE = 19
_EXIT_MID_RESULT = 20
_EXIT_SPAWN = 21
#: A --connect worker that was denied (or denied the coordinator) auth.
_EXIT_AUTH = 22

#: Seconds a listen worker allows a fresh connection to finish the
#: hello/challenge/init handshake before dropping it — a port scanner
#: that connects and stalls must not wedge the accept loop.
_HANDSHAKE_TIMEOUT = 30.0
#: Seconds to wait for one outbound TCP connect to an address-book
#: entry before treating the worker as not-up-yet.
_DIAL_TIMEOUT = 2.0
#: Seconds between redial attempts at address-book entries that are
#: down, rejected, or lost mid-run — the mid-wave join cadence.
_REDIAL_INTERVAL = 0.5

#: "Forever" for a hung worker; the coordinator kills it long before.
_HANG_SECONDS = 3600.0
_DEFAULT_STALL = 1.0

#: Constructor sentinel: resolve the knob from the environment.
_ENV = object()


# ---------------------------------------------------------------------------
# Wire encoding
# ---------------------------------------------------------------------------


def encode_array(arr) -> dict:
    """A JSON-safe ``{"dtype", "data"}`` carrier for a 1-D array.

    The wire dtype is pinned to explicit little-endian (``<i8`` for the
    int64 arrays every message actually carries): shipping the sender's
    *native* dtype string would silently corrupt payloads between hosts
    of different endianness — a big-endian encoder swaps its bytes
    here, once, instead of every decoder guessing.
    """
    arr = np.asarray(arr)
    wire = arr.dtype.newbyteorder("<")
    arr = np.ascontiguousarray(arr, dtype=wire)
    return {
        "dtype": wire.str,
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_array(obj) -> np.ndarray:
    """Decode an :func:`encode_array` carrier to a native-order array.

    Byteswaps when the wire order differs from this host's — the
    returned array is always native-endian, so downstream
    ``searchsorted`` hot paths never chew on swapped views.
    """
    arr = np.frombuffer(
        base64.b64decode(obj["data"]), dtype=np.dtype(obj["dtype"])
    )
    return arr.astype(arr.dtype.newbyteorder("="), copy=False)


def _auth_proof(secret: str, role: str, nonce_c: str, nonce_w: str) -> str:
    """The HMAC-SHA256 hex proof one ``role`` owes over both nonces.

    Binding the proof to the role and to *both* nonces makes the
    exchange mutual and replay-proof: a recorded worker proof cannot be
    replayed to a later challenge, and a coordinator proof cannot be
    reflected back as a worker proof.
    """
    message = f"{role}:{nonce_c}:{nonce_w}".encode()
    return hmac.new(secret.encode(), message, hashlib.sha256).hexdigest()


class FrameStream:
    """Length-prefixed JSON frames over a blocking socket.

    ``bytes_in``/``bytes_out`` count the wire traffic either side of
    this stream has moved — observability both report into (worker
    stats frames carry the worker's counters home; the coordinator
    folds its own side into the metrics registry).
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.bytes_in = 0
        self.bytes_out = 0

    def send(self, message: dict) -> None:
        payload = json.dumps(message).encode()
        self.send_raw(_HEADER.pack(len(payload)) + payload)

    def send_raw(self, data: bytes) -> None:
        """Ship pre-framed (possibly malformed) bytes — fault injection."""
        self.sock.sendall(data)
        self.bytes_out += len(data)

    def recv(self) -> dict | None:
        """The next frame, or ``None`` on a clean EOF.

        Raises :class:`ValueError` (which includes
        :class:`json.JSONDecodeError` and :class:`UnicodeDecodeError`)
        on an oversized length prefix or a non-JSON body — the caller
        decides whether that kills the connection or the process.
        """
        header = self._read_exact(_HEADER.size)
        if header is None:
            return None
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME:
            raise ValueError(f"frame of {length} bytes exceeds MAX_FRAME")
        body = self._read_exact(length)
        if body is None:
            return None
        return json.loads(body)

    def _read_exact(self, n: int) -> bytes | None:
        chunks = []
        while n > 0:
            chunk = self.sock.recv(n)
            if not chunk:
                return None
            chunks.append(chunk)
            self.bytes_in += len(chunk)
            n -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


def _parse_fail_shards(raw: str | None) -> frozenset:
    if not raw:
        return frozenset()
    return frozenset(int(part) for part in raw.split(",") if part.strip())


class _Worker:
    """One connected worker: its stream, process, and assigned shard."""

    __slots__ = (
        "stream", "pid", "origin", "assigned", "assigned_at",
        "fault_kind",
    )

    def __init__(self, stream: FrameStream, pid: int, origin=None):
        self.stream = stream
        self.pid = pid
        self.origin = origin  # (host, port) book entry; None = accepted
        self.assigned = None  # local queue index, or None when idle
        self.assigned_at = 0.0  # coordinator clock at dispatch
        self.fault_kind = None  # fault armed on the in-flight dispatch


class Coordinator:
    """Drive N socket workers over a shard work queue, in-order results.

    ``worker_args`` is the ``(responsive_values, batch_size,
    block_state, protocol)`` tuple shared by every executor.
    ``workers=None`` sizes the fleet at one worker per shard, capped at
    the CPU count plus the address book.

    Fleet composition: every ``address_book`` entry (default
    ``$REPRO_DIST_ADDRESS_BOOK``) is dialed out to — and *re*-dialed on
    a short cadence, so a remote worker that starts late, or comes back
    after its coordinator session dropped, joins mid-wave.  The
    remainder of the fleet is spawned as local child processes.  When
    ``secret`` (default ``$REPRO_DIST_SECRET``) is set, every
    connection — accepted or dialed — must complete the mutual
    HMAC-SHA256 challenge/response before it receives init; rejects are
    counted in ``auth_rejects`` and never charge the failure budget.
    Passing ``secret=None`` / ``address_book=None`` explicitly disables
    the feature even when the env var is set.

    Chaos and recovery knobs (each defaults to its ``repro.env``
    resolution, so env vars apply unless a test passes a value):

    - ``fault_plan`` — a :class:`~repro.scan.faults.FaultPlan` (or plan
      string) of injected faults; default ``$REPRO_FAULT_PLAN``.  The
      legacy ``fail_shards`` / ``fail_every_spawn`` parameters (and
      ``$REPRO_DIST_FAIL_SHARDS``) are folded in as ``crash@i``
      entries.
    - ``shard_deadline`` — seconds one attempt may hold a shard before
      it is speculatively re-dispatched to an idle worker (first
      result wins, duplicates discarded); ``None`` disables.
    - ``respawn_base`` / ``crash_loop_threshold`` — exponential-backoff
      base for replacement spawns and the consecutive spawn-failure
      count that degrades the fleet to its survivors.
    - ``timeout`` — the global no-progress watchdog (backstop).

    After (or during) a run, :attr:`telemetry` reports failures,
    respawns, speculative re-dispatches, discarded duplicates, and
    whether the fleet degraded.
    """

    def __init__(
        self,
        worker_args,
        workers: int | None = None,
        fail_shards=None,
        fail_every_spawn: bool = False,
        timeout: float = 120.0,
        fault_plan=None,
        shard_deadline=_ENV,
        respawn_base=_ENV,
        crash_loop_threshold=_ENV,
        address_book=_ENV,
        secret=_ENV,
        clock=time.monotonic,
    ):
        self.worker_args = worker_args
        self.workers = workers
        if address_book is _ENV:
            self.address_book = dist_address_book()
        elif address_book is None:
            self.address_book = ()
        else:
            self.address_book = dist_address_book(address_book)
        if secret is _ENV:
            self.secret = dist_secret()
        elif secret is None:
            self.secret = None
        else:
            self.secret = dist_secret(secret)
        legacy = (
            frozenset(fail_shards)
            if fail_shards is not None
            else _parse_fail_shards(os.environ.get(ENV_FAIL_SHARDS))
        )
        plan = _env_fault_plan(fault_plan)
        if legacy:
            plan = plan.merged_with(
                FaultPlan.crash_shards(
                    legacy, every_attempt=fail_every_spawn
                )
            )
        self.fault_plan = plan
        self.shard_deadline = (
            dist_shard_deadline()
            if shard_deadline is _ENV
            else shard_deadline
        )
        self.timeout = timeout
        self._governor = RespawnGovernor(
            base=(
                dist_respawn_base()
                if respawn_base is _ENV
                else respawn_base
            ),
            crash_loop_threshold=(
                dist_crash_loop_threshold()
                if crash_loop_threshold is _ENV
                else crash_loop_threshold
            ),
        )
        self._clock = clock
        self.failures = 0
        self.telemetry = {
            "failures": 0,
            "respawns": 0,
            "faults_armed": 0,
            "speculative_requeues": 0,
            "duplicates_discarded": 0,
            "deadline_kills": 0,
            "degraded": False,
            "fleet_initial": 0,
            "survivors": None,
            "auth_rejects": 0,
            "stray_disconnects": 0,
            "remote_fleet": 0,
            "remote_connected": 0,
        }
        self._listener = None
        self._selector = None
        self._procs: dict[int, subprocess.Popen] = {}
        self._connected: set[int] = set()
        self._live: list[_Worker] = []
        self._init_message = None
        self._targets = ()
        self._results: dict[int, ScanResult] = {}
        self._attempts: dict[int, int] = {}
        self._max_failures = 8
        self._last_failure = ""
        self._spawn_ordinal = 0
        self._spawn_backlog = 0
        self._next_spawn_at = 0.0
        self._degraded = False
        self._stderr_files: dict[int, object] = {}
        self._stderr_tails: deque = deque(maxlen=8)
        #: Address-book entries owed a (re)dial, mapped to the clock
        #: time the next attempt is due — the mid-wave join mechanism.
        self._remote_due: dict[tuple[str, int], float] = {}
        self._remote_live: set[tuple[str, int]] = set()

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Tear everything down; safe to call twice."""
        collect_stats = obs.get_registry() is not None
        for worker in self._live:
            try:
                worker.stream.send({"type": "shutdown"})
                if collect_stats:
                    # A worker answers shutdown with one final stats
                    # frame; best-effort with a short clamp so a hung
                    # worker cannot stall teardown.  Skipped entirely
                    # outside a metrics scope.
                    worker.stream.sock.settimeout(0.25)
                    reply = worker.stream.recv()
                    if (
                        isinstance(reply, dict)
                        and reply.get("type") == "stats"
                    ):
                        self._absorb_stats(
                            worker.pid, reply.get("stats")
                        )
            except (OSError, ValueError):
                pass
            self._flush_worker_bytes(worker)
            worker.stream.close()
        self._live = []
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        # One short shared grace for clean exits, then escalate: a hung
        # worker must not stall teardown for 5 s apiece — every result
        # is already durable, so killing laggards loses nothing.
        grace = time.monotonic() + 1.0
        for proc in self._procs.values():
            try:
                proc.wait(timeout=max(0.0, grace - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        self._procs = {}
        for fh in self._stderr_files.values():
            try:
                fh.close()
            except OSError:
                pass
        self._stderr_files = {}
        self._connected = set()
        self._remote_due = {}
        self._remote_live = set()

    # -- spawning ------------------------------------------------------

    def _spawn(self, first_generation: bool) -> None:
        """Launch one worker process pointed at the coordinator socket."""
        port = self._listener.getsockname()[1]
        argv = [
            sys.executable,
            "-m",
            "repro.scan.distributed",
            "--connect",
            f"127.0.0.1:{port}",
        ]
        ordinal = self._spawn_ordinal
        self._spawn_ordinal += 1
        spec = self.fault_plan.spawn_fault(ordinal)
        if spec is not None:
            argv.append(
                "--auth-fail" if spec.kind == "auth_fail"
                else "--die-at-spawn"
            )
        env = dict(os.environ)
        # The coordinator's *resolved* auth config is authoritative for
        # its own children: an explicit secret reaches them through the
        # environment, an explicit None scrubs an inherited one.
        if self.secret is not None:
            env[ENV_DIST_SECRET] = self.secret
        else:
            env.pop(ENV_DIST_SECRET, None)
        # Make the repro package importable in the child regardless of
        # how this process found it (installed, PYTHONPATH, or src/).
        pkg_root = str(Path(__file__).resolve().parents[2])
        path = env.get("PYTHONPATH", "")
        if pkg_root not in path.split(os.pathsep):
            env["PYTHONPATH"] = (
                pkg_root + (os.pathsep + path if path else "")
            )
        stderr = tempfile.TemporaryFile()
        try:
            proc = subprocess.Popen(
                argv, env=env, stdout=subprocess.DEVNULL, stderr=stderr
            )
        except OSError as exc:
            # ENOMEM, a missing interpreter, fd exhaustion: a spawn
            # failure is a worker failure, not a coordinator crash —
            # charge the budget and retry through the backoff path.
            stderr.close()
            self._governor.record_failure()
            self._fail(f"spawn of worker ordinal {ordinal} raised {exc}")
            self._request_spawn()
            return
        if not first_generation:
            self._governor.record_respawn()
            self.telemetry["respawns"] += 1
        self._procs[proc.pid] = proc
        self._stderr_files[proc.pid] = stderr
        obs.get_tracer().point(
            "worker_spawn",
            pid=proc.pid,
            ordinal=ordinal,
            respawn=not first_generation,
        )

    def _request_spawn(self) -> None:
        """Ask for one replacement; honored by :meth:`_pump_spawns`."""
        if not self._degraded:
            self._spawn_backlog += 1

    def _pump_spawns(self) -> None:
        """Spawn owed replacements, backoff-paced; degrade on crash loop."""
        if not self._spawn_backlog or self._degraded:
            return
        if self._governor.in_crash_loop:
            self._enter_degraded()
            return
        now = self._clock()
        if now < self._next_spawn_at:
            return
        self._spawn_backlog -= 1
        self._next_spawn_at = now + self._governor.delay()
        self._spawn(first_generation=False)

    def _enter_degraded(self) -> None:
        """Crash loop: stop respawning, finish on the survivors."""
        self._degraded = True
        self._spawn_backlog = 0
        self.telemetry["degraded"] = True
        self.telemetry["survivors"] = len(self._live)
        obs.get_tracer().point(
            "fleet_degraded", survivors=len(self._live)
        )
        sys.stderr.write(
            "repro.scan.distributed: crash loop detected after "
            f"{self._governor.failures} consecutive spawn failures; "
            f"degrading fleet to {len(self._live)} surviving worker(s)\n"
        )

    # -- stderr attribution --------------------------------------------

    def _stderr_tail(self, pid: int) -> None:
        """Bank the last bytes of a dead worker's stderr for the report."""
        fh = self._stderr_files.pop(pid, None)
        if fh is None:
            return
        try:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            fh.seek(max(0, size - _STDERR_TAIL_BYTES))
            tail = fh.read().decode(errors="replace").strip()
        except (OSError, ValueError):
            tail = ""
        finally:
            fh.close()
        if tail:
            self._stderr_tails.append(f"pid {pid}: {tail}")

    def _stderr_report(self) -> str:
        if not self._stderr_tails:
            return ""
        return "\nworker stderr tails:\n" + "\n".join(
            f"  {tail}" for tail in self._stderr_tails
        )

    # -- event handling ------------------------------------------------

    def _fail(self, message: str) -> None:
        self.failures += 1
        self.telemetry["failures"] = self.failures
        self._last_failure = message
        if self.failures > self._max_failures:
            raise ExecutorFailure(
                f"distributed executor: too many worker failures "
                f"({self.failures}); last: {message}"
                + self._stderr_report()
            )

    def _needs_requeue(self, index: int, pending: deque) -> bool:
        """Is nobody else (result, queue, live worker) covering ``index``?"""
        if index in self._results or index in pending:
            return False
        return not any(w.assigned == index for w in self._live)

    def _flush_worker_bytes(self, worker: _Worker) -> None:
        """Fold this side's wire counters in as a worker detaches."""
        registry = obs.get_registry()
        if registry is not None:
            registry.counter("dist.bytes_in").inc(
                worker.stream.bytes_in
            )
            registry.counter("dist.bytes_out").inc(
                worker.stream.bytes_out
            )

    def _absorb_stats(self, pid: int, stats) -> None:
        """Worker-side counters (shipped home in frames) → gauges.

        Gauges, not counter increments: each frame carries the worker's
        *cumulative* session counters, so the latest value is the
        truth and summing frames would multiply it.
        """
        registry = obs.get_registry()
        if registry is None or not isinstance(stats, dict):
            return
        for key, value in stats.items():
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                registry.gauge(f"worker.{pid}.{key}").set(value)

    def _drop_worker(self, worker: _Worker, pending: deque,
                     reason: str) -> None:
        """A worker died or misbehaved: re-queue its shard, count it."""
        if worker in self._live:
            self._live.remove(worker)
        try:
            self._selector.unregister(worker.stream.sock)
        except (KeyError, ValueError):
            pass
        self._flush_worker_bytes(worker)
        worker.stream.close()
        tracer = obs.get_tracer()
        tracer.point("worker_drop", pid=worker.pid, reason=reason)
        if worker.fault_kind is not None and worker.assigned is not None:
            # Worker processes cannot write the coordinator's event
            # log; a drop whose in-flight dispatch had a fault armed is
            # the observable moment that fault fired.
            tracer.point(
                "fault_fired", pid=worker.pid, kind=worker.fault_kind
            )
        if worker.origin is not None:
            # A remote fleet member: its listen loop may well survive
            # this session (a coordinator-side drop, a transient stall)
            # — schedule a redial so it can rejoin mid-wave.  A pid
            # collision with a local child must not reap that child, so
            # the proc table is only consulted for accepted workers.
            self._remote_live.discard(worker.origin)
            self._schedule_redial(worker.origin)
        proc = (
            self._procs.pop(worker.pid, None)
            if worker.origin is None else None
        )
        if proc is not None:
            # Usually the process is already dead (that's why the drop
            # happened); a protocol-violating or hung survivor is
            # terminated so the reap below cannot block the event loop.
            if proc.poll() is None:
                proc.terminate()
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._stderr_tail(worker.pid)
        requeued = worker.assigned
        worker.assigned = None
        if requeued is not None and self._needs_requeue(requeued, pending):
            # Front of the queue: the lost shard is the next dispatch,
            # keeping the in-order release window as small as possible.
            pending.appendleft(requeued)
        self._fail(
            f"worker pid {worker.pid} {reason}"
            + (f" while draining queue slot {requeued}" if requeued
               is not None else "")
        )
        # An already-idle survivor picks the re-queued shard up at once;
        # a replacement is only spawned for work nobody can absorb.
        for idle in list(self._live):
            if not pending:
                break
            self._dispatch(idle, pending, self._targets)
        if pending:
            self._request_spawn()

    def _dispatch(self, worker: _Worker, pending: deque, targets) -> None:
        if worker.assigned is not None or not pending:
            return
        # Skip queue entries whose result already landed (a speculative
        # copy that lost the race before ever being dispatched).
        while pending and pending[0] in self._results:
            pending.popleft()
        if not pending:
            return
        index = pending.popleft()
        shard_no = int(targets[index].shard)
        attempt = self._attempts.get(index, 0)
        message = {"type": "shard", "shard": shard_no, "index": index}
        tracer = obs.get_tracer()
        spec = self.fault_plan.shard_fault(shard_no, attempt)
        if spec is not None:
            message["fault"] = {"kind": spec.kind, "delay": spec.delay}
            self.telemetry["faults_armed"] += 1
            tracer.point(
                "fault_armed",
                shard=shard_no,
                attempt=attempt,
                kind=spec.kind,
            )
        self._attempts[index] = attempt + 1
        try:
            worker.stream.send(message)
            worker.assigned = index
            worker.assigned_at = self._clock()
            worker.fault_kind = spec.kind if spec is not None else None
            tracer.point(
                "shard_dispatch",
                index=index,
                shard=shard_no,
                attempt=attempt,
                pid=worker.pid,
            )
        except OSError:
            self._attempts[index] = attempt  # never actually dispatched
            pending.appendleft(index)
            self._drop_worker(worker, pending, "died at dispatch")

    def _accept(self, pending: deque, targets) -> None:
        sock, _ = self._listener.accept()
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Every read/write on a worker socket is bounded: a peer that
        # connects and then stalls (mid-hello, mid-frame, or refusing
        # to drain the init payload) times out and is handled as a
        # failure instead of wedging the event loop past the watchdog.
        sock.settimeout(self.timeout)
        self._handshake(FrameStream(sock), None, pending, targets)

    def _handshake(self, stream: FrameStream, origin,
                   pending: deque, targets) -> bool:
        """hello(/challenge/auth)/init with a fresh connection.

        ``origin`` is ``None`` for accepted connections (spawned
        workers — and strays), or the ``(host, port)`` address-book
        entry for connections the coordinator dialed out.  Returns True
        when the peer became a live fleet member.

        Budget accounting draws the safety line documented up top: a
        clean pre-hello EOF or an authentication failure is *never*
        charged (the peer was never a fleet member), while a garbled
        hello — a peer that sent bytes but not our protocol where a
        worker was expected — still is.
        """
        label = (
            "worker" if origin is None
            else "remote worker %s:%s" % origin
        )
        try:
            hello = stream.recv()
        except ValueError as exc:
            # Garbled hello: framing or JSON garbage from a peer that
            # did talk.  The connecting peer's failure, not the
            # coordinator's — drop it, keep the event loop, charge.
            stream.close()
            self._governor.record_failure()
            self._fail(f"{label} connected without a valid hello ({exc})")
            if pending:
                self._request_spawn()
            return False
        except OSError:
            hello = None
        if hello is None:
            # Clean pre-hello EOF (or reset/stall): a port scanner or
            # health checker probing the socket.  Never a fleet member,
            # so never charged — a noisy network must not be able to
            # abort a healthy run.  (A spawned child that died before
            # hello is still charged, by _reap_unconnected.)
            stream.close()
            self.telemetry["stray_disconnects"] += 1
            if origin is not None:
                self._schedule_redial(origin)
            return False
        if not isinstance(hello, dict) or hello.get("type") != "hello":
            stream.close()
            self._governor.record_failure()
            self._fail(f"{label} connected without a valid hello")
            if pending:
                self._request_spawn()
            return False
        pid = int(hello.get("pid", -1))
        if self.secret is not None and not self._authenticate(
            stream, hello
        ):
            self._reject_unauthenticated(stream, pid, origin, pending)
            return False
        worker = _Worker(stream, pid, origin)
        if origin is None:
            self._connected.add(pid)
        try:
            stream.send(self._init_message)
        except OSError:
            # The pid is already marked connected, so _reap_unconnected
            # will never replace this worker — do it here.
            stream.close()
            self._governor.record_failure()
            self._fail(f"{label} pid {pid} died at init")
            if origin is not None:
                self._schedule_redial(origin)
            elif pending:
                self._request_spawn()
            return False
        self._governor.record_success()
        self._live.append(worker)
        obs.get_tracer().point(
            "worker_connect",
            pid=pid,
            origin="%s:%s" % origin if origin is not None else None,
        )
        if origin is not None:
            self._remote_live.add(origin)
            self.telemetry["remote_connected"] += 1
        self._selector.register(stream.sock, selectors.EVENT_READ, worker)
        self._dispatch(worker, pending, targets)
        return True

    def _authenticate(self, stream: FrameStream, hello: dict) -> bool:
        """The coordinator's half of the mutual challenge/response."""
        nonce_w = hello.get("nonce")
        if not isinstance(nonce_w, str) or not nonce_w:
            return False
        nonce_c = os.urandom(16).hex()
        try:
            stream.send({
                "type": "challenge",
                "nonce": nonce_c,
                "proof": _auth_proof(
                    self.secret, "coordinator", nonce_c, nonce_w
                ),
            })
            reply = stream.recv()
        except (OSError, ValueError):
            return False
        if not isinstance(reply, dict) or reply.get("type") != "auth":
            return False
        proof = reply.get("proof")
        expected = _auth_proof(self.secret, "worker", nonce_c, nonce_w)
        return isinstance(proof, str) and hmac.compare_digest(
            proof, expected
        )

    def _reject_unauthenticated(self, stream: FrameStream, pid: int,
                                origin, pending: deque) -> None:
        """Drop a peer that failed (or walked out of) the auth exchange.

        Never charges the failure budget or the respawn governor: an
        impostor or misconfigured peer was never a fleet member, and
        letting it burn the budget would hand any hostile network a
        lever to abort healthy campaigns.  A spawned child that failed
        auth (the ``auth_fail`` fault, or a secret mismatch) is reaped
        and replaced; a dialed address-book entry is *not* redialed —
        a wrong secret will not fix itself, and redialing it forever
        would just spin the auth_rejects counter.
        """
        stream.close()
        self.telemetry["auth_rejects"] += 1
        where = (
            "accepted" if origin is None else "dialed %s:%s" % origin
        )
        obs.get_tracer().point("auth_reject", pid=pid, where=where)
        sys.stderr.write(
            "repro.scan.distributed: rejected unauthenticated peer "
            f"(pid {pid}, {where})\n"
        )
        proc = self._procs.pop(pid, None) if origin is None else None
        if proc is not None:
            # Mark it connected so _reap_unconnected never sees (and
            # charges) its exit, reap it, and queue a replacement.
            self._connected.add(pid)
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
            self._stderr_tail(pid)
            if pending:
                self._request_spawn()

    # -- dialing the address book --------------------------------------

    def _schedule_redial(self, addr) -> None:
        self._remote_due[addr] = self._clock() + _REDIAL_INTERVAL

    def _dial(self, addr, pending: deque, targets) -> bool:
        """One outbound connect to a pre-started --listen worker."""
        try:
            sock = socket.create_connection(addr, timeout=_DIAL_TIMEOUT)
        except OSError:
            # Not up (yet).  A worker that starts late joins through
            # the redial pump; dial failures never charge the budget.
            self._schedule_redial(addr)
            return False
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(self.timeout)
        return self._handshake(FrameStream(sock), addr, pending, targets)

    def _pump_dials(self, pending: deque, targets) -> bool:
        """Dial due address-book entries — the mid-wave join path.

        Returns True when any dial produced a live fleet member (the
        drive loop counts that as progress for its watchdog).
        """
        joined = False
        now = self._clock()
        due = [a for a, t in self._remote_due.items() if t <= now]
        for addr in due:
            del self._remote_due[addr]
            if addr in self._remote_live:
                continue
            joined = self._dial(addr, pending, targets) or joined
        return joined

    def _on_readable(self, worker: _Worker, pending: deque, targets,
                     results: dict) -> bool:
        """Handle one frame from a worker; True when a result landed."""
        try:
            message = worker.stream.recv()
        except (OSError, ValueError) as exc:
            # ValueError covers the whole malformed-frame family: an
            # oversized length prefix, a non-JSON body
            # (json.JSONDecodeError), and undecodable bytes
            # (UnicodeDecodeError).  One bad frame costs one worker,
            # never the run.
            self._drop_worker(
                worker, pending, f"sent an unreadable frame ({exc})"
            )
            return False
        if message is None:
            if worker.assigned is None and not pending:
                # Clean EOF from an idle worker during wind-down.
                if worker in self._live:
                    self._live.remove(worker)
                try:
                    self._selector.unregister(worker.stream.sock)
                except (KeyError, ValueError):
                    pass
                self._flush_worker_bytes(worker)
                worker.stream.close()
                return False
            self._drop_worker(worker, pending, "hung up")
            return False
        if isinstance(message, dict) and message.get("type") == "stats":
            # A worker's final session counters (normally sent in
            # answer to shutdown; tolerated any time it is idle).
            self._absorb_stats(worker.pid, message.get("stats"))
            return False
        if not isinstance(message, dict) or message.get("type") != "result":
            kind = (
                message.get("type") if isinstance(message, dict)
                else type(message).__name__
            )
            self._drop_worker(
                worker, pending, f"sent unexpected {kind!r}"
            )
            return False
        index = worker.assigned
        if index is None or index != message.get("index"):
            # Validate *before* clearing the assignment: a stale or
            # duplicate result frame must not erase the in-flight shard
            # — _drop_worker re-queues whatever is still assigned.
            self._drop_worker(
                worker, pending, "sent a result for an unassigned shard"
            )
            return False
        worker.assigned = None
        worker.fault_kind = None
        if index in results:
            # A speculative race this worker lost: the shard already
            # completed elsewhere.  Both results are byte-identical by
            # construction, so the duplicate is simply discarded and
            # the worker goes back to useful work.
            self.telemetry["duplicates_discarded"] += 1
            obs.get_tracer().point(
                "duplicate_discarded", index=index, pid=worker.pid
            )
            self._dispatch(worker, pending, targets)
            return False
        results[index] = ScanResult(
            probes_sent=int(message["probes_sent"]),
            responses=int(message["responses"]),
            blocked=int(message["blocked"]),
            batches=int(message["batches"]),
            protocol=message.get("protocol"),
        )
        seconds = message.get("seconds")
        obs.get_tracer().point(
            "shard_result",
            index=index,
            pid=worker.pid,
            probes_sent=int(message["probes_sent"]),
            seconds=seconds,
        )
        registry = obs.get_registry()
        if registry is not None and isinstance(seconds, (int, float)):
            registry.histogram("dist.shard_seconds").observe(seconds)
        self._absorb_stats(worker.pid, message.get("stats"))
        self._dispatch(worker, pending, targets)
        return True

    def _reap_unconnected(self, pending: deque) -> None:
        """Workers that died before saying hello never hit the selector."""
        for pid, proc in list(self._procs.items()):
            if pid not in self._connected and proc.poll() is not None:
                del self._procs[pid]
                self._stderr_tail(pid)
                self._governor.record_failure()
                self._fail(
                    f"worker pid {pid} exited with {proc.returncode} "
                    "before connecting"
                )
                if pending:
                    self._request_spawn()

    def _check_deadlines(self, pending: deque, targets) -> None:
        """Rescue shards held past their deadline by hung/slow workers."""
        deadline = self.shard_deadline
        if deadline is None:
            return
        now = self._clock()
        for worker in list(self._live):
            index = worker.assigned
            if index is None:
                continue
            action = deadline_action(
                now, worker.assigned_at, deadline, _HARD_KILL_FACTOR
            )
            if action == "ok":
                continue
            if action == "kill":
                # Far past the deadline the worker is presumed hung;
                # reclaim its process (its shard re-queues if nobody
                # else covered it).
                self.telemetry["deadline_kills"] += 1
                obs.get_tracer().point(
                    "deadline_kill", pid=worker.pid, index=index
                )
                self._drop_worker(
                    worker, pending,
                    f"held a shard {now - worker.assigned_at:.1f}s "
                    f"(deadline {deadline:.1f}s)",
                )
                continue
            if index in self._results or index in pending:
                continue
            live_copies = sum(
                1 for w in self._live if w.assigned == index
            )
            if live_copies >= _MAX_SPECULATION:
                continue
            # Speculative re-dispatch: race a second attempt on an idle
            # worker.  First completed result wins; the loser's frame
            # is discarded in _on_readable.  In-order release and every
            # merged byte are unchanged — shard results are pure.
            pending.appendleft(index)
            self.telemetry["speculative_requeues"] += 1
            obs.get_tracer().point(
                "speculative_redispatch", index=index
            )
            for idle in list(self._live):
                if not pending:
                    break
                self._dispatch(idle, pending, targets)
            if pending and not any(
                w.assigned is None for w in self._live
            ):
                self._request_spawn()

    # -- the drive loop ------------------------------------------------

    def run(self, targets):
        """Drain ``targets``; yield one ScanResult per shard, in order."""
        targets = self._targets = list(targets)
        if not targets:
            return
        geometry = targets[0]
        for t in targets[1:]:
            if (
                t.seed != geometry.seed
                or t.shards != geometry.shards
                or not np.array_equal(t.starts, geometry.starts)
                or not np.array_equal(t.ends, geometry.ends)
                or t.samples != geometry.samples
                or (t.hitlist is None) != (geometry.hitlist is None)
                or (
                    t.hitlist is not None
                    and not np.array_equal(t.hitlist, geometry.hitlist)
                )
            ):
                raise ValueError(
                    "distributed executor requires shards of one walk "
                    "(shared starts/ends/seed/shards geometry)"
                )
        values, batch_size, block_state, protocol = self.worker_args
        self._init_message = {
            "type": "init",
            "protocol": protocol,
            "batch_size": int(batch_size),
            "responsive": encode_array(values),
            "block_starts": (
                encode_array(block_state[0]) if block_state else None
            ),
            "block_ends": (
                encode_array(block_state[1]) if block_state else None
            ),
            "starts": encode_array(geometry.starts),
            "ends": encode_array(geometry.ends),
            "seed": int(geometry.seed),
            "shards": int(geometry.shards),
            # v6-only seeding; absent/None for v4 so old workers that
            # ignore unknown keys keep interoperating.
            "hitlist": (
                encode_array(geometry.hitlist)
                if geometry.hitlist is not None
                else None
            ),
            "samples": (
                int(geometry.samples)
                if geometry.samples is not None
                else None
            ),
        }
        self._max_failures = max(8, 2 * len(targets))
        pending = deque(range(len(targets)))
        results = self._results = {}
        next_emit = 0

        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(64)
        self._selector = selectors.DefaultSelector()
        self._selector.register(
            self._listener, selectors.EVENT_READ, None
        )
        book = self.address_book
        n_workers = self.workers or min(
            len(targets), (os.cpu_count() or 1) + len(book)
        )
        fleet = max(1, min(n_workers, len(targets)))
        self.telemetry["fleet_initial"] = fleet
        self.telemetry["remote_fleet"] = len(book)
        # Every book entry is dialed (and redialed) — a late-starting
        # remote joins mid-wave; local children fill out the rest of
        # the fleet.
        self._remote_due = {addr: 0.0 for addr in book}
        self._remote_live = set()
        for _ in range(max(0, fleet - len(book))):
            self._spawn(first_generation=True)
        self._pump_dials(pending, targets)

        last_progress = self._clock()
        try:
            while next_emit < len(targets):
                for key, _ in self._selector.select(timeout=0.2):
                    if key.data is None:
                        self._accept(pending, targets)
                        last_progress = self._clock()
                    elif self._on_readable(
                        key.data, pending, targets, results
                    ):
                        last_progress = self._clock()
                self._reap_unconnected(pending)
                self._check_deadlines(pending, targets)
                self._pump_spawns()
                if self._pump_dials(pending, targets):
                    last_progress = self._clock()
                while next_emit in results:
                    yield results.pop(next_emit)
                    next_emit += 1
                    last_progress = self._clock()
                if (
                    next_emit < len(targets)
                    and not self._live
                    and not self._procs
                    and not self._spawn_backlog
                    and not self._remote_due
                ):
                    # Nobody is working, nobody is starting, no spawn
                    # is owed, and no redial is pending: the fleet is
                    # gone.  (A fleet that is merely *waiting* on
                    # redials is rescued by the pump or, if the remotes
                    # never answer, by the no-progress watchdog.)
                    raise ExecutorFailure(
                        "distributed executor: too many worker failures"
                        " — no live workers remain and respawning "
                        + (
                            "is halted by the crash-loop detector"
                            if self._degraded
                            else "produced none"
                        )
                        + f" ({self.failures} failures; "
                        f"last: {self._last_failure})"
                        + self._stderr_report()
                    )
                if self._clock() - last_progress > self.timeout:
                    raise ExecutorFailure(
                        "distributed executor: no worker progress for "
                        f"{self.timeout:.0f}s "
                        f"(shard {next_emit}/{len(targets)})"
                    )
        finally:
            if self.telemetry["degraded"]:
                self.telemetry["survivors"] = len(self._live)
            self.close()
            # Always-on (independent of REPRO_OBS): the orchestrator
            # persists fleet accounting into progress.json, cumulative
            # across waves and resumes.
            obs.publish_executor_telemetry(self.telemetry)


@register_executor("distributed")
def distributed_executor(targets, worker_args, wrap_targets=None):
    """Coordinator + N local socket workers (the multi-node protocol)."""
    from repro.env import dist_workers

    if wrap_targets is not None:
        raise ValueError(
            "wrap_targets requires the serial executor: wrapper state "
            "cannot be shared across worker processes"
        )
    with Coordinator(worker_args, workers=dist_workers()) as coordinator:
        yield from coordinator.run(targets)


# ---------------------------------------------------------------------------
# Worker side (`python -m repro.scan.distributed --connect HOST:PORT`)
# ---------------------------------------------------------------------------


def _scream(text: str) -> None:
    """Announce an injected death on stderr — the coordinator banks a
    bounded tail of each dead worker's stderr for its failure report,
    exactly as a real crashing worker's traceback would be."""
    sys.stderr.write(f"repro.scan.distributed worker: {text}\n")
    sys.stderr.flush()


def _execute_fault_and_maybe_die(stream: FrameStream, kind: str,
                                 delay: float) -> None:
    """Run the pre-result half of an injected fault (may not return)."""
    if kind in ("crash", "hang", "oversize", "truncate"):
        _scream(f"injected fault {kind!r}")
    if kind == "crash":
        # Injected node loss: die without a result, mid-shard.
        os._exit(_EXIT_CRASH)
    elif kind == "hang":
        # Never answer; only the coordinator's shard deadline (or a
        # hard kill) rescues the shard.
        time.sleep(_HANG_SECONDS)
        os._exit(_EXIT_CRASH)
    elif kind == "stall":
        # Slow I/O: answer, but late — possibly after a speculative
        # duplicate already won the race.
        time.sleep(delay or _DEFAULT_STALL)
    elif kind == "oversize":
        # A length prefix past MAX_FRAME: recv() raises ValueError.
        stream.send_raw(_HEADER.pack(MAX_FRAME + 1))
        os._exit(_EXIT_OVERSIZE)
    elif kind == "truncate":
        # Promise a megabyte, deliver seven bytes, die: recv() sees a
        # mid-frame EOF.
        stream.send_raw(_HEADER.pack(1 << 20) + b"partial")
        os._exit(_EXIT_TRUNCATE)


def _session(
    stream: FrameStream,
    *,
    fail_shards=frozenset(),
    secret: str | None = None,
    auth_fail: bool = False,
    strict: bool = True,
) -> str:
    """Serve one coordinator over ``stream``; the remote-node loop.

    Sends hello, then drains frames until the session ends.  Returns
    how it ended: ``"shutdown"`` (clean drain), ``"eof"`` (the
    coordinator vanished), ``"denied"`` (authentication failed in
    either direction — a worker with a secret refuses to drain shards
    for a coordinator that cannot prove it), or ``"protocol"`` (the
    peer spoke something else; non-strict mode only — a strict spawned
    worker raises so its traceback lands in the coordinator's stderr
    tail).
    """
    # Imported lazily: this module is imported by repro.scan.executors
    # while repro.scan.sharded is still initialising, so a top-level
    # import would be circular.
    from repro.scan.sharded import IntervalTargets

    delay = float(os.environ.get(ENV_SHARD_DELAY, "0") or 0.0)
    nonce_w = os.urandom(16).hex()
    stream.send({"type": "hello", "pid": os.getpid(), "nonce": nonce_w})
    engine = truth = protocol = None
    geometry = None
    authed = False
    # Session counters shipped home for observability: cumulative in
    # every result frame, and once more in the final stats frame that
    # answers shutdown.  Purely additive wire payload — the coordinator
    # result path reads the counter fields it always has.
    stats = {
        "shards": 0,
        "probes_sent": 0,
        "responses": 0,
        "seconds": 0.0,
    }

    def _session_stats() -> dict:
        return dict(
            stats,
            bytes_in=stream.bytes_in,
            bytes_out=stream.bytes_out,
        )

    while True:
        message = stream.recv()
        if message is None:
            return "eof"
        kind_ = message.get("type") if isinstance(message, dict) else None
        if kind_ == "shutdown":
            try:
                stream.send(
                    {
                        "type": "stats",
                        "pid": os.getpid(),
                        "stats": _session_stats(),
                    }
                )
            except OSError:
                # The coordinator may already be gone; stats are
                # telemetry, never worth failing a clean shutdown over.
                pass
            return "shutdown"
        if kind_ == "challenge":
            if secret is None:
                # The coordinator demands auth this worker cannot
                # provide (and could not verify): refuse, don't guess.
                return "denied"
            nonce_c = str(message.get("nonce") or "")
            theirs = message.get("proof")
            expected = _auth_proof(
                secret, "coordinator", nonce_c, nonce_w
            )
            if not (
                isinstance(theirs, str)
                and hmac.compare_digest(theirs, expected)
            ):
                # Mutual auth: never drain shards for an impostor
                # coordinator.
                return "denied"
            proof = _auth_proof(secret, "worker", nonce_c, nonce_w)
            if auth_fail:
                # Injected sabotage (the auth_fail fault): present a
                # wrong proof so the coordinator's reject path runs.
                proof = "deadbeef" + proof[8:]
            stream.send({"type": "auth", "proof": proof})
            authed = True
        elif kind_ == "init":
            if secret is not None and not authed:
                # This worker requires auth; init without a challenge
                # means an unauthenticated coordinator.
                return "denied"
            block_state = None
            if message["block_starts"] is not None:
                block_state = (
                    decode_array(message["block_starts"]),
                    decode_array(message["block_ends"]),
                )
            engine, truth, protocol = build_worker(
                decode_array(message["responsive"]),
                message["batch_size"],
                block_state,
                message["protocol"],
            )
            geometry = (
                decode_array(message["starts"]),
                decode_array(message["ends"]),
                message["seed"],
                message["shards"],
                (
                    decode_array(message["hitlist"])
                    if message.get("hitlist") is not None
                    else None
                ),
                message.get("samples"),
            )
            # Handshake done: a listen worker's handshake timeout no
            # longer applies (the next shard may be a long time coming).
            stream.sock.settimeout(None)
        elif kind_ == "shard":
            if engine is None:
                if strict:
                    raise RuntimeError("shard received before init")
                return "protocol"
            shard = int(message["shard"])
            fault = message.get("fault") or {}
            kind = fault.get("kind")
            if delay:
                time.sleep(delay)
            if shard in fail_shards:
                # Legacy --fail-shards injection (same as kind=crash).
                _scream(f"injected fault 'crash' on shard {shard}")
                os._exit(_EXIT_CRASH)
            if kind == "corrupt":
                # A well-framed body that is not JSON: recv() raises
                # JSONDecodeError.  No result follows; the coordinator
                # drops this worker and its next recv sees a clean EOF.
                _scream("injected fault 'corrupt'")
                body = b"\x00\xffthis is not json"
                stream.send_raw(_HEADER.pack(len(body)) + body)
                continue
            if kind is not None:
                _execute_fault_and_maybe_die(
                    stream, kind, float(fault.get("delay") or 0.0)
                )
            starts, ends, seed, shards, hitlist, samples = geometry
            targets = IntervalTargets(
                (starts, ends),
                seed=seed,
                shard=shard,
                shards=shards,
                hitlist=hitlist,
                samples=samples,
            )
            began = time.monotonic()
            result = engine.run(targets, truth, protocol=protocol)
            seconds = time.monotonic() - began
            stats["shards"] += 1
            stats["probes_sent"] += result.probes_sent
            stats["responses"] += result.responses
            stats["seconds"] += seconds
            reply = json.dumps(
                {
                    "type": "result",
                    "index": message["index"],
                    "shard": shard,
                    "probes_sent": result.probes_sent,
                    "responses": result.responses,
                    "blocked": result.blocked,
                    "batches": result.batches,
                    "protocol": result.protocol,
                    "seconds": seconds,
                    "stats": _session_stats(),
                }
            ).encode()
            if kind == "mid_result":
                # Die halfway through the result frame: the shard's
                # work is done but the coordinator must still re-queue
                # it (the counters never arrived whole).
                _scream("injected fault 'mid_result'")
                frame = _HEADER.pack(len(reply)) + reply
                stream.send_raw(frame[: max(5, len(frame) // 2)])
                os._exit(_EXIT_MID_RESULT)
            stream.send_raw(_HEADER.pack(len(reply)) + reply)
        else:
            if strict:
                raise RuntimeError(f"unexpected message {kind_!r}")
            return "protocol"


def worker_main(host: str, port: int, fail_shards=frozenset(),
                auth_fail: bool = False, secret=_ENV) -> int:
    """Dial out to a coordinator, drain shards until shutdown/EOF."""
    stream = FrameStream(socket.create_connection((host, port)))
    try:
        outcome = _session(
            stream,
            fail_shards=fail_shards,
            secret=dist_secret() if secret is _ENV else secret,
            auth_fail=auth_fail,
        )
    finally:
        stream.close()
    if outcome == "denied" or (auth_fail and outcome == "eof"):
        # Rejected by (or refused to work for) the coordinator; a
        # distinct exit code so a fleet operator can tell auth failures
        # from crashes in `ps`.  The sabotaged-proof case surfaces as
        # an EOF — the coordinator hangs up on a bad proof.
        _scream("authentication failed")
        return _EXIT_AUTH
    return 0


def listen_main(
    host: str,
    port: int,
    *,
    fail_shards=frozenset(),
    auth_fail: bool = False,
    secret=_ENV,
    max_sessions: int | None = None,
    on_bound=None,
) -> int:
    """Serve coordinator sessions forever: the pre-started remote worker.

    Sessions are sequential: when one ends — clean shutdown, the
    coordinator dying mid-wave, a stray peer hanging up or talking
    garbage — the worker returns to ``accept`` and waits for the next.
    That is what lets a restarted coordinator re-dial its address book
    and resume from its checkpoint stream, and lets a worker started
    late join a wave already in flight.

    ``port`` 0 binds a free port; the bound address is announced on
    stdout (``repro.scan.distributed: listening on HOST:PORT``) and
    passed to ``on_bound(host, port)`` when given.  ``max_sessions``
    bounds the loop (for tests); ``None`` serves forever.
    """
    if secret is _ENV:
        secret = dist_secret()
    server = socket.socket()
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server.bind((host, port))
    server.listen(8)
    bound_host, bound_port = server.getsockname()[:2]
    if on_bound is not None:
        on_bound(bound_host, bound_port)
    print(
        f"repro.scan.distributed: listening on {bound_host}:{bound_port}",
        flush=True,
    )
    served = 0
    try:
        while max_sessions is None or served < max_sessions:
            sock, _ = server.accept()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # A fresh peer gets this long to finish the handshake; a
            # port scanner that connects and stalls must not wedge the
            # accept loop.  _session lifts the timeout once init lands.
            sock.settimeout(_HANDSHAKE_TIMEOUT)
            stream = FrameStream(sock)
            try:
                outcome = _session(
                    stream,
                    fail_shards=fail_shards,
                    secret=secret,
                    auth_fail=auth_fail,
                    strict=False,
                )
            except (OSError, ValueError) as exc:
                # A stray peer's garbage (or its vanishing mid-frame)
                # ends the session, never the worker.
                outcome = f"error ({exc})"
            finally:
                stream.close()
            served += 1
            _scream(f"session {served} ended: {outcome}")
    finally:
        server.close()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.scan.distributed",
        description="Distributed scan worker: dial out to a coordinator "
        "(--connect) or serve coordinator sessions (--listen).",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--connect", metavar="HOST:PORT",
        help="coordinator address to dial (spawned-worker mode)",
    )
    mode.add_argument(
        "--listen", metavar="HOST:PORT",
        help="pre-started remote worker: serve coordinator sessions in "
        "sequence; HOST:0 picks a free port, announced on stdout",
    )
    parser.add_argument(
        "--fail-shards", default="",
        help="test-only: die when first asked for these shard indices",
    )
    parser.add_argument(
        "--die-at-spawn", action="store_true",
        help="test-only: exit immediately (an injected crash-looping "
        "spawn; see repro.scan.faults)",
    )
    parser.add_argument(
        "--auth-fail", action="store_true",
        help="test-only: present a sabotaged HMAC proof (the auth_fail "
        "fault; see repro.scan.faults)",
    )
    args = parser.parse_args(argv)
    if args.die_at_spawn:
        _scream("injected fault 'spawn_crash'")
        os._exit(_EXIT_SPAWN)
    addr = args.connect or args.listen
    host, _, port = addr.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"address must be HOST:PORT, got {addr!r}")
    fail = _parse_fail_shards(args.fail_shards)
    if args.listen:
        return listen_main(
            host, int(port), fail_shards=fail, auth_fail=args.auth_fail
        )
    return worker_main(
        host, int(port), fail_shards=fail, auth_fail=args.auth_fail
    )


if __name__ == "__main__":
    sys.exit(main())
