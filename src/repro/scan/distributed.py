"""Distributed shard execution: a coordinator driving socket workers.

This is the multi-node seam: the coordinator serializes
:class:`~repro.scan.sharded.IntervalTargets` shard descriptions onto a
work queue and drives ``N`` workers over a small wire protocol —
length-prefixed JSON frames over TCP, with ``int64`` arrays carried as
base64 ``tobytes`` payloads.  The workers here are local child
processes (``python -m repro.scan.distributed --connect HOST:PORT``),
but nothing in the protocol is process-local: a worker on another
machine speaking the same five message types would slot straight in.

Protocol (all frames are ``>I``-length-prefixed UTF-8 JSON):

- ``hello``    worker → coordinator: ``{"type": "hello", "pid": ...}``
- ``init``     coordinator → worker: responsive set, blocklist, engine
  batch size, protocol, and the shared shard geometry
  (``starts``/``ends``/``seed``/``shards``) — sent once per worker.
- ``shard``    coordinator → worker: ``{"type": "shard", "shard": i}``
  — drain the ``i``-th sub-walk of the init geometry.
- ``result``   worker → coordinator: the shard's ``ScanResult`` counters.
- ``shutdown`` coordinator → worker: drain done, exit cleanly.

Determinism and failure semantics: every shard's ``ScanResult`` is a
pure function of the shard description, so *which* worker drains a
shard (or how often it is retried) never changes the outcome.  The
coordinator re-queues the outstanding shard of any worker that dies,
spawns a replacement, and releases results strictly in shard order —
so the orchestrator's ``on_shard`` checkpoint stream (and therefore
kill-and-resume byte-identity) is preserved across worker failures.

Knobs: ``REPRO_DIST_WORKERS`` (worker count; default one per shard
capped at the CPU count).  Test-only fault injection:
``REPRO_DIST_FAIL_SHARDS`` (comma-separated shard indices whose first
assigned worker dies mid-shard) and ``REPRO_DIST_SHARD_DELAY``
(seconds each worker sleeps per shard, to make smoke-test kill windows
deterministic); neither changes any result.
"""

from __future__ import annotations

import argparse
import base64
import json
import os
import selectors
import socket
import struct
import subprocess
import sys
import time
from collections import deque
from pathlib import Path

import numpy as np

from repro.scan.engine import ScanResult
from repro.scan.executors import build_worker, register_executor

__all__ = [
    "ENV_FAIL_SHARDS",
    "ENV_SHARD_DELAY",
    "FrameStream",
    "Coordinator",
    "distributed_executor",
    "worker_main",
    "main",
]

ENV_FAIL_SHARDS = "REPRO_DIST_FAIL_SHARDS"
ENV_SHARD_DELAY = "REPRO_DIST_SHARD_DELAY"

_HEADER = struct.Struct(">I")
#: Frame-size sanity cap: a corrupt length prefix must not allocate GBs.
MAX_FRAME = 1 << 30


# ---------------------------------------------------------------------------
# Wire encoding
# ---------------------------------------------------------------------------


def encode_array(arr) -> dict:
    """A JSON-safe ``{"dtype", "data"}`` carrier for a 1-D array."""
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": str(arr.dtype),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_array(obj) -> np.ndarray:
    return np.frombuffer(
        base64.b64decode(obj["data"]), dtype=np.dtype(obj["dtype"])
    )


class FrameStream:
    """Length-prefixed JSON frames over a blocking socket."""

    def __init__(self, sock: socket.socket):
        self.sock = sock

    def send(self, message: dict) -> None:
        payload = json.dumps(message).encode()
        self.sock.sendall(_HEADER.pack(len(payload)) + payload)

    def recv(self) -> dict | None:
        """The next frame, or ``None`` on a clean EOF."""
        header = self._read_exact(_HEADER.size)
        if header is None:
            return None
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME:
            raise ValueError(f"frame of {length} bytes exceeds MAX_FRAME")
        body = self._read_exact(length)
        if body is None:
            return None
        return json.loads(body)

    def _read_exact(self, n: int) -> bytes | None:
        chunks = []
        while n > 0:
            chunk = self.sock.recv(n)
            if not chunk:
                return None
            chunks.append(chunk)
            n -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


def _parse_fail_shards(raw: str | None) -> frozenset:
    if not raw:
        return frozenset()
    return frozenset(int(part) for part in raw.split(",") if part.strip())


class _Worker:
    """One connected worker: its stream, process, and assigned shard."""

    __slots__ = ("stream", "pid", "assigned")

    def __init__(self, stream: FrameStream, pid: int):
        self.stream = stream
        self.pid = pid
        self.assigned = None  # local queue index, or None when idle


class Coordinator:
    """Drive N socket workers over a shard work queue, in-order results.

    ``worker_args`` is the ``(responsive_values, batch_size,
    block_state, protocol)`` tuple shared by every executor.
    ``workers=None`` spawns one worker per shard, capped at the CPU
    count.  ``fail_shards`` (default: ``$REPRO_DIST_FAIL_SHARDS``)
    injects one worker death per listed shard index — replacements are
    spawned clean, so the shard is re-queued and drained successfully;
    ``fail_every_spawn=True`` arms replacements too, which exhausts the
    failure budget and surfaces the RuntimeError path.
    """

    def __init__(
        self,
        worker_args,
        workers: int | None = None,
        fail_shards=None,
        fail_every_spawn: bool = False,
        timeout: float = 120.0,
    ):
        self.worker_args = worker_args
        self.workers = workers
        self.fail_shards = (
            frozenset(fail_shards)
            if fail_shards is not None
            else _parse_fail_shards(os.environ.get(ENV_FAIL_SHARDS))
        )
        self.fail_every_spawn = fail_every_spawn
        self.timeout = timeout
        self.failures = 0
        self._listener = None
        self._selector = None
        self._procs: dict[int, subprocess.Popen] = {}
        self._connected: set[int] = set()
        self._live: list[_Worker] = []
        self._init_message = None
        self._targets = ()

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Tear everything down; safe to call twice."""
        for worker in self._live:
            try:
                worker.stream.send({"type": "shutdown"})
            except OSError:
                pass
            worker.stream.close()
        self._live = []
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for proc in self._procs.values():
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._procs = {}
        self._connected = set()

    # -- spawning ------------------------------------------------------

    def _spawn(self, first_generation: bool) -> None:
        """Launch one worker process pointed at the coordinator socket."""
        port = self._listener.getsockname()[1]
        argv = [
            sys.executable,
            "-m",
            "repro.scan.distributed",
            "--connect",
            f"127.0.0.1:{port}",
        ]
        if self.fail_shards and (first_generation or self.fail_every_spawn):
            argv += [
                "--fail-shards",
                ",".join(str(s) for s in sorted(self.fail_shards)),
            ]
        env = dict(os.environ)
        # Make the repro package importable in the child regardless of
        # how this process found it (installed, PYTHONPATH, or src/).
        pkg_root = str(Path(__file__).resolve().parents[2])
        path = env.get("PYTHONPATH", "")
        if pkg_root not in path.split(os.pathsep):
            env["PYTHONPATH"] = (
                pkg_root + (os.pathsep + path if path else "")
            )
        proc = subprocess.Popen(
            argv, env=env, stdout=subprocess.DEVNULL
        )
        self._procs[proc.pid] = proc

    # -- event handling ------------------------------------------------

    def _fail(self, message: str) -> None:
        self.failures += 1
        if self.failures > self._max_failures:
            raise RuntimeError(
                f"distributed executor: too many worker failures "
                f"({self.failures}); last: {message}"
            )

    def _drop_worker(self, worker: _Worker, pending: deque,
                     reason: str) -> None:
        """A worker died: re-queue its shard and count the failure."""
        if worker in self._live:
            self._live.remove(worker)
        try:
            self._selector.unregister(worker.stream.sock)
        except (KeyError, ValueError):
            pass
        worker.stream.close()
        proc = self._procs.pop(worker.pid, None)
        if proc is not None:
            # Usually the process is already dead (that's why the drop
            # happened); a protocol-violating survivor is terminated so
            # the reap below cannot block the event loop.
            if proc.poll() is None:
                proc.terminate()
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        requeued = worker.assigned
        if requeued is not None:
            # Front of the queue: the lost shard is the next dispatch,
            # keeping the in-order release window as small as possible.
            pending.appendleft(requeued)
            worker.assigned = None
        self._fail(
            f"worker pid {worker.pid} {reason}"
            + (f" while draining queue slot {requeued}" if requeued
               is not None else "")
        )
        # An already-idle survivor picks the re-queued shard up at once;
        # a replacement is only spawned for work nobody can absorb.
        for idle in list(self._live):
            if not pending:
                break
            self._dispatch(idle, pending, self._targets)
        if pending:
            self._spawn(first_generation=False)

    def _dispatch(self, worker: _Worker, pending: deque, targets) -> None:
        if worker.assigned is not None or not pending:
            return
        index = pending.popleft()
        try:
            worker.stream.send(
                {"type": "shard", "shard": int(targets[index].shard),
                 "index": index}
            )
            worker.assigned = index
        except OSError:
            pending.appendleft(index)
            self._drop_worker(worker, pending, "died at dispatch")

    def _accept(self, pending: deque, targets) -> None:
        sock, _ = self._listener.accept()
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Every read/write on a worker socket is bounded: a peer that
        # connects and then stalls (mid-hello, mid-frame, or refusing
        # to drain the init payload) times out and is handled as a
        # failure instead of wedging the event loop past the watchdog.
        sock.settimeout(self.timeout)
        stream = FrameStream(sock)
        try:
            hello = stream.recv()
        except OSError:
            hello = None
        if hello is None or hello.get("type") != "hello":
            stream.close()
            self._fail("worker connected without a hello")
            if pending:
                self._spawn(first_generation=False)
            return
        worker = _Worker(stream, int(hello.get("pid", -1)))
        self._connected.add(worker.pid)
        try:
            stream.send(self._init_message)
        except OSError:
            # The pid is already marked connected, so _reap_unconnected
            # will never replace this worker — do it here.
            stream.close()
            self._fail(f"worker pid {worker.pid} died at init")
            if pending:
                self._spawn(first_generation=False)
            return
        self._live.append(worker)
        self._selector.register(sock, selectors.EVENT_READ, worker)
        self._dispatch(worker, pending, targets)

    def _on_readable(self, worker: _Worker, pending: deque, targets,
                     results: dict) -> bool:
        """Handle one frame from a worker; True when a result landed."""
        try:
            message = worker.stream.recv()
        except (OSError, ValueError) as exc:
            self._drop_worker(worker, pending, f"errored ({exc})")
            return False
        if message is None:
            if worker.assigned is None and not pending:
                # Clean EOF from an idle worker during wind-down.
                if worker in self._live:
                    self._live.remove(worker)
                try:
                    self._selector.unregister(worker.stream.sock)
                except (KeyError, ValueError):
                    pass
                worker.stream.close()
                return False
            self._drop_worker(worker, pending, "hung up")
            return False
        if message.get("type") != "result":
            self._drop_worker(
                worker, pending,
                f"sent unexpected {message.get('type')!r}",
            )
            return False
        index = worker.assigned
        if index is None or index != message.get("index"):
            # Validate *before* clearing the assignment: a stale or
            # duplicate result frame must not erase the in-flight shard
            # — _drop_worker re-queues whatever is still assigned.
            self._drop_worker(
                worker, pending, "sent a result for an unassigned shard"
            )
            return False
        worker.assigned = None
        results[index] = ScanResult(
            probes_sent=int(message["probes_sent"]),
            responses=int(message["responses"]),
            blocked=int(message["blocked"]),
            batches=int(message["batches"]),
            protocol=message.get("protocol"),
        )
        self._dispatch(worker, pending, targets)
        return True

    def _reap_unconnected(self, pending: deque) -> None:
        """Workers that died before saying hello never hit the selector."""
        for pid, proc in list(self._procs.items()):
            if pid not in self._connected and proc.poll() is not None:
                del self._procs[pid]
                self._fail(
                    f"worker pid {pid} exited with {proc.returncode} "
                    "before connecting"
                )
                if pending:
                    self._spawn(first_generation=False)

    # -- the drive loop ------------------------------------------------

    def run(self, targets):
        """Drain ``targets``; yield one ScanResult per shard, in order."""
        targets = self._targets = list(targets)
        if not targets:
            return
        geometry = targets[0]
        for t in targets[1:]:
            if (
                t.seed != geometry.seed
                or t.shards != geometry.shards
                or not np.array_equal(t.starts, geometry.starts)
                or not np.array_equal(t.ends, geometry.ends)
            ):
                raise ValueError(
                    "distributed executor requires shards of one walk "
                    "(shared starts/ends/seed/shards geometry)"
                )
        values, batch_size, block_state, protocol = self.worker_args
        self._init_message = {
            "type": "init",
            "protocol": protocol,
            "batch_size": int(batch_size),
            "responsive": encode_array(values),
            "block_starts": (
                encode_array(block_state[0]) if block_state else None
            ),
            "block_ends": (
                encode_array(block_state[1]) if block_state else None
            ),
            "starts": encode_array(geometry.starts),
            "ends": encode_array(geometry.ends),
            "seed": int(geometry.seed),
            "shards": int(geometry.shards),
        }
        self._max_failures = max(8, 2 * len(targets))
        pending = deque(range(len(targets)))
        results: dict[int, ScanResult] = {}
        next_emit = 0

        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(64)
        self._selector = selectors.DefaultSelector()
        self._selector.register(
            self._listener, selectors.EVENT_READ, None
        )
        n_workers = self.workers or min(
            len(targets), os.cpu_count() or 1
        )
        for _ in range(max(1, min(n_workers, len(targets)))):
            self._spawn(first_generation=True)

        last_progress = time.monotonic()
        try:
            while next_emit < len(targets):
                for key, _ in self._selector.select(timeout=0.2):
                    if key.data is None:
                        self._accept(pending, targets)
                        last_progress = time.monotonic()
                    elif self._on_readable(
                        key.data, pending, targets, results
                    ):
                        last_progress = time.monotonic()
                self._reap_unconnected(pending)
                while next_emit in results:
                    yield results.pop(next_emit)
                    next_emit += 1
                    last_progress = time.monotonic()
                if time.monotonic() - last_progress > self.timeout:
                    raise RuntimeError(
                        "distributed executor: no worker progress for "
                        f"{self.timeout:.0f}s "
                        f"(shard {next_emit}/{len(targets)})"
                    )
        finally:
            self.close()


@register_executor("distributed")
def distributed_executor(targets, worker_args, wrap_targets=None):
    """Coordinator + N local socket workers (the multi-node protocol)."""
    from repro.env import dist_workers

    if wrap_targets is not None:
        raise ValueError(
            "wrap_targets requires the serial executor: wrapper state "
            "cannot be shared across worker processes"
        )
    with Coordinator(worker_args, workers=dist_workers()) as coordinator:
        yield from coordinator.run(targets)


# ---------------------------------------------------------------------------
# Worker side (`python -m repro.scan.distributed --connect HOST:PORT`)
# ---------------------------------------------------------------------------


def worker_main(host: str, port: int, fail_shards=frozenset()) -> int:
    """Connect, drain shards until shutdown/EOF.  The remote-node loop."""
    # Imported lazily: this module is imported by repro.scan.executors
    # while repro.scan.sharded is still initialising, so a top-level
    # import would be circular.
    from repro.scan.sharded import IntervalTargets

    delay = float(os.environ.get(ENV_SHARD_DELAY, "0") or 0.0)
    stream = FrameStream(socket.create_connection((host, port)))
    stream.send({"type": "hello", "pid": os.getpid()})
    engine = truth = protocol = None
    geometry = None
    while True:
        message = stream.recv()
        if message is None or message["type"] == "shutdown":
            stream.close()
            return 0
        if message["type"] == "init":
            block_state = None
            if message["block_starts"] is not None:
                block_state = (
                    decode_array(message["block_starts"]),
                    decode_array(message["block_ends"]),
                )
            engine, truth, protocol = build_worker(
                decode_array(message["responsive"]),
                message["batch_size"],
                block_state,
                message["protocol"],
            )
            geometry = (
                decode_array(message["starts"]),
                decode_array(message["ends"]),
                message["seed"],
                message["shards"],
            )
        elif message["type"] == "shard":
            if engine is None:
                raise RuntimeError("shard received before init")
            shard = int(message["shard"])
            if delay:
                time.sleep(delay)
            if shard in fail_shards:
                # Injected node loss: die without a result, mid-shard.
                os._exit(17)
            starts, ends, seed, shards = geometry
            targets = IntervalTargets(
                (starts, ends), seed=seed, shard=shard, shards=shards
            )
            result = engine.run(targets, truth, protocol=protocol)
            stream.send(
                {
                    "type": "result",
                    "index": message["index"],
                    "shard": shard,
                    "probes_sent": result.probes_sent,
                    "responses": result.responses,
                    "blocked": result.blocked,
                    "batches": result.batches,
                    "protocol": result.protocol,
                }
            )
        else:
            raise RuntimeError(f"unexpected message {message['type']!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.scan.distributed",
        description="Distributed scan worker: connect to a coordinator "
        "and drain shards.",
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address",
    )
    parser.add_argument(
        "--fail-shards", default="",
        help="test-only: die when first asked for these shard indices",
    )
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"--connect must be HOST:PORT, got {args.connect!r}")
    return worker_main(
        host, int(port), _parse_fail_shards(args.fail_shards)
    )


if __name__ == "__main__":
    sys.exit(main())
