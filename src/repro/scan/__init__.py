"""Scan layer: the zmap-class probe-generation and classification substrate."""
