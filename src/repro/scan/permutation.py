"""Cyclic-group probe-order permutations (the zmap technique).

A scan must visit every target address exactly once in an order that
looks random and needs O(1) state.  Like zmap, we iterate the
multiplicative group of integers modulo a prime ``p > n``: the sequence
``start * g^k (mod p)`` for a generator ``g`` visits ``1..p-1`` exactly
once; values above ``n`` are skipped and the rest are shifted down to
``0..n-1``.

Batches are produced array-at-a-time: the powers ``g^0..g^{B-1}`` are
built once per ``(prime, generator, size)`` — and memoized across
walks, resumes, and shard workers — and every batch is a single modular
multiply of that table by the cursor element into a preallocated
buffer; no Python-level loop per address, no per-batch allocation
beyond the yielded array itself.
"""

from __future__ import annotations

import math
import random
from functools import lru_cache

import numpy as np

__all__ = ["CyclicPermutation", "PermutationShard"]

_INT64_SAFE_MOD = 1 << 31  # (p-1)^2 still fits in int64 below this
# Above this prime the 16-bit-split _mulmod partial sums (< p * 2^17)
# would no longer fit in int64; the walk switches to exact Python-int
# arithmetic (object arrays), which is what lets one cyclic walk cover
# a /32..' /64 IPv6 prefix (n up to 2^96) without overflow.
_BIGINT_MOD = 1 << 45

# Witnesses proving Miller-Rabin deterministic for n < 3.317e24.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_MR_PROVEN_BOUND = 3_317_044_064_679_887_385_961_981
# Beyond the proven bound (128-bit moduli) extra witnesses push the
# error probability below 4^-28 — negligible against any hardware fault.
_MR_EXTRA_WITNESSES = (41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89)


def _is_prime(n: int) -> bool:
    """Miller-Rabin: deterministic for n < 3.3e24, near-certain above."""
    if n < 2:
        return False
    for p in _MR_WITNESSES:
        if n % p == 0:
            return n == p
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    witnesses = _MR_WITNESSES
    if n >= _MR_PROVEN_BOUND:
        witnesses = _MR_WITNESSES + _MR_EXTRA_WITNESSES
    for a in witnesses:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


#: Trial-division ceiling: factors below this are stripped the cheap
#: way; anything left is handed to Pollard rho.  2^20 keeps the trial
#: loop under ~1M iterations while making rho's job easy (every
#: surviving factor is > 2^20, so a composite survivor is > 2^40).
_TRIAL_LIMIT = 1 << 20


def _rho_split(n: int) -> int:
    """A nontrivial factor of composite odd ``n`` (Brent's rho).

    Deterministic: the polynomial offset ``c`` sweeps 1, 2, 3, ... so
    the same ``n`` always factors the same way.  The gcd is batched
    over 128-step products — one gcd per batch instead of per step.
    """
    for c in range(1, 1 << 10):
        y, m = 2, 128
        g = r = q = 1
        while g == 1:
            x = y
            for _ in range(r):
                y = (y * y + c) % n
            k = 0
            while k < r and g == 1:
                ys = y
                for _ in range(min(m, r - k)):
                    y = (y * y + c) % n
                    q = q * abs(x - y) % n
                g = math.gcd(q, n)
                k += m
            r *= 2
        if g == n:
            # The batch overshot: replay one step at a time.
            g = 1
            while g == 1:
                ys = (ys * ys + c) % n
                g = math.gcd(abs(x - ys), n)
        if g != n:
            return g
    raise ArithmeticError(f"rho failed to split {n}")


def _prime_factors(n: int):
    """Distinct prime factors; Pollard rho beyond the trial range.

    Group-parameter search needs the factors of ``p - 1`` to test for
    generators; with 128-bit moduli (v6 prefix walks) trial division
    alone would run to sqrt(p) ~ 2^48, so composite survivors are
    split recursively with Brent's rho instead.
    """
    factors = set()
    d = 2
    while d * d <= n and d <= _TRIAL_LIMIT:
        while n % d == 0:
            factors.add(d)
            n //= d
        d += 1 if d == 2 else 2
    if n == 1:
        return factors
    pending = [n]
    while pending:
        m = pending.pop()
        if _is_prime(m):
            factors.add(m)
            continue
        split = _rho_split(m)
        pending.extend((split, m // split))
    return factors


@lru_cache(maxsize=256)
def _group_params(n: int) -> tuple[int, int]:
    """Smallest prime p > n and a generator of (Z/pZ)*."""
    p = n + 1
    while not _is_prime(p):
        p += 1
    if p == 2:
        return 2, 1
    order_factors = _prime_factors(p - 1)
    g = 2
    while any(pow(g, (p - 1) // q, p) == 1 for q in order_factors):
        g += 1
    return p, g


def _mulmod(values, scalar: int, p: int, out=None, tmp=None):
    """``values * scalar % p`` without int64 overflow, vectorized.

    ``out`` (and, on the big-modulus path, ``tmp``) are optional
    preallocated result/scratch buffers of the same shape as
    ``values``; ``values`` itself is never written.  Returns ``out``.
    """
    if out is None:
        out = np.empty_like(values)
    if p <= _INT64_SAFE_MOD:
        np.multiply(values, scalar, out=out)
        out %= p
        return out
    # Split the scalar into 16-bit halves so partial products stay < 2^49.
    hi, lo = divmod(scalar % p, 1 << 16)
    np.multiply(values, hi, out=out)
    out %= p
    out <<= 16
    if tmp is None:
        tmp = np.empty_like(values)
    np.multiply(values, lo, out=tmp)
    out += tmp
    out %= p
    return out


@lru_cache(maxsize=32)
def _power_table_big(p: int, g: int, m: int) -> tuple:
    """``(g^0, ..., g^{m-1}) mod p`` as Python ints (big-modulus walks)."""
    table = [1] * m
    for i in range(1, m):
        table[i] = table[i - 1] * g % p
    return tuple(table)


@lru_cache(maxsize=128)
def _power_table(p: int, g: int, m: int) -> np.ndarray:
    """Read-only ``[g^0, g^1, ..., g^{m-1}] mod p`` by vectorized doubling.

    Memoized per ``(prime, generator, size)``: every ``batches()`` call
    over the same walk — each campaign resume, each of K shard workers
    draining the same shard geometry — reuses one table instead of
    rebuilding it by repeated concatenation.
    """
    table = np.empty(m, dtype=np.int64)
    table[0] = 1
    filled = 1
    while filled < m:
        span = min(filled, m - filled)
        scalar = int(table[filled - 1]) * g % p  # g^filled
        _mulmod(table[:span], scalar, p, out=table[filled:filled + span])
        filled += span
    table.setflags(write=False)
    return table


class CyclicPermutation:
    """A full-cycle pseudorandom permutation of ``range(n)``.

    ``seed`` selects both the group generator (a random coprime power of
    the canonical one) and the starting element, so distinct seeds give
    distinct probe orders over the same cyclic group.
    """

    def __init__(self, n: int, seed: int = 0):
        if n < 1:
            raise ValueError("permutation size must be >= 1")
        self.n = int(n)
        self.seed = seed
        p, g = _group_params(self.n)
        self.prime = p
        rng = random.Random(seed)
        if p == 2:
            self._gen, self._start = 1, 1
        else:
            while True:
                k = rng.randrange(1, p - 1)
                if math.gcd(k, p - 1) == 1:
                    break
            self._gen = pow(g, k, p)
            self._start = rng.randrange(1, p)

    def batches(self, batch_size: int = 1 << 16):
        """Yield int64 arrays jointly covering 0..n-1 exactly once."""
        return self.shard(0, 1).batches(batch_size)

    def shard(self, index: int, count: int) -> "PermutationShard":
        """The ``index``-th of ``count`` interleaved sub-walks.

        Shard ``i`` visits the sequence elements at positions
        ``i, i+count, i+2*count, ...`` of the full cycle — the zmap
        sharding construction: every shard is itself a geometric walk
        (generator ``g^count``, start ``start * g^i``) and needs no
        state beyond its own cursor, and the ``count`` shards jointly
        cover ``0..n-1`` exactly once.
        """
        return PermutationShard(self, index, count)

    def __iter__(self):
        # Yield Python ints (``tolist`` per batch): scalar iteration is
        # the JSON/telemetry boundary where ``np.int64`` leaks bite, and
        # per-batch tolist is the faster variant anyway (see
        # bench_scan_engine.py::test_iter_* for the measured trade-off).
        for batch in self.batches():
            yield from batch.tolist()


class PermutationShard:
    """One strided sub-walk of a :class:`CyclicPermutation` full cycle."""

    __slots__ = ("n", "prime", "index", "count", "_gen", "_start", "_total")

    def __init__(self, permutation: CyclicPermutation, index: int, count: int):
        if count < 1 or not 0 <= index < count:
            raise ValueError("need 0 <= index < count")
        self.n = permutation.n
        self.prime = p = permutation.prime
        self.index = index
        self.count = count
        self._gen = pow(permutation._gen, count, p)
        self._start = permutation._start * pow(permutation._gen, index, p) % p
        # Group positions j in [0, p-1) with j == index (mod count).
        self._total = max(0, -(-(p - 1 - index) // count))

    def batches(self, batch_size: int = 1 << 16):
        """Yield int64 arrays covering this shard's slice of 0..n-1.

        Every yielded array is freshly allocated (callers may keep or
        mutate it); the modular walk itself runs in two reused scratch
        buffers, one multiply per batch.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        p, n = self.prime, self.n
        total = self._total  # group elements to walk
        if total == 0:
            return
        m = min(batch_size, total)
        if p > _BIGINT_MOD:
            yield from self._batches_bigint(m)
            return
        powers = _power_table(p, self._gen, m)
        step = pow(self._gen, m, p)
        cursor = self._start
        walked = 0
        buf = np.empty(m, dtype=np.int64)
        tmp = np.empty(m, dtype=np.int64) if p > _INT64_SAFE_MOD else None
        # When p - 1 == n every group element 1..p-1 maps to a target,
        # so the `values <= n` filter pass is pure overhead — skip it.
        dense = p - 1 == n
        while walked < total:
            k = min(m, total - walked)
            values = _mulmod(
                powers[:k],
                cursor,
                p,
                out=buf[:k],
                tmp=None if tmp is None else tmp[:k],
            )
            cursor = cursor * step % p
            walked += k
            if dense:
                yield values - 1
            else:
                kept = values[values <= n]
                if kept.size:
                    kept -= 1
                    yield kept

    def _batches_bigint(self, m: int):
        """Exact Python-int walk for primes beyond the int64-safe range.

        Yields ``object``-dtype arrays of Python ints — the same cyclic
        construction (generator ``g^count``, start ``start * g^i``),
        just with arbitrary-precision arithmetic so ``n`` may reach the
        2^96 addresses of an announced /32 IPv6 prefix.
        """
        p, n = self.prime, self.n
        total = self._total
        powers = _power_table_big(p, self._gen, min(m, total))
        step = pow(self._gen, len(powers), p)
        cursor = self._start
        walked = 0
        while walked < total:
            k = min(len(powers), total - walked)
            kept = [
                v - 1
                for pw in powers[:k]
                if (v := cursor * pw % p) <= n
            ]
            cursor = cursor * step % p
            walked += k
            if kept:
                out = np.empty(len(kept), dtype=object)
                out[:] = kept
                yield out
