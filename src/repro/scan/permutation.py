"""Cyclic-group probe-order permutations (the zmap technique).

A scan must visit every target address exactly once in an order that
looks random and needs O(1) state.  Like zmap, we iterate the
multiplicative group of integers modulo a prime ``p > n``: the sequence
``start * g^k (mod p)`` for a generator ``g`` visits ``1..p-1`` exactly
once; values above ``n`` are skipped and the rest are shifted down to
``0..n-1``.

Batches are produced array-at-a-time: the powers ``g^0..g^{B-1}`` are
built once by vectorized doubling, and every batch is a single modular
multiply of that table by the cursor element — no Python-level loop per
address.
"""

from __future__ import annotations

import math
import random
from functools import lru_cache

import numpy as np

__all__ = ["CyclicPermutation", "PermutationShard"]

_INT64_SAFE_MOD = 1 << 31  # (p-1)^2 still fits in int64 below this


def _is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for n < 3.3e24 (fixed witness set)."""
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _prime_factors(n: int):
    factors = set()
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.add(d)
            n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.add(n)
    return factors


@lru_cache(maxsize=256)
def _group_params(n: int) -> tuple[int, int]:
    """Smallest prime p > n and a generator of (Z/pZ)*."""
    p = n + 1
    while not _is_prime(p):
        p += 1
    if p == 2:
        return 2, 1
    order_factors = _prime_factors(p - 1)
    g = 2
    while any(pow(g, (p - 1) // q, p) == 1 for q in order_factors):
        g += 1
    return p, g


def _mulmod(values: np.ndarray, scalar: int, p: int) -> np.ndarray:
    """``values * scalar % p`` without int64 overflow, vectorized."""
    if p <= _INT64_SAFE_MOD:
        return values * scalar % p
    # Split the scalar into 16-bit halves so partial products stay < 2^49.
    hi, lo = divmod(scalar % p, 1 << 16)
    out = (values * hi % p) << 16
    out += values * lo
    out %= p
    return out


class CyclicPermutation:
    """A full-cycle pseudorandom permutation of ``range(n)``.

    ``seed`` selects both the group generator (a random coprime power of
    the canonical one) and the starting element, so distinct seeds give
    distinct probe orders over the same cyclic group.
    """

    def __init__(self, n: int, seed: int = 0):
        if n < 1:
            raise ValueError("permutation size must be >= 1")
        self.n = int(n)
        self.seed = seed
        p, g = _group_params(self.n)
        self.prime = p
        rng = random.Random(seed)
        if p == 2:
            self._gen, self._start = 1, 1
        else:
            while True:
                k = rng.randrange(1, p - 1)
                if math.gcd(k, p - 1) == 1:
                    break
            self._gen = pow(g, k, p)
            self._start = rng.randrange(1, p)

    def batches(self, batch_size: int = 1 << 16):
        """Yield int64 arrays jointly covering 0..n-1 exactly once."""
        return self.shard(0, 1).batches(batch_size)

    def shard(self, index: int, count: int) -> "PermutationShard":
        """The ``index``-th of ``count`` interleaved sub-walks.

        Shard ``i`` visits the sequence elements at positions
        ``i, i+count, i+2*count, ...`` of the full cycle — the zmap
        sharding construction: every shard is itself a geometric walk
        (generator ``g^count``, start ``start * g^i``) and needs no
        state beyond its own cursor, and the ``count`` shards jointly
        cover ``0..n-1`` exactly once.
        """
        return PermutationShard(self, index, count)

    def __iter__(self):
        for batch in self.batches():
            yield from batch.tolist()


class PermutationShard:
    """One strided sub-walk of a :class:`CyclicPermutation` full cycle."""

    __slots__ = ("n", "prime", "index", "count", "_gen", "_start", "_total")

    def __init__(self, permutation: CyclicPermutation, index: int, count: int):
        if count < 1 or not 0 <= index < count:
            raise ValueError("need 0 <= index < count")
        self.n = permutation.n
        self.prime = p = permutation.prime
        self.index = index
        self.count = count
        self._gen = pow(permutation._gen, count, p)
        self._start = permutation._start * pow(permutation._gen, index, p) % p
        # Group positions j in [0, p-1) with j == index (mod count).
        self._total = max(0, -(-(p - 1 - index) // count))

    def _powers(self, m: int) -> np.ndarray:
        """``[g^0, g^1, ..., g^{m-1}] mod p`` by vectorized doubling."""
        p, g = self.prime, self._gen
        table = np.ones(1, dtype=np.int64)
        while len(table) < m:
            scalar = int(table[-1]) * g % p
            table = np.concatenate([table, _mulmod(table, scalar, p)])
        return table[:m]

    def batches(self, batch_size: int = 1 << 16):
        """Yield int64 arrays covering this shard's slice of 0..n-1."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        p, n = self.prime, self.n
        total = self._total  # group elements to walk
        powers = self._powers(min(batch_size, total))
        step = pow(self._gen, len(powers), p)
        cursor = self._start
        walked = 0
        while walked < total:
            m = min(len(powers), total - walked)
            values = _mulmod(powers[:m], cursor, p)
            cursor = cursor * step % p
            walked += m
            values = values[values <= n]
            if values.size:
                yield values - 1
