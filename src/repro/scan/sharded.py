"""Sharded scan execution: disjoint shards, worker engines, exact merge.

The scan is embarrassingly parallel: the cyclic-group permutation
(:mod:`repro.scan.permutation`) splits into ``K`` interleaved strided
sub-walks that jointly visit every target exactly once, so ``K``
:class:`~repro.scan.engine.ScanEngine` workers can drain one shard each
with zero coordination — the zmap sharding construction.  Each shard is
a stateless, picklable description (interval arrays + seed + shard
index), which is what lets the process executor ship shards to worker
processes untouched.

``run_sharded`` is the entry point: it shards any target spec —
a :class:`~repro.core.tass.Selection`, a
:class:`~repro.bgp.table.Partition`, a prefix list, raw
``(starts, ends)`` arrays, or a plain range size — executes the shards
through a registered executor (``serial``, ``process``, or
``distributed``; see :mod:`repro.scan.executors`), and merges the
per-shard :class:`~repro.scan.engine.ScanResult`\\ s deterministically:
the merged result is **shard-count and executor invariant** (``K=1``
serial and ``K=8`` distributed produce byte-identical merged results),
which the differential test suite asserts.

Knobs: ``shards``/``executor`` arguments, or the ``REPRO_SCAN_SHARDS``
and ``REPRO_SCAN_EXECUTOR`` environment variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.census.addrset import AddressSet
from repro.env import scan_executor, scan_shards
from repro.scan.engine import EngineConfig, ScanResult
from repro.scan.executors import executor_supports_wrap, get_executor
from repro.scan.permutation import CyclicPermutation

__all__ = [
    "IntervalTargets",
    "shard_targets",
    "merge_results",
    "ShardedScanResult",
    "run_sharded",
]


def _intervals_of(spec):
    """Normalise any target spec to sorted disjoint (starts, ends)."""
    if hasattr(spec, "starts") and hasattr(spec, "ends"):
        starts = np.asarray(spec.starts, dtype=np.int64)
        ends = np.asarray(spec.ends, dtype=np.int64)
    elif isinstance(spec, (int, np.integer)):
        starts = np.zeros(1, dtype=np.int64)
        ends = np.asarray([int(spec)], dtype=np.int64)
    elif isinstance(spec, tuple) and len(spec) == 2:
        starts = np.asarray(spec[0], dtype=np.int64)
        ends = np.asarray(spec[1], dtype=np.int64)
    else:
        prefixes = sorted(spec, key=lambda p: p.start)
        starts = np.fromiter(
            (p.start for p in prefixes), np.int64, len(prefixes)
        )
        ends = np.fromiter(
            (p.end for p in prefixes), np.int64, len(prefixes)
        )
    if starts.shape != ends.shape:
        raise ValueError("starts/ends length mismatch")
    if np.any(ends < starts):
        raise ValueError("interval ends must be >= starts")
    if len(starts) > 1 and not (starts[1:] >= ends[:-1]).all():
        raise ValueError("target intervals must be sorted disjoint")
    return starts, ends


class IntervalTargets:
    """One shard of a permuted walk over disjoint ``[start, end)`` ranges.

    The covered space is flattened into ``[0, total)`` coordinates, one
    :class:`CyclicPermutation` walks it, and this object drains the
    ``shard``-th of ``shards`` strided sub-walks, mapping each batch
    back to real addresses with one ``searchsorted``.  The whole state
    is five plain values, so shards pickle cheaply and regenerate their
    probe order inside worker processes.
    """

    __slots__ = ("starts", "ends", "seed", "shard", "shards", "_offsets")

    def __init__(self, spec, seed: int = 0, shard: int = 0, shards: int = 1):
        if shards < 1 or not 0 <= shard < shards:
            raise ValueError("need 0 <= shard < shards")
        self.starts, self.ends = _intervals_of(spec)
        self.seed = int(seed)
        self.shard = int(shard)
        self.shards = int(shards)
        sizes = self.ends - self.starts
        self._offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(sizes)]
        )

    def address_count(self) -> int:
        """Total covered addresses (all shards jointly)."""
        return int(self._offsets[-1])

    def batches(self, batch_size: int = 1 << 16):
        """Yield permuted int64 address batches for this shard.

        Each batch is sorted in place before the flat-coordinate ->
        address mapping: probe order within a batch is irrelevant to
        every consumer (the engine only counts), sorting makes the
        mapping ``searchsorted`` branch-predictable, and the engine's
        own sorted fast path then kicks in for free.  Which addresses
        each batch carries — and thus every merged result — is
        unchanged.
        """
        total = self.address_count()
        if total == 0:
            return
        walk = CyclicPermutation(total, seed=self.seed).shard(
            self.shard, self.shards
        )
        starts, offsets = self.starts, self._offsets
        for values in walk.batches(batch_size):
            values.sort()
            idx = np.searchsorted(offsets, values, side="right") - 1
            yield starts[idx] + (values - offsets[idx])

    def __getstate__(self):
        return (self.starts, self.ends, self.seed, self.shard, self.shards)

    def __setstate__(self, state):
        starts, ends, seed, shard, shards = state
        self.__init__((starts, ends), seed=seed, shard=shard, shards=shards)


def shard_targets(spec, shards: int = 1, seed: int = 0):
    """Split a target spec into ``shards`` disjoint target streams."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    starts, ends = _intervals_of(spec)
    return [
        IntervalTargets((starts, ends), seed=seed, shard=i, shards=shards)
        for i in range(shards)
    ]


def merge_results(
    results,
    batch_size: int | None = None,
    config: EngineConfig | None = None,
):
    """Merge per-shard :class:`ScanResult`\\ s into one, deterministically.

    Counters are summed in shard order.  ``batches`` is normalised to
    the batch count of the equivalent serial drain
    (``ceil(targets / batch_size)``) rather than summed, because shard
    boundaries fragment batches — the normalisation is what makes the
    merged result shard-count invariant.

    The batch size flows from the active config: pass ``batch_size``
    directly or a ``config`` object; with neither, a fresh
    :class:`EngineConfig` supplies its default at call time (never a
    class attribute frozen at import, so custom batch sizes survive
    the merge).

    Shard results carrying *different* protocols are a correctness
    violation — one merged result cannot account for two protocols —
    and raise a :class:`ValueError` naming the conflict instead of
    silently adopting whichever protocol came first.
    """
    if batch_size is None:
        batch_size = (config or EngineConfig()).batch_size
    results = list(results)
    protocols = {r.protocol for r in results if r.protocol is not None}
    if len(protocols) > 1:
        raise ValueError(
            "cannot merge shard results with conflicting protocols: "
            + ", ".join(repr(p) for p in sorted(protocols))
        )
    merged = ScanResult(protocol=protocols.pop() if protocols else None)
    for result in results:
        merged.probes_sent += result.probes_sent
        merged.responses += result.responses
        merged.blocked += result.blocked
    considered = merged.probes_sent + merged.blocked
    merged.batches = -(-considered // batch_size) if considered else 0
    return merged


@dataclass
class ShardedScanResult:
    """A merged scan outcome plus its per-shard breakdown."""

    result: ScanResult
    shard_results: list = field(default_factory=list)
    shards: int = 1
    executor: str = "serial"

    @property
    def hitrate(self) -> float:
        return self.result.hitrate


def run_sharded(
    spec,
    responsive,
    shards: int | None = None,
    executor: str | None = None,
    config: EngineConfig | None = None,
    blocklist: Blocklist | None = None,
    protocol: str | None = None,
    seed: int = 0,
    *,
    on_shard=None,
    completed=None,
    wrap_targets=None,
) -> ShardedScanResult:
    """Scan a target spec across ``shards`` engine workers and merge.

    ``executor`` names any executor registered in
    :mod:`repro.scan.executors` — ``"serial"`` (drain shards
    in-process, in order), ``"process"`` (one pool worker process per
    shard, capped at the CPU count), or ``"distributed"`` (a
    coordinator shipping shards to socket workers with
    requeue-on-failure).  All produce identical results; the merged
    result is also invariant in ``shards`` itself.

    Checkpoint hooks (the orchestrator's shard-boundary machinery):

    - ``on_shard(index, result)`` fires after each shard finishes, in
      shard order — a durable checkpoint written here makes the shard
      boundary a resume point.
    - ``completed`` is a list of :class:`ScanResult`\\ s for shards
      ``0..len(completed)-1`` already drained by an earlier, interrupted
      run: those shards are skipped and their results merged as-is, so
      kill-and-resume reproduces the uninterrupted run exactly.
    - ``wrap_targets(shard_targets)`` wraps each shard's target stream
      before draining (e.g. in a pacer); serial executor only, since a
      wrapper's state cannot be shared across worker processes.
    """
    shards = scan_shards(shards)
    executor = scan_executor(executor)
    config = config or EngineConfig()
    done = list(completed or [])
    if len(done) > shards:
        raise ValueError(
            f"{len(done)} completed shard results for a {shards}-shard scan"
        )
    targets = shard_targets(spec, shards=shards, seed=seed)[len(done):]
    if not isinstance(responsive, AddressSet):
        responsive = AddressSet(responsive)
    values = responsive.values
    block_state = (
        (blocklist.starts, blocklist.ends) if blocklist is not None else None
    )
    worker_args = (values, config.batch_size, block_state, protocol)
    # A single shard never pays for workers; report the mode actually used.
    if shards == 1:
        executor = "serial"
    if wrap_targets is not None and not executor_supports_wrap(executor):
        raise ValueError(
            "wrap_targets requires the serial executor: wrapper state "
            "cannot be shared across worker processes"
        )
    shard_results = list(done)
    # An all-completed resume has nothing to drain — never spin up an
    # executor (or build a worker) just to map over zero shards.
    if targets:
        drain = get_executor(executor)
        # Executors yield one result per shard, in shard order — the
        # contract that keeps merges deterministic and lets on_shard
        # fire at true shard boundaries.
        for result in drain(targets, worker_args, wrap_targets=wrap_targets):
            shard_results.append(result)
            if on_shard is not None:
                on_shard(len(shard_results) - 1, result)
    merged = merge_results(shard_results, batch_size=config.batch_size)
    return ShardedScanResult(
        result=merged,
        shard_results=shard_results,
        shards=shards,
        executor=executor,
    )
