"""Sharded scan execution: disjoint shards, worker engines, exact merge.

The scan is embarrassingly parallel: the cyclic-group permutation
(:mod:`repro.scan.permutation`) splits into ``K`` interleaved strided
sub-walks that jointly visit every target exactly once, so ``K``
:class:`~repro.scan.engine.ScanEngine` workers can drain one shard each
with zero coordination — the zmap sharding construction.  Each shard is
a stateless, picklable description (interval arrays + seed + shard
index), which is what lets the process executor ship shards to worker
processes untouched.

``run_sharded`` is the entry point: it shards any target spec —
a :class:`~repro.core.tass.Selection`, a
:class:`~repro.bgp.table.Partition`, a prefix list, raw
``(starts, ends)`` arrays, or a plain range size — executes the shards
through a registered executor (``serial``, ``process``, or
``distributed``; see :mod:`repro.scan.executors`), and merges the
per-shard :class:`~repro.scan.engine.ScanResult`\\ s deterministically:
the merged result is **shard-count and executor invariant** (``K=1``
serial and ``K=8`` distributed produce byte-identical merged results),
which the differential test suite asserts.

Knobs: ``shards``/``executor`` arguments, or the ``REPRO_SCAN_SHARDS``
and ``REPRO_SCAN_EXECUTOR`` environment variables.
"""

from __future__ import annotations

import math as _math
import random as _random
from dataclasses import dataclass, field

import numpy as np

from repro.census.addrset import AddressSet
from repro.env import scan_executor, scan_shards
from repro.scan.engine import EngineConfig, ScanResult
from repro.scan.executors import executor_supports_wrap, get_executor
from repro.scan.permutation import CyclicPermutation

__all__ = [
    "IntervalTargets",
    "shard_targets",
    "merge_results",
    "ShardedScanResult",
    "run_sharded",
]


def _coerce_bounds(values) -> np.ndarray:
    """Interval bounds in family dtype: S16 passes through, else int64."""
    arr = np.asarray(values)
    if arr.dtype.kind == "S":
        return arr
    return np.asarray(values, dtype=np.int64)


def _intervals_of(spec):
    """Normalise any target spec to sorted disjoint (starts, ends)."""
    if hasattr(spec, "starts") and hasattr(spec, "ends"):
        starts = _coerce_bounds(spec.starts)
        ends = _coerce_bounds(spec.ends)
    elif isinstance(spec, (int, np.integer)):
        starts = np.zeros(1, dtype=np.int64)
        ends = np.asarray([int(spec)], dtype=np.int64)
    elif isinstance(spec, tuple) and len(spec) == 2:
        starts = _coerce_bounds(spec[0])
        ends = _coerce_bounds(spec[1])
    else:
        prefixes = sorted(spec, key=lambda p: p.start)
        if prefixes and prefixes[0].bits == 128:
            from repro.core.addrspace import V6

            starts = V6.encode([p.start for p in prefixes])
            ends = V6.encode([p.end for p in prefixes])
        else:
            starts = np.fromiter(
                (p.start for p in prefixes), np.int64, len(prefixes)
            )
            ends = np.fromiter(
                (p.end for p in prefixes), np.int64, len(prefixes)
            )
    if starts.shape != ends.shape:
        raise ValueError("starts/ends length mismatch")
    if np.any(ends < starts):
        raise ValueError("interval ends must be >= starts")
    if len(starts) > 1 and not (starts[1:] >= ends[:-1]).all():
        raise ValueError("target intervals must be sorted disjoint")
    return starts, ends


class IntervalTargets:
    """One shard of a permuted walk over disjoint ``[start, end)`` ranges.

    The covered space is flattened into ``[0, total)`` coordinates, one
    :class:`CyclicPermutation` walks it, and this object drains the
    ``shard``-th of ``shards`` strided sub-walks, mapping each batch
    back to real addresses with one ``searchsorted``.  The whole state
    is a handful of plain values, so shards pickle cheaply and
    regenerate their probe order inside worker processes.

    **v6 mode** (S16 interval bounds): exhaustive enumeration of 2^96
    addresses is off the table, so the flat space is the *probe budget*
    instead — ``hitlist`` entries (known-host seeding, filtered to the
    covered intervals) followed by ``samples`` pseudorandom draws per
    interval (a per-interval affine walk ``start + (b + a*j) mod size``
    with ``gcd(a, size) = 1``, so draws within one interval never
    collide).  The flat space still fits int64, so the same int64
    cyclic walk shards it, and the shard/executor-invariance contract
    carries over verbatim.
    """

    __slots__ = (
        "starts",
        "ends",
        "seed",
        "shard",
        "shards",
        "hitlist",
        "samples",
        "_offsets",
        "_v6",
    )

    def __init__(
        self,
        spec,
        seed: int = 0,
        shard: int = 0,
        shards: int = 1,
        hitlist=None,
        samples=None,
    ):
        if shards < 1 or not 0 <= shard < shards:
            raise ValueError("need 0 <= shard < shards")
        self.starts, self.ends = _intervals_of(spec)
        self.seed = int(seed)
        self.shard = int(shard)
        self.shards = int(shards)
        if self.starts.dtype.kind == "S":
            self._init_v6(hitlist, samples)
            return
        if hitlist is not None or samples is not None:
            raise ValueError(
                "hitlist/samples seeding is v6-only; the v4 family "
                "enumerates its intervals exhaustively"
            )
        self.hitlist = None
        self.samples = None
        self._v6 = None
        sizes = self.ends - self.starts
        self._offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(sizes)]
        )

    def _init_v6(self, hitlist, samples) -> None:
        from repro.bgp.table import interval_membership
        from repro.core.addrspace import V6

        if hitlist is None:
            hitlist = V6.empty()
        hitlist = np.unique(V6.asarray(hitlist))
        if len(self.starts):
            hitlist = hitlist[
                interval_membership(self.starts, self.ends, hitlist)
            ]
        hitlist.setflags(write=False)
        self.hitlist = hitlist
        self.samples = int(samples) if samples is not None else 0
        if self.samples < 0:
            raise ValueError("samples must be >= 0")
        start_ints = V6.decode(self.starts)
        size_ints = V6.interval_sizes_exact(self.starts, self.ends)
        budgets = [min(size, self.samples) for size in size_ints]
        offsets = np.zeros(len(budgets) + 1, dtype=np.int64)
        np.cumsum(np.asarray(budgets, dtype=np.int64), out=offsets[1:])
        offsets += len(hitlist)
        self._offsets = offsets
        # Per-interval affine draw parameters, derived deterministically
        # from (seed, interval index) so every shard worker rebuilds the
        # identical mapping from the pickled state alone.
        params = []
        for i, size in enumerate(size_ints):
            rng = _random.Random(f"v6-sample:{self.seed}:{i}")
            if size <= 1:
                params.append((start_ints[i], size, 0, 1))
                continue
            b = rng.randrange(size)
            a = rng.randrange(1, size) | 1
            while _math.gcd(a, size) != 1:
                a = (a + 2) % size or 1
            params.append((start_ints[i], size, b, a))
        self._v6 = params

    def address_count(self) -> int:
        """Flat-space size: covered addresses (v4) or probe budget (v6)."""
        return int(self._offsets[-1])

    def batches(self, batch_size: int = 1 << 16):
        """Yield permuted address batches for this shard.

        Each batch is sorted before the flat-coordinate -> address
        mapping: probe order within a batch is irrelevant to every
        consumer (the engine only counts), sorting makes the mapping
        ``searchsorted`` branch-predictable, and the engine's own
        sorted fast path then kicks in for free.  Which addresses each
        batch carries — and thus every merged result — is unchanged.
        """
        total = self.address_count()
        if total == 0:
            return
        walk = CyclicPermutation(total, seed=self.seed).shard(
            self.shard, self.shards
        )
        if self._v6 is not None:
            yield from self._batches_v6(walk, batch_size)
            return
        starts, offsets = self.starts, self._offsets
        for values in walk.batches(batch_size):
            values.sort()
            idx = np.searchsorted(offsets, values, side="right") - 1
            yield starts[idx] + (values - offsets[idx])

    def _batches_v6(self, walk, batch_size: int):
        from repro.core.addrspace import V6

        hitlist = self.hitlist
        n_hits = len(hitlist)
        offsets = self._offsets
        params = self._v6
        for values in walk.batches(batch_size):
            values.sort()
            split = int(np.searchsorted(values, n_hits, side="left"))
            parts = []
            if split:
                parts.append(hitlist[values[:split]])
            coords = values[split:]
            if coords.size:
                idx = np.searchsorted(offsets, coords, side="right") - 1
                sampled = []
                for c, i in zip(coords.tolist(), idx.tolist()):
                    start, size, b, a = params[i]
                    j = c - int(offsets[i])
                    sampled.append(start + (b + a * j) % size)
                encoded = V6.encode(sampled)
                if n_hits:
                    # An affine sample can land on a hitlist address; the
                    # hitlist slice already probes it, so drop the copy
                    # (deterministic per coordinate -> shard-invariant).
                    pos = np.searchsorted(hitlist, encoded)
                    dup = (pos < n_hits) & (
                        hitlist[pos.clip(max=n_hits - 1)] == encoded
                    )
                    encoded = encoded[~dup]
                if encoded.size:
                    parts.append(encoded)
            if not parts:
                continue
            batch = parts[0] if len(parts) == 1 else np.concatenate(parts)
            yield np.sort(batch)

    def __getstate__(self):
        if self._v6 is None:
            # The historical five-value tuple, byte-for-byte.
            return (
                self.starts, self.ends, self.seed, self.shard, self.shards
            )
        return (
            self.starts,
            self.ends,
            self.seed,
            self.shard,
            self.shards,
            self.hitlist,
            self.samples,
        )

    def __setstate__(self, state):
        starts, ends, seed, shard, shards = state[:5]
        hitlist, samples = state[5:] if len(state) > 5 else (None, None)
        self.__init__(
            (starts, ends),
            seed=seed,
            shard=shard,
            shards=shards,
            hitlist=hitlist,
            samples=samples,
        )


def shard_targets(spec, shards: int = 1, seed: int = 0, **seeding):
    """Split a target spec into ``shards`` disjoint target streams.

    ``seeding`` forwards the v6-only ``hitlist``/``samples`` keywords
    to every :class:`IntervalTargets` shard.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    starts, ends = _intervals_of(spec)
    return [
        IntervalTargets(
            (starts, ends), seed=seed, shard=i, shards=shards, **seeding
        )
        for i in range(shards)
    ]


def merge_results(
    results,
    batch_size: int | None = None,
    config: EngineConfig | None = None,
):
    """Merge per-shard :class:`ScanResult`\\ s into one, deterministically.

    Counters are summed in shard order.  ``batches`` is normalised to
    the batch count of the equivalent serial drain
    (``ceil(targets / batch_size)``) rather than summed, because shard
    boundaries fragment batches — the normalisation is what makes the
    merged result shard-count invariant.

    The batch size flows from the active config: pass ``batch_size``
    directly or a ``config`` object; with neither, a fresh
    :class:`EngineConfig` supplies its default at call time (never a
    class attribute frozen at import, so custom batch sizes survive
    the merge).

    Shard results carrying *different* protocols are a correctness
    violation — one merged result cannot account for two protocols —
    and raise a :class:`ValueError` naming the conflict instead of
    silently adopting whichever protocol came first.
    """
    if batch_size is None:
        batch_size = (config or EngineConfig()).batch_size
    results = list(results)
    protocols = {r.protocol for r in results if r.protocol is not None}
    if len(protocols) > 1:
        raise ValueError(
            "cannot merge shard results with conflicting protocols: "
            + ", ".join(repr(p) for p in sorted(protocols))
        )
    merged = ScanResult(protocol=protocols.pop() if protocols else None)
    for result in results:
        merged.probes_sent += result.probes_sent
        merged.responses += result.responses
        merged.blocked += result.blocked
    considered = merged.probes_sent + merged.blocked
    merged.batches = -(-considered // batch_size) if considered else 0
    return merged


@dataclass
class ShardedScanResult:
    """A merged scan outcome plus its per-shard breakdown."""

    result: ScanResult
    shard_results: list = field(default_factory=list)
    shards: int = 1
    executor: str = "serial"

    @property
    def hitrate(self) -> float:
        return self.result.hitrate


def run_sharded(
    spec,
    responsive,
    shards: int | None = None,
    executor: str | None = None,
    config: EngineConfig | None = None,
    blocklist: Blocklist | None = None,
    protocol: str | None = None,
    seed: int = 0,
    *,
    on_shard=None,
    completed=None,
    wrap_targets=None,
    hitlist=None,
    samples=None,
) -> ShardedScanResult:
    """Scan a target spec across ``shards`` engine workers and merge.

    ``executor`` names any executor registered in
    :mod:`repro.scan.executors` — ``"serial"`` (drain shards
    in-process, in order), ``"process"`` (one pool worker process per
    shard, capped at the CPU count), or ``"distributed"`` (a
    coordinator shipping shards to socket workers with
    requeue-on-failure).  All produce identical results; the merged
    result is also invariant in ``shards`` itself.

    Checkpoint hooks (the orchestrator's shard-boundary machinery):

    - ``on_shard(index, result)`` fires after each shard finishes, in
      shard order — a durable checkpoint written here makes the shard
      boundary a resume point.
    - ``completed`` is a list of :class:`ScanResult`\\ s for shards
      ``0..len(completed)-1`` already drained by an earlier, interrupted
      run: those shards are skipped and their results merged as-is, so
      kill-and-resume reproduces the uninterrupted run exactly.
    - ``wrap_targets(shard_targets)`` wraps each shard's target stream
      before draining (e.g. in a pacer); serial executor only, since a
      wrapper's state cannot be shared across worker processes.

    ``hitlist``/``samples`` are the v6-only seeding knobs forwarded to
    every :class:`IntervalTargets` shard (see its docstring); passing
    either for a v4 spec is an error.
    """
    shards = scan_shards(shards)
    executor = scan_executor(executor)
    config = config or EngineConfig()
    done = list(completed or [])
    if len(done) > shards:
        raise ValueError(
            f"{len(done)} completed shard results for a {shards}-shard scan"
        )
    targets = shard_targets(
        spec, shards=shards, seed=seed, hitlist=hitlist, samples=samples
    )[len(done):]
    if not isinstance(responsive, AddressSet):
        responsive = AddressSet(responsive)
    values = responsive.values
    block_state = (
        (blocklist.starts, blocklist.ends) if blocklist is not None else None
    )
    worker_args = (values, config.batch_size, block_state, protocol)
    # A single shard never pays for workers; report the mode actually used.
    if shards == 1:
        executor = "serial"
    if wrap_targets is not None and not executor_supports_wrap(executor):
        raise ValueError(
            "wrap_targets requires the serial executor: wrapper state "
            "cannot be shared across worker processes"
        )
    shard_results = list(done)
    # An all-completed resume has nothing to drain — never spin up an
    # executor (or build a worker) just to map over zero shards.
    if targets:
        drain = get_executor(executor)
        # Executors yield one result per shard, in shard order — the
        # contract that keeps merges deterministic and lets on_shard
        # fire at true shard boundaries.
        for result in drain(targets, worker_args, wrap_targets=wrap_targets):
            shard_results.append(result)
            if on_shard is not None:
                on_shard(len(shard_results) - 1, result)
    merged = merge_results(shard_results, batch_size=config.batch_size)
    return ShardedScanResult(
        result=merged,
        shard_results=shard_results,
        shards=shards,
        executor=executor,
    )
