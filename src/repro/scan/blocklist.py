"""Scan blocklists: reserved/special-use space a good citizen never probes.

The blocklist is a sorted set of disjoint intervals; filtering a probe
batch is a single vectorized ``searchsorted`` pass.
"""

from __future__ import annotations

import numpy as np

from repro.bgp.table import (
    Prefix,
    coalesce_intervals,
    interval_membership,
    ip_to_int,
)

__all__ = ["Blocklist", "default_blocklist", "RESERVED_CIDRS"]

#: RFC 5735 / RFC 6890 special-use blocks plus multicast and class E.
RESERVED_CIDRS = (
    "0.0.0.0/8",
    "10.0.0.0/8",
    "100.64.0.0/10",
    "127.0.0.0/8",
    "169.254.0.0/16",
    "172.16.0.0/12",
    "192.0.0.0/24",
    "192.0.2.0/24",
    "192.88.99.0/24",
    "192.168.0.0/16",
    "198.18.0.0/15",
    "198.51.100.0/24",
    "203.0.113.0/24",
    "224.0.0.0/4",
    "240.0.0.0/4",
)


class Blocklist:
    """Sorted disjoint intervals of addresses excluded from scanning."""

    def __init__(self, starts, ends):
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        order = np.argsort(starts, kind="stable")
        # Real-world blocklists routinely contain nested/overlapping
        # CIDRs; coalesce them so the searchsorted mask stays exact.
        self.starts, self.ends = coalesce_intervals(
            starts[order], ends[order]
        )

    @classmethod
    def from_cidrs(cls, cidrs) -> "Blocklist":
        prefixes = [Prefix.from_cidr(c) for c in cidrs]
        return cls(
            [p.start for p in prefixes], [p.end for p in prefixes]
        )

    def __len__(self) -> int:
        return int(self.starts.shape[0])

    def address_count(self) -> int:
        return int((self.ends - self.starts).sum())

    def blocked_mask(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized: True where an address falls in a blocked range."""
        return interval_membership(self.starts, self.ends, addresses)

    def allowed_mask(self, addresses: np.ndarray) -> np.ndarray:
        return ~self.blocked_mask(addresses)

    def filter(self, addresses: np.ndarray) -> np.ndarray:
        return addresses[self.allowed_mask(addresses)]

    def is_blocked(self, address: int) -> bool:
        return bool(self.blocked_mask(np.asarray([address]))[0])


def default_blocklist() -> Blocklist:
    """The standard special-use blocklist (see ``RESERVED_CIDRS``)."""
    return Blocklist.from_cidrs(RESERVED_CIDRS)


def contains(dotted: str, blocklist: Blocklist) -> bool:
    return blocklist.is_blocked(ip_to_int(dotted))
