"""Deterministic, seeded fault injection for the distributed executor.

The chaos plane is *declarative*: a :class:`FaultPlan` is a list of
:class:`FaultSpec` entries saying what goes wrong, where, and how many
times — parsed from the ``REPRO_FAULT_PLAN`` environment variable or
built programmatically and handed to the
:class:`~repro.scan.distributed.Coordinator`.  The plan only ever
*describes* faults; enforcement lives in the coordinator (which arms a
fault on the matching dispatch attempt and ships it inside the
``shard`` frame) and in the worker (which executes it).  Because the
coordinator arms faults by ``(shard, attempt)`` — not by wall clock or
by which worker happens to be assigned — the same plan replays the
same failure sequence on every run, which is what lets the test matrix
assert byte-identical merges *under* every fault.

Plan syntax (entries separated by ``,`` or ``;``)::

    kind@shard[:attempts=N|*][:delay=SECONDS]

    crash@2                  first attempt of shard 2 dies mid-shard
    hang@1                   first attempt of shard 1 hangs forever
    stall@0:delay=1.5        shard 0's worker sleeps 1.5s, then answers
    corrupt@3                shard 3's worker sends a non-JSON frame
    truncate@2               worker sends a frame shorter than its header
    oversize@1               worker sends a > MAX_FRAME length prefix
    mid_result@0             worker dies halfway through its result frame
    crash@1:attempts=*       every attempt of shard 1 dies (poison shard)
    spawn_crash@4:attempts=* every spawn from ordinal 4 on dies at exec
                             (a crash-looping replacement fleet)
    auth_fail@2              spawn ordinal 2 presents a sabotaged HMAC
                             proof; the coordinator must reject it
                             without charging the failure budget

``shard`` is the walk's shard number (stable across resume) for worker
faults, or the spawn *ordinal* (0-based, counting every process the
coordinator ever launches) for ``spawn_crash``/``auth_fail``.
``attempts=N`` fires
the fault on the first N attempts of that shard (default 1);
``attempts=*`` fires on every attempt.  ``@*`` matches any shard.

This module also holds the pure arithmetic the coordinator's recovery
machinery is built on — :func:`backoff_delay` and
:class:`RespawnGovernor` (exponential-backoff respawn pacing plus the
crash-loop detector behind graceful fleet degradation) — kept free of
sockets and clocks so unit tests pin the numbers exactly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "ENV_FAULT_PLAN",
    "WORKER_FAULT_KINDS",
    "SPAWN_FAULT_KINDS",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "backoff_delay",
    "deadline_action",
    "RespawnGovernor",
]

ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

#: Faults executed by a worker when armed in a ``shard`` frame.
WORKER_FAULT_KINDS = (
    "crash",       # die mid-shard, no result (the old --fail-shards)
    "hang",        # never answer; only a shard deadline can rescue it
    "stall",       # sleep ``delay`` seconds, then answer normally
    "corrupt",     # send a well-framed but non-JSON body
    "truncate",    # send a header promising more bytes than follow, die
    "oversize",    # send a length prefix exceeding MAX_FRAME, die
    "mid_result",  # compute the result, die halfway through sending it
)

#: Faults keyed on the spawn ordinal, sabotaging a worker before it
#: ever joins the fleet: ``spawn_crash`` dies at exec (before hello),
#: ``auth_fail`` connects but presents a deliberately wrong HMAC proof,
#: exercising the coordinator's authentication-reject path.
SPAWN_FAULT_KINDS = ("spawn_crash", "auth_fail")

FAULT_KINDS = WORKER_FAULT_KINDS + SPAWN_FAULT_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: what, where, how often.

    ``shard`` is a shard number (worker faults) or a spawn ordinal
    (``spawn_crash``); ``None`` matches any shard.  ``attempts`` is the
    number of attempts sabotaged (``None`` = every attempt).  ``delay``
    is the sleep for ``stall`` (ignored by other kinds).
    """

    kind: str
    shard: int | None = None
    attempts: int | None = 1
    delay: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"choose one of {FAULT_KINDS}"
            )
        if self.shard is not None and self.shard < 0:
            raise ValueError(f"fault shard must be >= 0, got {self.shard}")
        if self.attempts is not None and self.attempts < 1:
            raise ValueError(
                f"fault attempts must be >= 1 or '*', got {self.attempts}"
            )
        if self.delay < 0:
            raise ValueError(f"fault delay must be >= 0, got {self.delay}")
        if self.kind in SPAWN_FAULT_KINDS and self.shard is None:
            raise ValueError(f"{self.kind} needs an explicit spawn ordinal")

    # -- matching ------------------------------------------------------

    def matches_shard(self, shard: int, attempt: int) -> bool:
        """Does this spec fire on the ``attempt``-th try of ``shard``?"""
        if self.kind in SPAWN_FAULT_KINDS:
            return False
        if self.shard is not None and self.shard != shard:
            return False
        return self.attempts is None or attempt < self.attempts

    def matches_spawn(self, ordinal: int) -> bool:
        """Does this spec kill the ``ordinal``-th process ever spawned?"""
        if self.kind not in SPAWN_FAULT_KINDS:
            return False
        if ordinal < self.shard:
            return False
        return self.attempts is None or ordinal - self.shard < self.attempts

    # -- text form -----------------------------------------------------

    def to_string(self) -> str:
        text = f"{self.kind}@{'*' if self.shard is None else self.shard}"
        if self.attempts != 1:
            text += f":attempts={'*' if self.attempts is None else self.attempts}"
        if self.delay:
            text += f":delay={self.delay:g}"
        return text

    @classmethod
    def parse(cls, entry: str) -> "FaultSpec":
        entry = entry.strip()
        head, _, tail = entry.partition(":")
        kind, sep, shard_text = head.partition("@")
        kind = kind.strip()
        if not sep:
            raise ValueError(
                f"fault entry {entry!r} needs kind@shard "
                "(e.g. 'crash@2' or 'hang@*')"
            )
        shard_text = shard_text.strip()
        if shard_text == "*":
            shard = None
        else:
            try:
                shard = int(shard_text)
            except ValueError:
                raise ValueError(
                    f"fault entry {entry!r}: shard must be an integer "
                    "or '*'"
                ) from None
        attempts: int | None = 1
        delay = 0.0
        for option in filter(None, (p.strip() for p in tail.split(":"))):
            key, sep, value = option.partition("=")
            if not sep:
                raise ValueError(
                    f"fault entry {entry!r}: option {option!r} must be "
                    "key=value"
                )
            key = key.strip()
            value = value.strip()
            if key == "attempts":
                attempts = None if value == "*" else int(value)
            elif key == "delay":
                delay = float(value)
            else:
                raise ValueError(
                    f"fault entry {entry!r}: unknown option {key!r} "
                    "(expected attempts= or delay=)"
                )
        return cls(kind=kind, shard=shard, attempts=attempts, delay=delay)


class FaultPlan:
    """An ordered collection of :class:`FaultSpec`\\ s (first match wins)."""

    __slots__ = ("specs",)

    def __init__(self, specs=()):
        self.specs = tuple(specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultPlan) and self.specs == other.specs

    def __repr__(self) -> str:
        return f"FaultPlan({self.to_string()!r})"

    # -- construction --------------------------------------------------

    @classmethod
    def parse(cls, text: str | None) -> "FaultPlan":
        """Parse the ``REPRO_FAULT_PLAN`` syntax (empty/None → no faults)."""
        if not text or not text.strip():
            return cls()
        entries = text.replace(";", ",").split(",")
        return cls(
            FaultSpec.parse(entry) for entry in entries if entry.strip()
        )

    @classmethod
    def from_env(cls) -> "FaultPlan":
        return cls.parse(os.environ.get(ENV_FAULT_PLAN))

    @classmethod
    def crash_shards(cls, shards, every_attempt: bool = False) -> "FaultPlan":
        """The old ``--fail-shards`` semantics as a plan (back-compat)."""
        return cls(
            FaultSpec(
                "crash", shard=int(s),
                attempts=None if every_attempt else 1,
            )
            for s in sorted(shards)
        )

    def merged_with(self, other: "FaultPlan") -> "FaultPlan":
        return FaultPlan(self.specs + other.specs)

    def to_string(self) -> str:
        return ",".join(spec.to_string() for spec in self.specs)

    # -- queries -------------------------------------------------------

    def shard_fault(self, shard: int, attempt: int) -> FaultSpec | None:
        """The fault (if any) armed for the ``attempt``-th try of ``shard``."""
        for spec in self.specs:
            if spec.matches_shard(shard, attempt):
                return spec
        return None

    def spawn_fault(self, ordinal: int) -> FaultSpec | None:
        """The fault (if any) killing the ``ordinal``-th spawned process."""
        for spec in self.specs:
            if spec.matches_spawn(ordinal):
                return spec
        return None


# ---------------------------------------------------------------------------
# Recovery arithmetic (pure; the coordinator supplies the clock)
# ---------------------------------------------------------------------------


def backoff_delay(failures: int, base: float, cap: float) -> float:
    """Deterministic exponential backoff: ``base * 2**(failures-1)``, capped.

    ``failures`` is the consecutive-failure count *before* the retry
    being scheduled; zero or negative means no failures yet, so no
    delay.  No jitter on purpose: replayability beats thundering-herd
    avoidance inside a single-coordinator fleet.
    """
    if failures <= 0 or base <= 0:
        return 0.0
    return min(cap, base * 2 ** (failures - 1))


def deadline_action(
    now: float,
    dispatched_at: float,
    deadline: float | None,
    hard_kill_factor: float = 3.0,
) -> str:
    """What to do about one in-flight shard attempt at time ``now``.

    - ``"ok"``        — within its deadline (or deadlines disabled);
    - ``"speculate"`` — past the deadline: race a second attempt on an
      idle worker, keep this one (it may merely be slow);
    - ``"kill"``      — ``hard_kill_factor`` deadlines past dispatch:
      presume the worker hung and reclaim its process.
    """
    if deadline is None:
        return "ok"
    held = now - dispatched_at
    if held > hard_kill_factor * deadline:
        return "kill"
    if held > deadline:
        return "speculate"
    return "ok"


class RespawnGovernor:
    """Backoff pacing + crash-loop detection for worker respawns.

    The coordinator records a *spawn-side* failure (a process that died
    before completing the handshake, or a ``Popen`` that raised) and a
    success (a worker that connected and took its init).  ``delay()``
    is the backoff to wait before the next spawn; once
    ``crash_loop_threshold`` consecutive spawn-side failures accumulate
    the governor reports a crash loop, and the coordinator degrades the
    fleet instead of respawning forever.
    """

    __slots__ = ("base", "cap", "threshold", "failures", "respawns")

    def __init__(
        self,
        base: float = 0.05,
        cap: float = 2.0,
        crash_loop_threshold: int = 3,
    ):
        if crash_loop_threshold < 1:
            raise ValueError("crash_loop_threshold must be >= 1")
        self.base = float(base)
        self.cap = float(cap)
        self.threshold = int(crash_loop_threshold)
        self.failures = 0   # consecutive spawn-side failures
        self.respawns = 0   # total replacement spawns requested

    def record_failure(self) -> None:
        self.failures += 1

    def record_success(self) -> None:
        self.failures = 0

    def record_respawn(self) -> None:
        self.respawns += 1

    @property
    def in_crash_loop(self) -> bool:
        return self.failures >= self.threshold

    def delay(self) -> float:
        return backoff_delay(self.failures, self.base, self.cap)
