"""Pluggable shard-executor registry (mirrors :mod:`repro.bgp.backends`).

``run_sharded`` used to hard-code a ``serial``/``process`` branch; this
module makes the execution strategy a *registry* of interchangeable
executors instead.  An executor is a generator function

    fn(targets, worker_args, wrap_targets=None) -> iterator[ScanResult]

that drains a list of :class:`~repro.scan.sharded.IntervalTargets`
shard descriptions and yields one :class:`~repro.scan.engine.ScanResult`
per shard **in list order** — the ordering contract is what lets the
orchestrator checkpoint at every shard boundary and keep kill-and-resume
byte-identical no matter which executor drained the shards.

Built-in executors:

- ``serial``      — drain shards in-process, in order; the only executor
  that supports ``wrap_targets`` (pacing wrappers share in-process
  state with the caller).
- ``process``     — one pool worker process per shard, capped at the CPU
  count (:class:`concurrent.futures.ProcessPoolExecutor`).
- ``distributed`` — a coordinator that ships shard descriptions to a
  worker fleet over a length-prefixed JSON socket protocol, re-queues
  shards lost to worker failures, and re-orders results back into
  shard order (:mod:`repro.scan.distributed`).  The fleet mixes
  locally spawned children with pre-started remote workers dialed from
  the ``REPRO_DIST_ADDRESS_BOOK``, optionally behind a mutual
  HMAC-SHA256 handshake (``REPRO_DIST_SECRET``).

Registering a new executor is one decorated generator function::

    from repro.scan.executors import register_executor

    @register_executor("myexec")
    def my_executor(targets, worker_args, wrap_targets=None):
        for shard in targets:
            yield ...  # a ScanResult, in shard order

``worker_args`` is the picklable 4-tuple
``(responsive_values, batch_size, block_state, protocol)`` accepted by
:func:`build_worker`, which turns it into a ready
``(engine, truth, protocol)`` triple inside any process.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

from repro.census.addrset import AddressSet
from repro.scan.blocklist import Blocklist
from repro.scan.engine import EngineConfig, ScanEngine

__all__ = [
    "ExecutorFailure",
    "register_executor",
    "available_executors",
    "get_executor",
    "executor_supports_wrap",
    "build_worker",
]

_REGISTRY: dict[str, object] = {}


class ExecutorFailure(RuntimeError):
    """An executor's *infrastructure* collapsed (not a bad input).

    Raised when worker failures exhaust an executor's recovery options
    — a tripped failure budget, a crash-looped fleet with no survivors,
    a global progress stall.  Shards already drained were checkpointed
    by ``on_shard``, so the condition is retryable: the orchestrator's
    wave-level retry policy catches exactly this type and re-runs the
    remainder of the wave.
    """


def register_executor(name: str, *, supports_wrap: bool = False):
    """Decorator registering ``fn(targets, worker_args, wrap_targets)``.

    ``supports_wrap`` declares whether the executor can apply a
    ``wrap_targets`` stream wrapper — only in-process executors can,
    since a wrapper's state (e.g. a token bucket) cannot be shared
    across worker processes.
    """

    def decorate(fn):
        fn.executor_name = name
        fn.supports_wrap = bool(supports_wrap)
        _REGISTRY[name] = fn
        return fn

    return decorate


def available_executors() -> list[str]:
    """Registered executor names, sorted."""
    return sorted(_REGISTRY)


def get_executor(name: str):
    """Resolve a registered executor by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; "
            f"available: {available_executors()}"
        ) from None


def executor_supports_wrap(name: str) -> bool:
    """Whether ``name`` can apply in-process ``wrap_targets`` wrappers."""
    return bool(getattr(get_executor(name), "supports_wrap", False))


# ---------------------------------------------------------------------------
# Worker construction (shared by every executor, in any process)
# ---------------------------------------------------------------------------


def build_worker(responsive_values, batch_size, block_state, protocol):
    """(engine, truth, protocol) ready to drain shards."""
    blocklist = (
        Blocklist(block_state[0], block_state[1])
        if block_state is not None
        else None
    )
    engine = ScanEngine(EngineConfig(batch_size=batch_size), blocklist)
    truth = AddressSet(responsive_values, assume_sorted_unique=True)
    return engine, truth, protocol


#: Per-process worker state, installed once by the pool initializer so
#: the responsive set crosses into each worker once, not once per shard.
_WORKER = None


def _init_worker(responsive_values, batch_size, block_state, protocol):
    global _WORKER
    _WORKER = build_worker(
        responsive_values, batch_size, block_state, protocol
    )


def _run_shard_pooled(targets):
    """Drain one shard in a pool worker (module-level for pickling)."""
    engine, truth, protocol = _WORKER
    return engine.run(targets, truth, protocol=protocol)


def _pool_context():
    """Prefer fork (cheap, inherits sys.path); fall back to the default."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )


# ---------------------------------------------------------------------------
# Built-in executors
# ---------------------------------------------------------------------------


@register_executor("serial", supports_wrap=True)
def serial_executor(targets, worker_args, wrap_targets=None):
    """Drain shards in-process, in order."""
    engine, truth, protocol = build_worker(*worker_args)
    for shard in targets:
        stream = shard if wrap_targets is None else wrap_targets(shard)
        yield engine.run(stream, truth, protocol=protocol)


@register_executor("process")
def process_executor(targets, worker_args, wrap_targets=None):
    """One pool worker process per shard, capped at the CPU count."""
    workers = min(len(targets), os.cpu_count() or 1)
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_pool_context(),
        initializer=_init_worker,
        initargs=worker_args,
    ) as pool:
        # pool.map preserves shard order, so merges stay deterministic
        # and downstream on_shard hooks fire at true shard boundaries.
        yield from pool.map(_run_shard_pooled, targets)


# Imported last so the distributed module can register itself through
# the (already defined) decorator without a circular import.
from repro.scan import distributed as _distributed  # noqa: E402,F401
