"""Routing-table model: prefixes, interval partitions, vectorized counting.

The paper works with two complementary decompositions of the announced
address space:

- the **less-specific** view (``LESS_SPECIFIC``): the top-level
  announcements only, covering prefixes with everything they aggregate;
- the **more-specific** view (``MORE_SPECIFIC``): the most-specific
  non-overlapping decomposition — every deaggregated child plus the
  uncovered remainder of its parent, recursively.

Both views are materialised as a :class:`Partition` — a sorted list of
disjoint ``[start, end)`` intervals.  Counting responsive addresses per
prefix (TASS step 2) is then two ``searchsorted`` calls over the sorted
snapshot array, instead of a longest-prefix match per address (the
radix-trie reference in :mod:`repro.core.density` that the ablation
benchmark compares against).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

__all__ = [
    "LESS_SPECIFIC",
    "MORE_SPECIFIC",
    "Prefix",
    "Partition",
    "RoutingTable",
    "interval_membership",
    "count_in_intervals",
    "coalesce_intervals",
    "ip_to_int",
    "int_to_ip",
]

LESS_SPECIFIC = "less-specific"
MORE_SPECIFIC = "more-specific"


def interval_membership(starts, ends, values) -> np.ndarray:
    """Mask: which values fall inside a sorted disjoint ``[start, end)`` set.

    The shared one-``searchsorted`` membership idiom used by partitions,
    selections, and blocklists alike.  ``starts``/``ends`` must be sorted
    and non-overlapping.
    """
    values = np.asarray(values, dtype=np.int64)
    idx = np.searchsorted(starts, values, side="right") - 1
    return (idx >= 0) & (values < ends[idx.clip(0)])


def count_in_intervals(starts, ends, values) -> np.ndarray:
    """Per-interval occupancy of a **sorted** value array.

    The two-``searchsorted`` interval-counting pass: the number of values
    inside ``[start_i, end_i)`` is the difference of the two insertion
    points.  O((n + m) log) for the whole interval set.
    """
    values = np.asarray(values, dtype=np.int64)
    lo = np.searchsorted(values, starts, side="left")
    hi = np.searchsorted(values, ends, side="left")
    return hi - lo


def coalesce_intervals(starts, ends):
    """Merge overlapping/adjacent ``[start, end)`` runs into a minimal cover.

    ``starts`` must be sorted ascending (intervals may nest, overlap,
    or abut).  The result covers exactly the same addresses with the
    fewest intervals — dense interval sets (e.g. a selection of many
    adjacent prefixes) shrink to a handful of runs, which shrinks every
    downstream ``searchsorted`` table.  Returns ``(starts, ends)``.
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    if len(starts) <= 1:
        return starts, ends
    reach = np.maximum.accumulate(ends)
    fresh = np.empty(len(starts), dtype=bool)
    fresh[0] = True
    np.greater(starts[1:], reach[:-1], out=fresh[1:])
    run = np.flatnonzero(fresh)
    return starts[fresh], np.maximum.reduceat(reach, run)


def ip_to_int(dotted: str) -> int:
    a, b, c, d = (int(x) for x in dotted.split("."))
    return (a << 24) | (b << 16) | (c << 8) | d


def int_to_ip(value: int) -> str:
    value = int(value)
    return ".".join(str((value >> s) & 0xFF) for s in (24, 16, 8, 0))


@dataclass(frozen=True, slots=True)
class Prefix:
    """An IPv4 CIDR prefix as (network integer, mask length)."""

    network: int
    length: int

    @property
    def size(self) -> int:
        return 1 << (32 - self.length)

    @property
    def start(self) -> int:
        return self.network

    @property
    def end(self) -> int:
        return self.network + self.size

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    def covers(self, other: "Prefix") -> bool:
        return self.start <= other.start and other.end <= self.end

    @classmethod
    def from_cidr(cls, cidr: str) -> "Prefix":
        net, length = cidr.split("/")
        return cls(ip_to_int(net), int(length))

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.length}"


class Partition:
    """A sorted set of disjoint ``[start, end)`` address intervals.

    Table partitions carry their :class:`Prefix` objects; derived
    partitions (e.g. the clustered-/24 refinement) are plain interval
    sets.  ``count_addresses`` is the package's hottest routine: given a
    *sorted* address array it returns the per-interval occupancy via the
    two-``searchsorted`` interval-counting pass.
    """

    # __weakref__ lets the COUNT_CACHE key entries on partitions
    # without extending their lifetime.
    __slots__ = (
        "starts",
        "ends",
        "count_backend",
        "_prefixes",
        "__dict__",
        "__weakref__",
    )

    def __init__(self, starts, ends, prefixes=None, count_backend=None):
        self.starts = np.asarray(starts, dtype=np.int64)
        self.ends = np.asarray(ends, dtype=np.int64)
        if self.starts.shape != self.ends.shape:
            raise ValueError("starts/ends length mismatch")
        if len(self.starts) > 1 and not (
            self.starts[1:] >= self.ends[:-1]
        ).all():
            raise ValueError("partition intervals must be sorted disjoint")
        self._prefixes = list(prefixes) if prefixes is not None else None
        #: Default counting backend for this partition (None = resolve
        #: via ``$REPRO_COUNT_BACKEND`` / the registry default).
        self.count_backend = count_backend

    @classmethod
    def from_prefixes(cls, prefixes, count_backend=None) -> "Partition":
        prefixes = sorted(prefixes, key=lambda p: p.network)
        starts = np.fromiter(
            (p.start for p in prefixes), dtype=np.int64, count=len(prefixes)
        )
        ends = np.fromiter(
            (p.end for p in prefixes), dtype=np.int64, count=len(prefixes)
        )
        return cls(starts, ends, prefixes, count_backend=count_backend)

    # -- structure -----------------------------------------------------

    def __len__(self) -> int:
        return int(self.starts.shape[0])

    @cached_property
    def sizes(self) -> np.ndarray:
        return self.ends - self.starts

    @property
    def prefixes(self):
        if self._prefixes is None:
            raise AttributeError(
                "this partition is interval-based and has no Prefix objects"
            )
        return self._prefixes

    @cached_property
    def lengths(self) -> np.ndarray:
        """Per-part prefix length (32 - log2 size for aligned parts)."""
        if self._prefixes is not None:
            return np.fromiter(
                (p.length for p in self._prefixes),
                dtype=np.int64,
                count=len(self._prefixes),
            )
        return 32 - np.round(np.log2(self.sizes)).astype(np.int64)

    def address_count(self) -> int:
        return int(self.sizes.sum())

    # -- vectorized hot paths -----------------------------------------

    def count_addresses(self, values: np.ndarray, backend=None) -> np.ndarray:
        """Per-interval occupancy of a **sorted** int64 address array.

        By default this is the two-``searchsorted`` interval-counting
        pass; ``backend`` (or the partition's ``count_backend``, or
        ``$REPRO_COUNT_BACKEND``) selects any backend registered in
        :mod:`repro.bgp.backends` instead.

        Counts over immutable snapshot arrays are memoized in the
        process-wide :data:`~repro.bgp.backends.COUNT_CACHE`, so every
        wave/strategy sharing a snapshot shares one counting pass; the
        returned array is read-only and must not be mutated.
        """
        # Imported lazily: backends imports this module at load time.
        from repro.bgp.backends import COUNT_CACHE

        backend = backend if backend is not None else self.count_backend
        return COUNT_CACHE.counts(self, values, backend)

    def index_of(self, values: np.ndarray) -> np.ndarray:
        """Covering-interval index per address (-1 when uncovered)."""
        values = np.asarray(values, dtype=np.int64)
        idx = np.searchsorted(self.starts, values, side="right") - 1
        safe = idx.clip(0)
        inside = (idx >= 0) & (values < self.ends[safe])
        return np.where(inside, safe, -1)

    def membership(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask: which addresses fall inside any interval."""
        return interval_membership(self.starts, self.ends, values)


class RoutingTable:
    """A BGP routing table as a forest of prefixes.

    Top-level announcements (``l_prefixes``) are disjoint; deaggregated
    more-specific announcements hang beneath them (possibly nested).
    """

    def __init__(self, l_prefixes, children=None, count_backend=None):
        self._l_prefixes = sorted(l_prefixes, key=lambda p: p.network)
        self._children = {
            parent: tuple(sorted(kids, key=lambda p: p.network))
            for parent, kids in (children or {}).items()
            if kids
        }
        self._partitions = {}
        #: Counting backend inherited by every partition derived from
        #: this table (None = registry default / env var).
        self.count_backend = count_backend

    @property
    def l_prefixes(self):
        """The top-level (less-specific) announcements, sorted."""
        return self._l_prefixes

    @cached_property
    def prefixes(self):
        """All announced prefixes in preorder (parents before children)."""
        out = []
        stack = list(reversed(self._l_prefixes))
        while stack:
            p = stack.pop()
            out.append(p)
            stack.extend(reversed(self.children_of(p)))
        return out

    def children_of(self, prefix: Prefix):
        return list(self._children.get(prefix, ()))

    def __len__(self) -> int:
        return len(self.prefixes)

    def partition(self, view: str) -> Partition:
        """The disjoint interval cover for the requested prefix view."""
        try:
            return self._partitions[view]
        except KeyError:
            pass
        if view == LESS_SPECIFIC:
            part = Partition.from_prefixes(
                self._l_prefixes, count_backend=self.count_backend
            )
        elif view == MORE_SPECIFIC:
            from repro.bgp.deaggregate import partition_table

            forest = {p: self.children_of(p) for p in self.prefixes}
            part = Partition.from_prefixes(
                partition_table(forest, self._l_prefixes),
                count_backend=self.count_backend,
            )
        else:
            raise ValueError(f"unknown prefix view: {view!r}")
        self._partitions[view] = part
        return part
