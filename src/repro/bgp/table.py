"""Routing-table model: prefixes, interval partitions, vectorized counting.

The paper works with two complementary decompositions of the announced
address space:

- the **less-specific** view (``LESS_SPECIFIC``): the top-level
  announcements only, covering prefixes with everything they aggregate;
- the **more-specific** view (``MORE_SPECIFIC``): the most-specific
  non-overlapping decomposition — every deaggregated child plus the
  uncovered remainder of its parent, recursively.

Both views are materialised as a :class:`Partition` — a sorted list of
disjoint ``[start, end)`` intervals.  Counting responsive addresses per
prefix (TASS step 2) is then two ``searchsorted`` calls over the sorted
snapshot array, instead of a longest-prefix match per address (the
radix-trie reference in :mod:`repro.core.density` that the ablation
benchmark compares against).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.core.addrspace import V4, space_of

__all__ = [
    "LESS_SPECIFIC",
    "MORE_SPECIFIC",
    "Prefix",
    "Partition",
    "RoutingTable",
    "interval_membership",
    "count_in_intervals",
    "coalesce_intervals",
    "ip_to_int",
    "int_to_ip",
]

LESS_SPECIFIC = "less-specific"
MORE_SPECIFIC = "more-specific"


def _as_address_array(values) -> np.ndarray:
    """Coerce to a family-native address array.

    The historical behaviour — ``np.asarray(values, dtype=np.int64)`` —
    is preserved verbatim for everything except 16-byte string arrays,
    which pass through unchanged (the v6 representation; see
    :mod:`repro.core.addrspace`).
    """
    arr = np.asarray(values)
    if arr.dtype.kind == "S":
        return space_of(arr).asarray(arr)
    return np.asarray(values, dtype=np.int64)


def interval_membership(starts, ends, values) -> np.ndarray:
    """Mask: which values fall inside a sorted disjoint ``[start, end)`` set.

    The shared one-``searchsorted`` membership idiom used by partitions,
    selections, and blocklists alike.  ``starts``/``ends`` must be sorted
    and non-overlapping.  Works for both families: lexicographic order
    on the v6 byte strings is numeric order.
    """
    values = _as_address_array(values)
    idx = np.searchsorted(starts, values, side="right") - 1
    return (idx >= 0) & (values < ends[idx.clip(0)])


def count_in_intervals(starts, ends, values) -> np.ndarray:
    """Per-interval occupancy of a **sorted** value array.

    The two-``searchsorted`` interval-counting pass: the number of values
    inside ``[start_i, end_i)`` is the difference of the two insertion
    points.  O((n + m) log) for the whole interval set.
    """
    values = _as_address_array(values)
    lo = np.searchsorted(values, starts, side="left")
    hi = np.searchsorted(values, ends, side="left")
    return hi - lo


def coalesce_intervals(starts, ends):
    """Merge overlapping/adjacent ``[start, end)`` runs into a minimal cover.

    ``starts`` must be sorted ascending (intervals may nest, overlap,
    or abut).  The result covers exactly the same addresses with the
    fewest intervals — dense interval sets (e.g. a selection of many
    adjacent prefixes) shrink to a handful of runs, which shrinks every
    downstream ``searchsorted`` table.  Returns ``(starts, ends)``.
    """
    starts = _as_address_array(starts)
    ends = _as_address_array(ends)
    if len(starts) <= 1:
        return starts, ends
    if starts.dtype.kind == "S":
        # ``np.maximum`` has no S16 loop; interval tables are small, so
        # the v6 family coalesces through exact Python-int scans.
        space = space_of(starts)
        s = space.decode(starts)
        e = space.decode(ends)
        out_s = [s[0]]
        out_e = [e[0]]
        for a, b in zip(s[1:], e[1:]):
            if a > out_e[-1]:
                out_s.append(a)
                out_e.append(b)
            elif b > out_e[-1]:
                out_e[-1] = b
        return space.encode(out_s), space.encode(out_e)
    reach = np.maximum.accumulate(ends)
    fresh = np.empty(len(starts), dtype=bool)
    fresh[0] = True
    np.greater(starts[1:], reach[:-1], out=fresh[1:])
    run = np.flatnonzero(fresh)
    return starts[fresh], np.maximum.reduceat(reach, run)


def ip_to_int(dotted: str) -> int:
    a, b, c, d = (int(x) for x in dotted.split("."))
    return (a << 24) | (b << 16) | (c << 8) | d


def int_to_ip(value: int) -> str:
    value = int(value)
    return ".".join(str((value >> s) & 0xFF) for s in (24, 16, 8, 0))


@dataclass(frozen=True, slots=True)
class Prefix:
    """A CIDR prefix as (network integer, mask length, address width).

    ``bits`` is the family width: 32 for IPv4 (the default, so every
    existing call site is unchanged) or 128 for IPv6, where ``network``
    is an arbitrary-precision Python int.
    """

    network: int
    length: int
    bits: int = field(default=32)

    @property
    def size(self) -> int:
        return 1 << (self.bits - self.length)

    @property
    def start(self) -> int:
        return self.network

    @property
    def end(self) -> int:
        return self.network + self.size

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    def covers(self, other: "Prefix") -> bool:
        return self.start <= other.start and other.end <= self.end

    @classmethod
    def from_cidr(cls, cidr: str) -> "Prefix":
        net, length = cidr.split("/")
        if ":" in net:
            return cls(int(ipaddress.IPv6Address(net)), int(length), 128)
        return cls(ip_to_int(net), int(length))

    def __str__(self) -> str:
        if self.bits == 128:
            return f"{ipaddress.IPv6Address(self.network)}/{self.length}"
        return f"{int_to_ip(self.network)}/{self.length}"


class Partition:
    """A sorted set of disjoint ``[start, end)`` address intervals.

    Table partitions carry their :class:`Prefix` objects; derived
    partitions (e.g. the clustered-/24 refinement) are plain interval
    sets.  ``count_addresses`` is the package's hottest routine: given a
    *sorted* address array it returns the per-interval occupancy via the
    two-``searchsorted`` interval-counting pass.
    """

    # __weakref__ lets the COUNT_CACHE key entries on partitions
    # without extending their lifetime.
    __slots__ = (
        "starts",
        "ends",
        "count_backend",
        "_prefixes",
        "__dict__",
        "__weakref__",
    )

    def __init__(self, starts, ends, prefixes=None, count_backend=None):
        self.starts = _as_address_array(starts)
        self.ends = _as_address_array(ends)
        self.space = space_of(self.starts)
        if self.starts.dtype != self.ends.dtype:
            raise ValueError("starts/ends address-family mismatch")
        if self.starts.shape != self.ends.shape:
            raise ValueError("starts/ends length mismatch")
        if len(self.starts) > 1 and not (
            self.starts[1:] >= self.ends[:-1]
        ).all():
            raise ValueError("partition intervals must be sorted disjoint")
        self._prefixes = list(prefixes) if prefixes is not None else None
        #: Default counting backend for this partition (None = resolve
        #: via ``$REPRO_COUNT_BACKEND`` / the registry default).
        self.count_backend = count_backend

    @classmethod
    def from_prefixes(cls, prefixes, count_backend=None) -> "Partition":
        prefixes = sorted(prefixes, key=lambda p: p.network)
        if prefixes and prefixes[0].bits == 128:
            from repro.core.addrspace import V6

            starts = V6.encode([p.start for p in prefixes])
            ends = V6.encode([p.end for p in prefixes])
            return cls(starts, ends, prefixes, count_backend=count_backend)
        starts = np.fromiter(
            (p.start for p in prefixes), dtype=np.int64, count=len(prefixes)
        )
        ends = np.fromiter(
            (p.end for p in prefixes), dtype=np.int64, count=len(prefixes)
        )
        return cls(starts, ends, prefixes, count_backend=count_backend)

    # -- structure -----------------------------------------------------

    def __len__(self) -> int:
        return int(self.starts.shape[0])

    @cached_property
    def sizes(self) -> np.ndarray:
        """Per-interval sizes.

        v4: exact ``int64`` (unchanged).  v6: ``float64`` — interval
        sizes reach 2^96+, beyond int64; power-of-two sizes are exactly
        representable in float64, which is all density ranking needs.
        Exact accounting must use :meth:`sizes_exact` /
        :meth:`address_count` / :meth:`masked_address_count`.
        """
        if self.space.bits != 32:
            return self.space.interval_sizes_float(self.starts, self.ends)
        return self.ends - self.starts

    @cached_property
    def sizes_exact(self) -> tuple:
        """Per-interval sizes as exact Python ints (both families)."""
        return tuple(
            self.space.interval_sizes_exact(self.starts, self.ends)
        )

    @property
    def prefixes(self):
        if self._prefixes is None:
            raise AttributeError(
                "this partition is interval-based and has no Prefix objects"
            )
        return self._prefixes

    @cached_property
    def lengths(self) -> np.ndarray:
        """Per-part prefix length, exact (``bits - log2 size``).

        Interval-based partitions must have power-of-two aligned sizes
        for a length to exist; non-power-of-two intervals (possible
        after coalescing) used to round through ``log2`` and silently
        produce a wrong length — now they raise.
        """
        if self._prefixes is not None:
            return np.fromiter(
                (p.length for p in self._prefixes),
                dtype=np.int64,
                count=len(self._prefixes),
            )
        bits = self.space.bits
        lengths = np.empty(len(self), dtype=np.int64)
        for i, size in enumerate(self.sizes_exact):
            if size <= 0 or size & (size - 1):
                raise ValueError(
                    f"interval {i} has non-power-of-two size {size}; "
                    "prefix lengths are undefined for unaligned intervals"
                )
            lengths[i] = bits - (size.bit_length() - 1)
        return lengths

    def address_count(self) -> int:
        """Total covered addresses as an exact Python int."""
        if self.space.bits != 32:
            return sum(self.sizes_exact)
        return int(self.sizes.sum())

    def masked_address_count(self, mask) -> int:
        """Exact covered-address count over a boolean part mask."""
        if self.space.bits != 32:
            sizes = self.sizes_exact
            return sum(sizes[i] for i in np.flatnonzero(mask))
        return int(self.sizes[mask].sum())

    # -- vectorized hot paths -----------------------------------------

    def count_addresses(self, values: np.ndarray, backend=None) -> np.ndarray:
        """Per-interval occupancy of a **sorted** int64 address array.

        By default this is the two-``searchsorted`` interval-counting
        pass; ``backend`` (or the partition's ``count_backend``, or
        ``$REPRO_COUNT_BACKEND``) selects any backend registered in
        :mod:`repro.bgp.backends` instead.

        Counts over immutable snapshot arrays are memoized in the
        process-wide :data:`~repro.bgp.backends.COUNT_CACHE`, so every
        wave/strategy sharing a snapshot shares one counting pass; the
        returned array is read-only and must not be mutated.
        """
        # Imported lazily: backends imports this module at load time.
        from repro.bgp.backends import COUNT_CACHE

        backend = backend if backend is not None else self.count_backend
        return COUNT_CACHE.counts(self, values, backend)

    def index_of(self, values: np.ndarray) -> np.ndarray:
        """Covering-interval index per address (-1 when uncovered)."""
        values = _as_address_array(values)
        idx = np.searchsorted(self.starts, values, side="right") - 1
        safe = idx.clip(0)
        inside = (idx >= 0) & (values < self.ends[safe])
        return np.where(inside, safe, -1)

    def membership(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask: which addresses fall inside any interval."""
        return interval_membership(self.starts, self.ends, values)


class RoutingTable:
    """A BGP routing table as a forest of prefixes.

    Top-level announcements (``l_prefixes``) are disjoint; deaggregated
    more-specific announcements hang beneath them (possibly nested).
    """

    def __init__(self, l_prefixes, children=None, count_backend=None):
        self._l_prefixes = sorted(l_prefixes, key=lambda p: p.network)
        self._children = {
            parent: tuple(sorted(kids, key=lambda p: p.network))
            for parent, kids in (children or {}).items()
            if kids
        }
        self._partitions = {}
        #: Counting backend inherited by every partition derived from
        #: this table (None = registry default / env var).
        self.count_backend = count_backend

    @property
    def l_prefixes(self):
        """The top-level (less-specific) announcements, sorted."""
        return self._l_prefixes

    @cached_property
    def prefixes(self):
        """All announced prefixes in preorder (parents before children)."""
        out = []
        stack = list(reversed(self._l_prefixes))
        while stack:
            p = stack.pop()
            out.append(p)
            stack.extend(reversed(self.children_of(p)))
        return out

    def children_of(self, prefix: Prefix):
        return list(self._children.get(prefix, ()))

    def __len__(self) -> int:
        return len(self.prefixes)

    def partition(self, view: str) -> Partition:
        """The disjoint interval cover for the requested prefix view."""
        try:
            return self._partitions[view]
        except KeyError:
            pass
        if view == LESS_SPECIFIC:
            part = Partition.from_prefixes(
                self._l_prefixes, count_backend=self.count_backend
            )
        elif view == MORE_SPECIFIC:
            from repro.bgp.deaggregate import partition_table

            forest = {p: self.children_of(p) for p in self.prefixes}
            part = Partition.from_prefixes(
                partition_table(forest, self._l_prefixes),
                count_backend=self.count_backend,
            )
        else:
            raise ValueError(f"unknown prefix view: {view!r}")
        self._partitions[view] = part
        return part
