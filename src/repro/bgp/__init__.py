"""BGP layer: routing-table model, prefix partitions, MRT RIB I/O."""
