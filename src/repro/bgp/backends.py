"""Pluggable per-interval counting backends.

Every layer of the pipeline ultimately answers the same question: given
a sorted, duplicate-free ``int64`` address array and a sorted disjoint
``[start, end)`` interval set, how many addresses fall in each interval?
This module makes the answer a *registry* of interchangeable backends
instead of a hard-wired call:

- ``searchsorted`` — the production two-``searchsorted`` pass
  (:func:`repro.bgp.table.count_in_intervals`); O((n+m) log) and the
  default everywhere.
- ``bitmap``       — a packed NumPy bitmap over the *compacted*
  interval coordinate space: each covered address maps to one bit, and
  per-interval occupancy is a popcount over the interval's bit slice.
  Memory is one bit per covered address, independent of where the
  intervals sit in the 2^32 space.
- ``trie``         — the pure-Python binary radix trie
  (:mod:`repro.core.density`), one longest-prefix-match walk per
  address.  Orders of magnitude slower; kept as the correctness oracle
  the differential test suite checks every other backend against.

Selection is by explicit ``backend=`` argument anywhere counting
happens (``Partition.count_addresses``, ``Selection.count_in``,
``TassStrategy``, ``simulate_campaign``, the analysis ``run_*``
functions) or globally via the ``REPRO_COUNT_BACKEND`` environment
variable.  Registering a new backend is one decorated function::

    from repro.bgp.backends import register_backend

    @register_backend("mybackend")
    def count(starts, ends, values):
        ...  # return per-interval int64 counts

All backends assume the :class:`~repro.census.addrset.AddressSet`
contract: ``values`` sorted and duplicate-free.
"""

from __future__ import annotations

import os
import weakref
from collections import OrderedDict

import numpy as np

from repro.bgp.table import count_in_intervals as _searchsorted_count

__all__ = [
    "ENV_VAR",
    "DEFAULT_BACKEND",
    "register_backend",
    "available_backends",
    "get_backend",
    "resolve_backend_name",
    "count_with_backend",
    "CountCache",
    "COUNT_CACHE",
]

#: Environment variable that selects the process-wide default backend.
ENV_VAR = "REPRO_COUNT_BACKEND"

DEFAULT_BACKEND = "searchsorted"

_REGISTRY: dict[str, object] = {}


def register_backend(name: str):
    """Class-of-one decorator: register ``fn(starts, ends, values)``."""

    def decorate(fn):
        _REGISTRY[name] = fn
        return fn

    return decorate


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def resolve_backend_name(name: str | None = None) -> str:
    """The backend name an explicit/env/default resolution lands on."""
    return name or os.environ.get(ENV_VAR) or DEFAULT_BACKEND


def get_backend(name=None):
    """Resolve a backend by name, env var, or passthrough callable.

    ``None`` falls back to ``$REPRO_COUNT_BACKEND`` and then to the
    ``searchsorted`` default; a callable is returned unchanged so call
    sites can take ad-hoc counting functions too.
    """
    if callable(name):
        return name
    resolved = resolve_backend_name(name)
    try:
        return _REGISTRY[resolved]
    except KeyError:
        raise ValueError(
            f"unknown counting backend {resolved!r}; "
            f"available: {available_backends()}"
        ) from None


def count_with_backend(starts, ends, values, backend=None) -> np.ndarray:
    """Per-interval occupancy via the resolved backend."""
    return get_backend(backend)(starts, ends, values)


# ---------------------------------------------------------------------------
# Cross-wave count reuse
# ---------------------------------------------------------------------------


class CountCache:
    """Memoized per-partition interval counts, keyed on object identity.

    Every wave of a campaign — and every strategy, analysis, and
    accounting pass sharing a snapshot — asks the same question: the
    per-interval occupancy of one immutable sorted address array over
    one partition.  This cache answers it once per
    ``(partition, values, backend)`` triple and hands the same
    read-only counts array to every caller, so ``TassStrategy.plan``,
    ``hold_or_reseed``, ``selection_stats`` and ``simulate_campaign``
    share a single two-``searchsorted`` pass per snapshot instead of
    recounting from scratch.

    Keys are object identities; entries hold the partition and values
    through **weak references**, so the cache never extends a
    snapshot's lifetime — when the owner drops a snapshot, its entries
    die with it (only the small per-interval counts arrays linger,
    bounded by the LRU size).  A recycled ``id`` can therefore collide
    with a dead entry's key; every lookup guards against that by
    re-checking identity through the weakrefs and treating any
    mismatch as a miss.  Only **read-only** ndarrays are cached — a
    writable array could be mutated after insertion and go stale, so
    it bypasses the cache entirely, as does any ad-hoc callable
    backend (no stable name to key on).
    """

    __slots__ = ("maxsize", "hits", "misses", "_entries")

    def __init__(self, maxsize: int = 32):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict = OrderedDict()

    @staticmethod
    def cacheable(values) -> bool:
        """Safe to memoize: an immutable (read-only) 1-D ndarray."""
        return (
            isinstance(values, np.ndarray)
            and values.ndim == 1
            and not values.flags.writeable
        )

    def counts(self, partition, values, backend=None) -> np.ndarray:
        """Per-interval occupancy of ``values`` over ``partition``.

        Identical to ``partition`` counting via
        :func:`count_with_backend`; uncacheable inputs fall straight
        through to the backend.
        """
        if callable(backend) or not self.cacheable(values):
            return count_with_backend(
                partition.starts, partition.ends, values, backend
            )
        name = resolve_backend_name(backend)
        key = (id(partition), id(values), name)
        entry = self._entries.get(key)
        if (
            entry is not None
            and entry[0]() is partition
            and entry[1]() is values
        ):
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[2]
        counts = count_with_backend(
            partition.starts, partition.ends, values, name
        )
        counts = np.asarray(counts, dtype=np.int64)
        counts.setflags(write=False)
        self.misses += 1
        try:
            ref_partition = weakref.ref(partition)
            ref_values = weakref.ref(values)
        except TypeError:
            # Not weak-referenceable: serve the counts uncached rather
            # than pin the objects alive with strong references.
            self._entries.pop(key, None)
            return counts
        self._entries[key] = (ref_partition, ref_values, counts)
        # Sweep entries whose keys died before spending LRU budget on
        # them; then bound whatever remains.
        dead = [
            k
            for k, (rp, rv, _) in self._entries.items()
            if rp() is None or rv() is None
        ]
        for k in dead:
            del self._entries[k]
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return counts

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


#: The process-wide cache every ``Partition.count_addresses`` call
#: (and everything layered on it) routes through.
COUNT_CACHE = CountCache()


# ---------------------------------------------------------------------------
# searchsorted — the production pass
# ---------------------------------------------------------------------------

register_backend("searchsorted")(_searchsorted_count)


# ---------------------------------------------------------------------------
# bitmap — packed occupancy bits over the compacted covered space
# ---------------------------------------------------------------------------

#: Per-byte popcount lookup table.
_POPCOUNT = np.array(
    [bin(b).count("1") for b in range(256)], dtype=np.int64
)


def _bit_rank(cum_bytes, bitmap, bits):
    """Set bits in ``[0, bit)`` of the little-endian packed bitmap."""
    byte = bits >> 3
    rank = cum_bytes[byte]
    rem = bits & 7
    partial = bitmap[np.minimum(byte, len(bitmap) - 1)] & (
        (1 << rem) - 1
    ).astype(np.uint8)
    return rank + _POPCOUNT[partial]


@register_backend("bitmap")
def count_bitmap(starts, ends, values) -> np.ndarray:
    """Bitmap counting: mark each covered address, popcount per slice.

    Addresses are first mapped into the *compacted* coordinate space of
    the interval set (interval i occupies bits
    ``[offset_i, offset_i + size_i)``), so the bitmap costs one bit per
    covered address no matter how sparse the intervals are in the full
    2^32 space.  Counting an interval is then a vectorized popcount of
    its bit slice via a byte-level cumulative sum.
    """
    if np.asarray(starts).dtype.kind == "S":
        # v6 intervals cover up to 2^96 addresses — a one-bit-per-address
        # bitmap is unbuildable.  Count by covering-interval index +
        # bincount instead: same contract, one bucket per interval.
        starts = np.asarray(starts)
        ends = np.asarray(ends)
        values = np.asarray(values)
        if len(starts) == 0:
            return np.zeros(0, dtype=np.int64)
        if values.size == 0:
            return np.zeros(len(starts), dtype=np.int64)
        idx = np.searchsorted(starts, values, side="right") - 1
        safe = idx.clip(0)
        inside = (idx >= 0) & (values < ends[safe])
        return np.bincount(
            safe[inside], minlength=len(starts)
        ).astype(np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    values = np.asarray(values, dtype=np.int64)
    if len(starts) == 0:
        return np.zeros(0, dtype=np.int64)
    sizes = ends - starts
    offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(sizes)]
    )
    total_bits = int(offsets[-1])
    if total_bits == 0:
        return np.zeros(len(starts), dtype=np.int64)
    bitmap = np.zeros((total_bits + 7) >> 3, dtype=np.uint8)
    if values.size and total_bits:
        idx = np.searchsorted(starts, values, side="right") - 1
        safe = idx.clip(0)
        inside = (idx >= 0) & (values < ends[safe])
        hit = safe[inside]
        pos = offsets[hit] + (values[inside] - starts[hit])
        np.bitwise_or.at(
            bitmap, pos >> 3, np.uint8(1) << (pos & 7).astype(np.uint8)
        )
    # cum_bytes[k] = set bits in bytes [0, k); one extra slot so a bit
    # offset landing exactly on the bitmap end indexes cleanly.
    cum_bytes = np.zeros(len(bitmap) + 1, dtype=np.int64)
    np.cumsum(_POPCOUNT[bitmap], out=cum_bytes[1:])
    return _bit_rank(cum_bytes, bitmap, offsets[1:]) - _bit_rank(
        cum_bytes, bitmap, offsets[:-1]
    )


# ---------------------------------------------------------------------------
# trie — the pure-Python longest-prefix-match oracle
# ---------------------------------------------------------------------------


@register_backend("trie")
def count_trie(starts, ends, values) -> np.ndarray:
    """Radix-trie counting over arbitrary ``[start, end)`` intervals.

    Each interval is decomposed into its minimal aligned CIDR cover
    (:func:`repro.bgp.deaggregate.split_range`), the cover is inserted
    into a binary trie mapping to the *source interval* index, and
    every address is longest-prefix-matched one Python iteration at a
    time — the :mod:`repro.core.density` reference generalised beyond
    prefix-shaped partitions.
    """
    from repro.bgp.deaggregate import split_range
    from repro.core.addrspace import space_of
    from repro.core.density import count_lookups, trie_insert

    starts = np.asarray(starts)
    if starts.dtype.kind == "S":
        space = space_of(starts)
        bits = space.bits
        start_ints = space.decode(starts)
        end_ints = space.decode(np.asarray(ends))
    else:
        bits = 32
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        start_ints = starts.tolist()
        end_ints = ends.tolist()
    root = [None, None, None]
    for index, (start, end) in enumerate(zip(start_ints, end_ints)):
        for prefix in split_range(start, end, bits):
            trie_insert(root, prefix.network, prefix.length, index, bits)
    return count_lookups(root, values, len(start_ints), bits)
