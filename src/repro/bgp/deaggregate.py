"""Whole-table deaggregation into the more-specific partition (Figure 2).

``partition_table`` decomposes a prefix forest into the most-specific
non-overlapping cover of the same address space: every leaf announcement
survives as-is, and the portion of each parent not covered by any child
is split into maximal aligned CIDR blocks.  The result is the paper's
"more-specific prefixes" view.
"""

from __future__ import annotations

from repro.bgp.table import Prefix

__all__ = ["partition_table", "split_range"]


def split_range(start: int, end: int, bits: int = 32):
    """Yield maximal aligned CIDR prefixes exactly covering [start, end).

    ``bits`` is the address width (32 for IPv4, 128 for IPv6); Python
    ints are arbitrary precision, so the same arithmetic covers both.
    """
    while start < end:
        # Largest power-of-two block that is aligned at `start`...
        align = start & -start if start else 1 << bits
        # ...and does not overshoot the range.
        span = end - start
        block = 1 << (span.bit_length() - 1)
        size = min(align, block)
        yield Prefix(start, bits - (size.bit_length() - 1), bits)
        start += size


def partition_table(forest, top_level):
    """Decompose a routing forest into disjoint most-specific prefixes.

    ``forest`` maps every prefix to its direct children (possibly empty);
    ``top_level`` lists the disjoint top-level announcements.  Returns
    the parts sorted by network address; their sizes sum to the sizes of
    the top-level prefixes (the announced space is preserved exactly).
    """
    parts = []

    def visit(prefix: Prefix) -> None:
        children = sorted(
            forest.get(prefix) or (), key=lambda p: p.network
        )
        if not children:
            parts.append(prefix)
            return
        cursor = prefix.start
        for child in children:
            parts.extend(split_range(cursor, child.start, prefix.bits))
            visit(child)
            cursor = child.end
        parts.extend(split_range(cursor, prefix.end, prefix.bits))

    for prefix in sorted(top_level, key=lambda p: p.network):
        visit(prefix)
    return parts
