"""Minimal MRT (RFC 6396) TABLE_DUMP_V2 RIB writer/reader.

Implements the subset a pfx2as pipeline needs: one PEER_INDEX_TABLE
record followed by one RIB_IPV4_UNICAST record per prefix, each with a
single route entry carrying ORIGIN and a 4-byte-ASN AS_PATH attribute.
The reader walks the same framing back and recovers (prefix, origin AS)
pairs.
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.bgp.table import Prefix

__all__ = ["write_rib", "read_rib"]

MRT_TABLE_DUMP_V2 = 13
SUBTYPE_PEER_INDEX_TABLE = 1
SUBTYPE_RIB_IPV4_UNICAST = 2

_PEER_TYPE_AS4_IPV4 = 0x02
_ATTR_ORIGIN = 1
_ATTR_AS_PATH = 2
_AS_SEQUENCE = 2
_FLAG_TRANSITIVE = 0x40

_HEADER = struct.Struct(">IHHI")


def _mrt_record(timestamp: int, subtype: int, body: bytes) -> bytes:
    return _HEADER.pack(timestamp, MRT_TABLE_DUMP_V2, subtype, len(body)) + body


def _peer_index_table(collector_id: int = 0x0A000001) -> bytes:
    body = struct.pack(">IH", collector_id, 0)  # no view name
    body += struct.pack(">H", 1)  # one peer
    body += struct.pack(
        ">BIIi", _PEER_TYPE_AS4_IPV4, 0x0A000002, 0x0A000002, 64500
    )
    return body


def _path_attributes(origin_asn: int) -> bytes:
    origin = struct.pack(">BBBB", _FLAG_TRANSITIVE, _ATTR_ORIGIN, 1, 0)
    segment = struct.pack(">BBII", _AS_SEQUENCE, 2, 64500, origin_asn)
    as_path = (
        struct.pack(">BBB", _FLAG_TRANSITIVE, _ATTR_AS_PATH, len(segment))
        + segment
    )
    return origin + as_path


def write_rib(path, entries, timestamp: int = 0) -> int:
    """Write (Prefix, origin_asn) pairs as a TABLE_DUMP_V2 RIB dump.

    Returns the number of RIB records written.
    """
    path = Path(path)
    chunks = [_mrt_record(timestamp, SUBTYPE_PEER_INDEX_TABLE, _peer_index_table())]
    count = 0
    for seq, (prefix, asn) in enumerate(entries):
        nbytes = (prefix.length + 7) // 8
        pfx_bytes = prefix.network.to_bytes(4, "big")[:nbytes]
        attrs = _path_attributes(int(asn))
        body = (
            struct.pack(">IB", seq, prefix.length)
            + pfx_bytes
            + struct.pack(">H", 1)  # one RIB entry
            + struct.pack(">HIH", 0, timestamp, len(attrs))
            + attrs
        )
        chunks.append(_mrt_record(timestamp, SUBTYPE_RIB_IPV4_UNICAST, body))
        count += 1
    path.write_bytes(b"".join(chunks))
    return count


def _parse_origin_asn(attrs: bytes) -> int | None:
    offset = 0
    while offset + 3 <= len(attrs):
        flags, attr_type = attrs[offset], attrs[offset + 1]
        if flags & 0x10:  # extended length
            (alen,) = struct.unpack_from(">H", attrs, offset + 2)
            offset += 4
        else:
            alen = attrs[offset + 2]
            offset += 3
        value = attrs[offset : offset + alen]
        offset += alen
        if attr_type == _ATTR_AS_PATH and len(value) >= 2:
            count = value[1]
            asns = struct.unpack_from(f">{count}I", value, 2)
            if asns:
                return asns[-1]
    return None


def read_rib(path):
    """Parse a TABLE_DUMP_V2 dump back into (Prefix, origin_asn) pairs."""
    data = Path(path).read_bytes()
    out = []
    offset = 0
    while offset + _HEADER.size <= len(data):
        _, mrt_type, subtype, length = _HEADER.unpack_from(data, offset)
        offset += _HEADER.size
        body = data[offset : offset + length]
        offset += length
        if mrt_type != MRT_TABLE_DUMP_V2:
            continue
        if subtype != SUBTYPE_RIB_IPV4_UNICAST:
            continue
        _, plen = struct.unpack_from(">IB", body, 0)
        nbytes = (plen + 7) // 8
        network = int.from_bytes(
            body[5 : 5 + nbytes].ljust(4, b"\x00"), "big"
        )
        pos = 5 + nbytes
        (entry_count,) = struct.unpack_from(">H", body, pos)
        pos += 2
        asn = None
        for _ in range(entry_count):
            _, _, attr_len = struct.unpack_from(">HIH", body, pos)
            pos += 8
            asn = _parse_origin_asn(body[pos : pos + attr_len])
            pos += attr_len
        out.append((Prefix(network, plen), asn))
    return out
