"""Prefix-to-origin-AS mapping from MRT RIB dumps."""

from __future__ import annotations

from repro.bgp.mrt import read_rib

__all__ = ["rib_to_pfx2as"]


def rib_to_pfx2as(path):
    """Parse an MRT RIB dump into a {Prefix: origin_asn} mapping."""
    return {prefix: asn for prefix, asn in read_rib(path)}
