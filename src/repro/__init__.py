"""Reproduction of Klick et al., "Towards Better Internet Citizenship:
Reducing the Footprint of Internet-wide Scans by Topology Aware Prefix
Selection" (IMC 2016).

The package is organised in five layers:

- ``repro.census``  — responsive-address sets and the synthetic census
  dataset generator (snapshots of responsive hosts per protocol/month).
- ``repro.bgp``     — routing-table model: prefixes, the less-/more-
  specific partitions, deaggregation, and MRT RIB import/export.
- ``repro.core``    — the TASS algorithm itself: per-prefix density
  counting, phi-threshold selection, campaign simulation, and the
  /24-clustering refinement used in the ablations.
- ``repro.scan``    — the zmap-class probe substrate: cyclic-group
  permutations, blocklist filtering, and the batched scan engine.
- ``repro.analysis``— regeneration of every figure/table of the paper.

Every hot path operates on sorted NumPy ``int64`` address arrays; no
per-address work is ever done in a Python-level loop (the pure-Python
radix trie in :mod:`repro.core.density` is the deliberate slow
reference that the counting ablation compares against).
"""

__version__ = "0.1.0"
