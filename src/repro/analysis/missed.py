"""§5: what kind of hosts does a phi<1 TASS scan miss?

At the end of the campaign, split the responsive population into hosts
inside and outside the selection and compare their kind composition.
The divergence (total-variation distance) quantifies how biased the
missed set is — missed hosts skew toward the sparse background.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.report import format_table
from repro.bgp.table import LESS_SPECIFIC
from repro.core.tass import TassStrategy

__all__ = ["MissedHostsResult", "run_missed_hosts", "render_missed_hosts"]

PHI = 0.95


@dataclass
class ProtocolMissedRow:
    protocol: str
    found: int
    missed: int
    divergence: float


@dataclass
class MissedHostsResult:
    found_count: int
    missed_count: int
    kind_divergence: float
    kind_names: list
    found_kind_dist: np.ndarray
    missed_kind_dist: np.ndarray
    rows: list = field(default_factory=list)


def _tv_distance(a: np.ndarray, b: np.ndarray) -> float:
    a = a / a.sum() if a.sum() else a
    b = b / b.sum() if b.sum() else b
    return float(0.5 * np.abs(a - b).sum())


def run_missed_hosts(dataset, backend=None) -> MissedHostsResult:
    table = dataset.topology.table
    n_kinds = len(dataset.kind_names)
    total_found = np.zeros(n_kinds, dtype=np.int64)
    total_missed = np.zeros(n_kinds, dtype=np.int64)
    rows = []
    for protocol in dataset.protocols:
        series = dataset.series_for(protocol)
        strategy = TassStrategy(
            table, phi=PHI, view=LESS_SPECIFIC, backend=backend
        )
        selection = strategy.plan(series.seed_snapshot)
        final = series[len(series) - 1]
        inside = selection.membership(final.addresses.values)
        found = np.bincount(
            final.kinds[inside], minlength=n_kinds
        ).astype(np.int64)
        missed = np.bincount(
            final.kinds[~inside], minlength=n_kinds
        ).astype(np.int64)
        total_found += found
        total_missed += missed
        rows.append(
            ProtocolMissedRow(
                protocol=protocol,
                found=int(found.sum()),
                missed=int(missed.sum()),
                divergence=_tv_distance(found, missed),
            )
        )
    return MissedHostsResult(
        found_count=int(total_found.sum()),
        missed_count=int(total_missed.sum()),
        kind_divergence=_tv_distance(total_found, total_missed),
        kind_names=list(dataset.kind_names),
        found_kind_dist=total_found,
        missed_kind_dist=total_missed,
        rows=rows,
    )


def render_missed_hosts(result: MissedHostsResult) -> str:
    rows = [
        (
            row.protocol,
            row.found,
            row.missed,
            f"{row.divergence:.3f}",
        )
        for row in result.rows
    ]
    rows.append(
        (
            "all",
            result.found_count,
            result.missed_count,
            f"{result.kind_divergence:.3f}",
        )
    )
    found = result.found_kind_dist / max(result.found_kind_dist.sum(), 1)
    missed = result.missed_kind_dist / max(result.missed_kind_dist.sum(), 1)
    kind_rows = [
        (name, f"{f:.3f}", f"{m:.3f}")
        for name, f, m in zip(result.kind_names, found, missed)
    ]
    return (
        format_table(
            ["protocol", "found", "missed", "kind divergence"],
            rows,
            title=f"Found vs missed hosts at month 6 (phi={PHI})",
        )
        + "\n\n"
        + format_table(
            ["kind", "found share", "missed share"], kind_rows
        )
    )
