"""Figure 5: hitlist hitrate over time.

Scanning the seed hitlist (the exact responsive addresses of month 0)
against every later month: server protocols retain ~80% after one
month, CWMP collapses — renumbering destroys address-level lists.
"""

from __future__ import annotations

from repro.analysis.report import format_table

__all__ = ["Figure5Result", "run_figure5", "render_figure5"]


class Figure5Result:
    def __init__(self, rates):
        self._rates = rates  # {protocol: [hitrate per month]}

    def hitrates(self) -> dict:
        return {p: list(r) for p, r in self._rates.items()}


def run_figure5(dataset) -> Figure5Result:
    rates = {}
    for protocol in dataset.protocols:
        series = dataset.series_for(protocol)
        seed = series.seed_snapshot.addresses
        rates[protocol] = [
            snapshot.addresses.intersection_count(seed) / len(seed)
            for snapshot in series
        ]
    return Figure5Result(rates)


def render_figure5(result: Figure5Result) -> str:
    rates = result.hitrates()
    months = len(next(iter(rates.values())))
    rows = [
        (protocol, *(f"{r:.3f}" for r in series))
        for protocol, series in sorted(rates.items())
    ]
    return format_table(
        ["protocol", *(f"m{m}" for m in range(months))],
        rows,
        title="Figure 5: hitlist hitrate over time",
    )
