"""§2: decomposition of monthly hitlist loss.

Every address present in month t but gone in month t+1 is classified by
what happened to the host that owned it: *renumbering* (alive at a new
address in the same routed prefix — prefix scans survive this), *moved*
(alive in a different prefix), or *died*.  The paper's stability
argument requires renumbering to dominate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import format_table
from repro.bgp.table import LESS_SPECIFIC

__all__ = [
    "ChurnBreakdown",
    "ChurnRow",
    "ChurnDecompositionResult",
    "run_churn_decomposition",
    "render_churn_decomposition",
]


@dataclass
class ChurnBreakdown:
    renumbered: int
    moved: int
    died: int

    @property
    def lost(self) -> int:
        return self.renumbered + self.moved + self.died

    @property
    def renumbering_share(self) -> float:
        return self.renumbered / self.lost if self.lost else 0.0

    @property
    def moved_share(self) -> float:
        return self.moved / self.lost if self.lost else 0.0

    @property
    def death_share(self) -> float:
        return self.died / self.lost if self.lost else 0.0


@dataclass
class ChurnRow:
    protocol: str
    breakdown: ChurnBreakdown


class ChurnDecompositionResult:
    def __init__(self, rows):
        self.rows = list(rows)


def _decompose(partition, series) -> ChurnBreakdown:
    renumbered = moved = died = 0
    for month in range(len(series) - 1):
        cur, nxt = series[month], series[month + 1]
        cur_values = cur.addresses.values
        nxt_values = nxt.addresses.values
        lost = ~nxt.addresses.membership(cur_values)
        lost_hids = cur.host_ids[lost]
        lost_addrs = cur_values[lost]

        # Locate the lost hosts in the next snapshot by host id.
        order = np.argsort(nxt.host_ids, kind="stable")
        sorted_hids = nxt.host_ids[order]
        pos = np.searchsorted(sorted_hids, lost_hids)
        pos_safe = pos.clip(max=len(sorted_hids) - 1)
        alive = (pos < len(sorted_hids)) & (
            sorted_hids[pos_safe] == lost_hids
        )
        died += int((~alive).sum())

        new_addrs = nxt_values[order[pos_safe[alive]]]
        old_parts = partition.index_of(lost_addrs[alive])
        new_parts = partition.index_of(new_addrs)
        same = old_parts == new_parts
        renumbered += int(same.sum())
        moved += int((~same).sum())
    return ChurnBreakdown(renumbered=renumbered, moved=moved, died=died)


def run_churn_decomposition(dataset) -> ChurnDecompositionResult:
    partition = dataset.topology.table.partition(LESS_SPECIFIC)
    rows = [
        ChurnRow(
            protocol=protocol,
            breakdown=_decompose(partition, dataset.series_for(protocol)),
        )
        for protocol in dataset.protocols
    ]
    return ChurnDecompositionResult(rows)


def render_churn_decomposition(result: ChurnDecompositionResult) -> str:
    rows = [
        (
            row.protocol,
            row.breakdown.lost,
            f"{row.breakdown.renumbering_share:.3f}",
            f"{row.breakdown.moved_share:.3f}",
            f"{row.breakdown.death_share:.3f}",
        )
        for row in result.rows
    ]
    return format_table(
        [
            "protocol",
            "addresses lost",
            "renumbering share",
            "moved share",
            "death share",
        ],
        rows,
        title="Churn decomposition of monthly hitlist loss",
    )
