"""Figure 4: density-ranked cumulative coverage curves.

Rank prefixes by responsive-address density, then plot cumulative host
coverage against cumulative space coverage.  The sharp knee — half of
all hosts inside a few percent of the space — is the concentration the
whole TASS argument rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.analysis.report import format_table
from repro.bgp.table import LESS_SPECIFIC, MORE_SPECIFIC

__all__ = [
    "Figure4Result",
    "run_figure4",
    "render_figure4",
    "export_figure4_csv",
]

_VIEWS = (LESS_SPECIFIC, MORE_SPECIFIC)


@dataclass
class CoverageCurve:
    """Cumulative coverage along the density ranking of one view."""

    space_frac: np.ndarray  # cumulative fraction of announced space
    host_frac: np.ndarray  # cumulative fraction of responsive hosts

    def space_at_host(self, target: float) -> float:
        """Space needed to reach a host-coverage target."""
        idx = int(np.searchsorted(self.host_frac, target, side="left"))
        idx = min(idx, len(self.space_frac) - 1)
        return float(self.space_frac[idx])


class Figure4Result:
    def __init__(self, curves):
        self.curves = curves  # {(view, protocol): CoverageCurve}

    def knee_stats(self, view, protocol) -> dict:
        curve = self.curves[(view, protocol)]
        return {
            "space_at_host_0.5": curve.space_at_host(0.5),
            "space_at_host_0.9": curve.space_at_host(0.9),
            "space_at_host_0.95": curve.space_at_host(0.95),
        }


def run_figure4(dataset, backend=None) -> Figure4Result:
    table = dataset.topology.table
    curves = {}
    for view in _VIEWS:
        partition = table.partition(view)
        sizes = partition.sizes
        announced = partition.address_count()
        for protocol in dataset.protocols:
            seed = dataset.series_for(protocol).seed_snapshot
            counts = partition.count_addresses(
                seed.addresses.values, backend=backend
            )
            density = counts / sizes
            order = np.argsort(-density, kind="stable")
            space = np.cumsum(sizes[order]) / announced
            hosts = np.cumsum(counts[order]) / counts.sum()
            curves[(view, protocol)] = CoverageCurve(space, hosts)
    return Figure4Result(curves)


def render_figure4(result: Figure4Result) -> str:
    rows = []
    for (view, protocol), curve in sorted(result.curves.items()):
        knees = result.knee_stats(view, protocol)
        rows.append(
            (
                view,
                protocol,
                f"{knees['space_at_host_0.5']:.4f}",
                f"{knees['space_at_host_0.9']:.4f}",
                f"{knees['space_at_host_0.95']:.4f}",
            )
        )
    return format_table(
        ["view", "protocol", "space@50%", "space@90%", "space@95%"],
        rows,
        title="Figure 4: space needed per host-coverage level",
    )


def export_figure4_csv(result: Figure4Result, directory) -> list:
    """Export every per-rank series as CSV; returns the written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for (view, protocol), curve in sorted(result.curves.items()):
        path = directory / f"figure4_{view}_{protocol}.csv"
        data = np.column_stack(
            [
                np.arange(1, len(curve.space_frac) + 1),
                curve.space_frac,
                curve.host_frac,
            ]
        )
        np.savetxt(
            path,
            data,
            delimiter=",",
            header="rank,space_frac,host_frac",
            comments="",
            fmt=("%d", "%.8f", "%.8f"),
        )
        written.append(path)
    return written
