"""Table 1: address-space coverage of the phi-threshold selection.

Sweeps phi over {1, 0.99, 0.95, 0.7, 0.5} for every protocol and both
prefix views.  The per-prefix counting happens once per (view,
protocol); the phi sweep reuses the same density ranking.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.bgp.table import LESS_SPECIFIC, MORE_SPECIFIC
from repro.core.tass import select_by_density

__all__ = ["PHIS", "Table1Result", "run_table1", "render_table1"]

PHIS = (1.0, 0.99, 0.95, 0.7, 0.5)
_VIEWS = (LESS_SPECIFIC, MORE_SPECIFIC)


class Table1Result:
    def __init__(self, protocols, cells):
        self.protocols = list(protocols)
        self.cells = cells  # {(view, phi, protocol): space coverage}

    def cell(self, view, phi, protocol) -> float:
        return self.cells[(view, phi, protocol)]


def run_table1(dataset, backend=None) -> Table1Result:
    table = dataset.topology.table
    cells = {}
    for view in _VIEWS:
        partition = table.partition(view)
        for protocol in dataset.protocols:
            seed = dataset.series_for(protocol).seed_snapshot
            counts = partition.count_addresses(
                seed.addresses.values, backend=backend
            )
            for phi in PHIS:
                selection = select_by_density(partition, counts, phi)
                cells[(view, phi, protocol)] = selection.space_coverage
    return Table1Result(dataset.protocols, cells)


def render_table1(result: Table1Result) -> str:
    rows = []
    for view in _VIEWS:
        for phi in PHIS:
            rows.append(
                (
                    view,
                    f"{phi:.2f}",
                    *(
                        f"{result.cell(view, phi, p) * 100:5.1f}%"
                        for p in result.protocols
                    ),
                )
            )
    return format_table(
        ["view", "phi", *result.protocols],
        rows,
        title="Table 1: space coverage of the phi-threshold selection",
    )
