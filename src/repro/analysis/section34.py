"""§3.4 headline statistics (FTP).

The two numbers the paper leads with: dropping phi from 1 to 0.95
collapses the scanned space (27.3% vs 76.2% in the paper), and the
densest ~15% of prefixes hold the majority of hosts in under a tenth
of the announced space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import format_table
from repro.bgp.table import LESS_SPECIFIC, MORE_SPECIFIC
from repro.core.tass import select_by_density

__all__ = ["Section34Result", "run_section34", "render_section34"]

DENSE_PREFIX_FRAC = 0.15
PROTOCOL = "ftp"


@dataclass
class Section34Result:
    phi1_space_less: float
    phi95_space_less: float
    phi1_space_more: float
    phi95_space_more: float
    dense_host_coverage: float
    dense_space_coverage: float
    dense_prefix_frac: float = DENSE_PREFIX_FRAC


def run_section34(dataset, backend=None) -> Section34Result:
    table = dataset.topology.table
    seed = dataset.series_for(PROTOCOL).seed_snapshot
    spaces = {}
    for view in (LESS_SPECIFIC, MORE_SPECIFIC):
        partition = table.partition(view)
        counts = partition.count_addresses(
            seed.addresses.values, backend=backend
        )
        for phi in (1.0, 0.95):
            spaces[(view, phi)] = select_by_density(
                partition, counts, phi
            ).space_coverage

    # Densest ~15% of l-prefixes: their share of hosts and of space.
    partition = table.partition(LESS_SPECIFIC)
    counts = partition.count_addresses(seed.addresses.values, backend=backend)
    density = counts / partition.sizes
    order = np.argsort(-density, kind="stable")
    top = order[: max(1, int(DENSE_PREFIX_FRAC * len(partition)))]
    dense_hosts = counts[top].sum() / counts.sum()
    dense_space = partition.sizes[top].sum() / partition.address_count()

    return Section34Result(
        phi1_space_less=spaces[(LESS_SPECIFIC, 1.0)],
        phi95_space_less=spaces[(LESS_SPECIFIC, 0.95)],
        phi1_space_more=spaces[(MORE_SPECIFIC, 1.0)],
        phi95_space_more=spaces[(MORE_SPECIFIC, 0.95)],
        dense_host_coverage=float(dense_hosts),
        dense_space_coverage=float(dense_space),
    )


def render_section34(result: Section34Result) -> str:
    rows = [
        ("space @ phi=1, l-view", f"{result.phi1_space_less * 100:.1f}%"),
        ("space @ phi=0.95, l-view", f"{result.phi95_space_less * 100:.1f}%"),
        ("space @ phi=1, m-view", f"{result.phi1_space_more * 100:.1f}%"),
        ("space @ phi=0.95, m-view", f"{result.phi95_space_more * 100:.1f}%"),
        (
            f"hosts in densest {result.dense_prefix_frac:.0%} of prefixes",
            f"{result.dense_host_coverage * 100:.1f}%",
        ),
        (
            f"space of densest {result.dense_prefix_frac:.0%} of prefixes",
            f"{result.dense_space_coverage * 100:.1f}%",
        ),
    ]
    return format_table(
        ["statistic", "value"],
        rows,
        title="Section 3.4 headline statistics (FTP)",
    )
