"""Analysis layer: regeneration of every figure and table of the paper."""
