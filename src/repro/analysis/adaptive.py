"""Static vs adaptive TASS.

The static strategy fixes its selection at seed time.  The adaptive
variant spends a small monthly exploration budget on uniform probes
into the unselected announced space and absorbs any prefix where
exploration finds responsive hosts.  It can only gain hitrate (the
selection only grows) at the cost of the exploration probes.

The per-wave cores (complement sampling, selection accounting,
exploration + absorption) live in :mod:`repro.orchestrator.waves`, so
the same logic both renders this analysis and drives live campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import format_table
from repro.bgp.table import LESS_SPECIFIC
from repro.core.tass import select_by_density
from repro.orchestrator.waves import explore_unselected, selection_stats

__all__ = ["AdaptiveComparison", "AdaptiveResult", "run_adaptive", "render_adaptive"]

PHI = 0.95
EXPLORE_FRAC = 0.01  # monthly exploration budget vs unselected space


@dataclass
class AdaptiveComparison:
    protocol: str
    static_final: float
    adaptive_final: float
    hitrate_gain_month6: float
    static_probes: int
    adaptive_probes: int
    probe_overhead: float
    absorbed_prefixes: int


class AdaptiveResult:
    def __init__(self, comparisons):
        self.comparisons = list(comparisons)


def run_adaptive(dataset, backend=None) -> AdaptiveResult:
    table = dataset.topology.table
    partition = table.partition(LESS_SPECIFIC)
    announced = partition.address_count()
    comparisons = []
    for pi, protocol in enumerate(dataset.protocols):
        rng = np.random.default_rng(1000 + pi)
        series = dataset.series_for(protocol)
        seed_counts = partition.count_addresses(
            series.seed_snapshot.addresses.values, backend=backend
        )
        base = select_by_density(partition, seed_counts, PHI)

        static_sel = np.zeros(len(partition), dtype=bool)
        static_sel[base.indices] = True
        adaptive_sel = static_sel.copy()

        static_probes = announced
        adaptive_probes = announced
        static_final = adaptive_final = 0.0
        absorbed = 0
        for month in range(1, len(series)):
            values = series[month].addresses.values
            s_found, s_size = selection_stats(
                partition, static_sel, values, backend=backend
            )
            static_probes += s_size
            static_final = s_found / len(values)

            a_found, a_size = selection_stats(
                partition, adaptive_sel, values, backend=backend
            )
            explore_n = max(
                1, int(EXPLORE_FRAC * (announced - a_size))
            )
            _, hits, fresh = explore_unselected(
                rng, partition, adaptive_sel, values, explore_n
            )
            adaptive_probes += a_size + explore_n
            adaptive_final = (a_found + len(hits)) / len(values)
            adaptive_sel[fresh] = True
            absorbed += len(fresh)

        comparisons.append(
            AdaptiveComparison(
                protocol=protocol,
                static_final=static_final,
                adaptive_final=adaptive_final,
                hitrate_gain_month6=adaptive_final - static_final,
                static_probes=int(static_probes),
                adaptive_probes=int(adaptive_probes),
                probe_overhead=(adaptive_probes - static_probes)
                / static_probes,
                absorbed_prefixes=absorbed,
            )
        )
    return AdaptiveResult(comparisons)


def render_adaptive(result: AdaptiveResult) -> str:
    rows = [
        (
            c.protocol,
            f"{c.static_final:.3f}",
            f"{c.adaptive_final:.3f}",
            f"{c.hitrate_gain_month6 * 100:+.2f}pp",
            f"{c.probe_overhead * 100:.2f}%",
            c.absorbed_prefixes,
        )
        for c in result.comparisons
    ]
    return format_table(
        [
            "protocol",
            "static m6 hitrate",
            "adaptive m6 hitrate",
            "gain",
            "probe overhead",
            "absorbed prefixes",
        ],
        rows,
        title=f"Static vs adaptive TASS (phi={PHI}, l-view)",
    )
