"""Figure 1: the nested scopes a scanning strategy can target.

The full /0, the IANA-allocated blocks, the BGP-announced space, and
the per-protocol hitlists form a strict chain of inclusions — the
figure the paper opens with to motivate scanning less than /0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import format_count, format_table
from repro.bgp.table import LESS_SPECIFIC

__all__ = ["Figure1Result", "run_figure1", "render_figure1"]


@dataclass
class Figure1Result:
    iana_slash0: int
    iana_allocated: int
    bgp_announced: int
    hitlist_sizes: dict = field(default_factory=dict)


def run_figure1(dataset) -> Figure1Result:
    topology = dataset.topology
    announced = topology.table.partition(LESS_SPECIFIC).address_count()
    hitlists = {
        protocol: len(dataset.series_for(protocol).seed_snapshot)
        for protocol in dataset.protocols
    }
    return Figure1Result(
        iana_slash0=1 << 32,
        iana_allocated=topology.allocated_address_count(),
        bgp_announced=announced,
        hitlist_sizes=hitlists,
    )


def render_figure1(result: Figure1Result) -> str:
    slash0 = result.iana_slash0
    rows = [
        ("IPv4 /0", format_count(slash0), "1.0000"),
        (
            "IANA allocated",
            format_count(result.iana_allocated),
            f"{result.iana_allocated / slash0:.4f}",
        ),
        (
            "BGP announced",
            format_count(result.bgp_announced),
            f"{result.bgp_announced / slash0:.4f}",
        ),
    ]
    for protocol, size in sorted(result.hitlist_sizes.items()):
        rows.append(
            (
                f"hitlist ({protocol})",
                format_count(size),
                f"{size / slash0:.6f}",
            )
        )
    return format_table(
        ["scope", "addresses", "fraction of /0"],
        rows,
        title="Figure 1: scanning-strategy scopes",
    )
