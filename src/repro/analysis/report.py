"""Plain-text table rendering for regenerated figures and tables."""

from __future__ import annotations

__all__ = ["format_table", "format_count"]


def format_count(n: int) -> str:
    """Human-scale rendering of an address count (e.g. ``2.81B``)."""
    n = int(n)
    for threshold, suffix in ((10**9, "B"), (10**6, "M"), (10**3, "K")):
        if abs(n) >= threshold:
            return f"{n / threshold:.2f}{suffix}"
    return str(n)


def format_table(headers, rows, title: str | None = None) -> str:
    """Render an aligned monospace table with optional title."""
    headers = [str(h) for h in headers]
    body = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)
