"""Figure 3: responsive hosts per prefix length, monthly, both views.

Seven measurements x two protocol panels x both prefix views; the
distributions are stable over time and the more-specific view is
shifted to longer prefixes.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.bgp.table import LESS_SPECIFIC, MORE_SPECIFIC

__all__ = ["Figure3Result", "run_figure3", "render_figure3"]

_VIEWS = (LESS_SPECIFIC, MORE_SPECIFIC)
_MAX_LENGTH = 33


class Figure3Result:
    """Host-per-prefix-length histograms per (view, protocol, month)."""

    def __init__(self, protocols, hists):
        self.protocols = list(protocols)
        self.hists = hists  # {(view, protocol): (months, 33) array}

    def distribution(self, view, protocol, month) -> np.ndarray:
        hist = self.hists[(view, protocol)][month].astype(float)
        total = hist.sum()
        return hist / total if total else hist

    def stability(self, view, protocol) -> float:
        """Worst total-variation distance of any month vs the seed."""
        months = self.hists[(view, protocol)].shape[0]
        base = self.distribution(view, protocol, 0)
        return max(
            0.5
            * np.abs(self.distribution(view, protocol, m) - base).sum()
            for m in range(1, months)
        )

    def mean_length(self, view, protocol) -> float:
        """Host-weighted mean covering-prefix length over all months."""
        hist = self.hists[(view, protocol)].sum(axis=0).astype(float)
        lengths = np.arange(_MAX_LENGTH)
        return float((hist * lengths).sum() / hist.sum())


def run_figure3(dataset, backend=None) -> Figure3Result:
    table = dataset.topology.table
    hists = {}
    for view in _VIEWS:
        partition = table.partition(view)
        lengths = partition.lengths
        for protocol in dataset.protocols:
            series = dataset.series_for(protocol)
            rows = np.zeros((len(series), _MAX_LENGTH), dtype=np.int64)
            for month, snapshot in enumerate(series):
                counts = partition.count_addresses(
                    snapshot.addresses.values, backend=backend
                )
                rows[month] = np.bincount(
                    lengths, weights=counts, minlength=_MAX_LENGTH
                ).astype(np.int64)
            hists[(view, protocol)] = rows
    return Figure3Result(dataset.protocols, hists)


def render_figure3(result: Figure3Result) -> str:
    rows = []
    for view in _VIEWS:
        for protocol in result.protocols:
            rows.append(
                (
                    view,
                    protocol,
                    f"{result.mean_length(view, protocol):.2f}",
                    f"{result.stability(view, protocol):.4f}",
                )
            )
    return format_table(
        ["view", "protocol", "mean prefix length", "stability (max TV)"],
        rows,
        title="Figure 3: hosts per prefix length (7 monthly measurements)",
    )
