"""Figure 2: deaggregation of the routing table into m-prefixes.

Decomposes the whole table into the most-specific non-overlapping
partition and reports how announcement counts shift toward longer
prefixes — while covering exactly the same announced space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.report import format_table
from repro.bgp.table import LESS_SPECIFIC, MORE_SPECIFIC

__all__ = ["Figure2Result", "run_figure2", "render_figure2"]


@dataclass
class Figure2Result:
    n_less: int
    n_more: int
    announced: int
    partition_covers_announced: bool
    length_hist_less: dict = field(default_factory=dict)
    length_hist_more: dict = field(default_factory=dict)


def _length_hist(partition) -> dict:
    lengths, counts = np.unique(partition.lengths, return_counts=True)
    return dict(zip(lengths.tolist(), counts.tolist()))


def run_figure2(dataset) -> Figure2Result:
    table = dataset.topology.table
    less = table.partition(LESS_SPECIFIC)
    more = table.partition(MORE_SPECIFIC)
    return Figure2Result(
        n_less=len(less),
        n_more=len(more),
        announced=less.address_count(),
        partition_covers_announced=(
            more.address_count() == less.address_count()
        ),
        length_hist_less=_length_hist(less),
        length_hist_more=_length_hist(more),
    )


def render_figure2(result: Figure2Result) -> str:
    lengths = sorted(
        set(result.length_hist_less) | set(result.length_hist_more)
    )
    rows = [
        (
            f"/{length}",
            result.length_hist_less.get(length, 0),
            result.length_hist_more.get(length, 0),
        )
        for length in lengths
    ]
    rows.append(("total", result.n_less, result.n_more))
    return format_table(
        ["prefix length", "l-prefixes", "m-prefixes"],
        rows,
        title=(
            "Figure 2: prefix deaggregation "
            f"(partition covers announced: "
            f"{result.partition_covers_announced})"
        ),
    )
