"""Figure 6: TASS hitrate over time (both panels).

Campaigns for phi=1 and phi=0.95, both prefix views, all protocols.
Prefix scanning survives the renumbering that destroys hitlists: the
less-specific view decays only a fraction of a percent per month.
"""

from __future__ import annotations

from itertools import product

from repro.analysis.report import format_table
from repro.bgp.table import LESS_SPECIFIC, MORE_SPECIFIC
from repro.core.simulate import simulate_campaign
from repro.core.tass import TassStrategy

__all__ = ["Figure6Result", "run_figure6", "render_figure6"]

_PHIS = (1.0, 0.95)
_VIEWS = (LESS_SPECIFIC, MORE_SPECIFIC)


class Figure6Result:
    def __init__(self, campaigns):
        self.campaigns = campaigns  # {(phi, view, protocol): Campaign}

    def decay(self, phi, view, protocol) -> float:
        return self.campaigns[(phi, view, protocol)].decay_per_month()


def run_figure6(dataset, backend=None) -> Figure6Result:
    table = dataset.topology.table
    campaigns = {}
    for phi, view, protocol in product(_PHIS, _VIEWS, dataset.protocols):
        strategy = TassStrategy(table, phi=phi, view=view, backend=backend)
        campaigns[(phi, view, protocol)] = simulate_campaign(
            strategy, dataset.series_for(protocol), backend=backend
        )
    return Figure6Result(campaigns)


def render_figure6(result: Figure6Result) -> str:
    rows = []
    for (phi, view, protocol), campaign in sorted(
        result.campaigns.items(), key=lambda kv: (-kv[0][0], kv[0][1:])
    ):
        rates = campaign.hitrates()
        rows.append(
            (
                f"{phi:.2f}",
                view,
                protocol,
                f"{rates[0]:.3f}",
                f"{rates[-1]:.3f}",
                f"{campaign.decay_per_month() * 100:+.3f}%",
            )
        )
    return format_table(
        ["phi", "view", "protocol", "month 0", "month 6", "decay/month"],
        rows,
        title="Figure 6: TASS hitrate over time",
    )
