"""§1/§4 efficiency headline: TASS vs periodic full scans.

Full campaign accounting over the whole series: a TASS campaign costs
one full seed scan of the announced space plus one selection-sized scan
per later month; the baseline rescans the announced space every month.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.analysis.report import format_table
from repro.bgp.table import LESS_SPECIFIC, MORE_SPECIFIC
from repro.core.simulate import simulate_campaign
from repro.core.tass import TassStrategy

__all__ = ["EfficiencyRow", "EfficiencyResult", "run_efficiency", "render_efficiency"]

_SETTINGS = tuple(
    product((LESS_SPECIFIC, MORE_SPECIFIC), (1.0, 0.95))
)


@dataclass
class EfficiencyRow:
    protocol: str
    view: str
    phi: float
    tass_probes: int
    full_probes: int
    ratio: float  # full / tass: how many times cheaper TASS is
    final_hitrate: float


class EfficiencyResult:
    def __init__(self, rows):
        self.rows = list(rows)

    def ratio_range(self) -> tuple:
        ratios = [row.ratio for row in self.rows]
        return min(ratios), max(ratios)


def run_efficiency(dataset, backend=None) -> EfficiencyResult:
    table = dataset.topology.table
    announced = table.partition(LESS_SPECIFIC).address_count()
    rows = []
    for protocol in dataset.protocols:
        series = dataset.series_for(protocol)
        months = len(series)
        full_probes = months * announced
        for view, phi in _SETTINGS:
            strategy = TassStrategy(table, phi=phi, view=view, backend=backend)
            campaign = simulate_campaign(strategy, series, backend=backend)
            selection = strategy.last_selection
            tass_probes = announced + (months - 1) * selection.probe_count()
            rows.append(
                EfficiencyRow(
                    protocol=protocol,
                    view=view,
                    phi=phi,
                    tass_probes=tass_probes,
                    full_probes=full_probes,
                    ratio=full_probes / tass_probes,
                    final_hitrate=campaign.hitrates()[-1],
                )
            )
    return EfficiencyResult(rows)


def render_efficiency(result: EfficiencyResult) -> str:
    rows = [
        (
            row.protocol,
            row.view,
            f"{row.phi:.2f}",
            f"{row.ratio:.2f}x",
            f"{row.final_hitrate:.3f}",
        )
        for row in result.rows
    ]
    low, high = result.ratio_range()
    return format_table(
        ["protocol", "view", "phi", "efficiency vs full", "month-6 hitrate"],
        rows,
        title=(
            "Efficiency: TASS vs periodic full scans "
            f"(range {low:.2f}x-{high:.2f}x)"
        ),
    )
