"""TASS step 5: how often should the selection be re-seeded?

Re-seeding re-derives the selection from a fresh full scan of the
announced space.  More frequent re-seeds keep the hitrate pinned at the
phi target but cost a full-space scan each time — this sweep quantifies
the probes-vs-accuracy trade-off.

The per-wave hold-or-reseed step lives in
:mod:`repro.orchestrator.waves`, shared with the campaign runner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.bgp.table import LESS_SPECIFIC
from repro.core.tass import TassStrategy
from repro.orchestrator.waves import hold_or_reseed

__all__ = ["ReseedRow", "ReseedingResult", "run_reseeding", "render_reseeding"]

PHI = 0.95
INTERVALS = (None, 1, 2, 3)


@dataclass
class ReseedRow:
    protocol: str
    reseed_every: int | None
    total_probes: int
    worst_hitrate: float
    final_hitrate: float
    reseeds: int


class ReseedingResult:
    def __init__(self, rows):
        self.rows = list(rows)

    def for_protocol(self, protocol):
        return [row for row in self.rows if row.protocol == protocol]


def _simulate(table, series, announced, reseed_every, backend=None) -> ReseedRow:
    strategy = TassStrategy(table, phi=PHI, view=LESS_SPECIFIC, backend=backend)
    selection = strategy.plan(series.seed_snapshot)
    probes = announced  # the seed month is always a full discovery scan
    rates = [1.0]
    reseeds = 0
    for month in range(1, len(series)):
        snapshot = series[month]
        reseed = reseed_every is not None and month % reseed_every == 0
        selection, month_probes, rate = hold_or_reseed(
            strategy, selection, snapshot, reseed, announced,
            backend=backend,
        )
        probes += month_probes
        rates.append(rate)
        reseeds += int(reseed)
    return ReseedRow(
        protocol=series.protocol,
        reseed_every=reseed_every,
        total_probes=int(probes),
        worst_hitrate=min(rates),
        final_hitrate=rates[-1],
        reseeds=reseeds,
    )


def run_reseeding(dataset, backend=None) -> ReseedingResult:
    table = dataset.topology.table
    announced = table.partition(LESS_SPECIFIC).address_count()
    rows = []
    for protocol in dataset.protocols:
        series = dataset.series_for(protocol)
        for interval in INTERVALS:
            rows.append(
                _simulate(table, series, announced, interval, backend=backend)
            )
    return ReseedingResult(rows)


def render_reseeding(result: ReseedingResult) -> str:
    rows = [
        (
            row.protocol,
            "never" if row.reseed_every is None else str(row.reseed_every),
            row.total_probes,
            f"{row.worst_hitrate:.3f}",
            f"{row.final_hitrate:.3f}",
        )
        for row in result.rows
    ]
    return format_table(
        [
            "protocol",
            "reseed every (months)",
            "total probes",
            "worst hitrate",
            "final hitrate",
        ],
        rows,
        title=f"Re-seed interval sweep (phi={PHI}, l-view)",
    )
