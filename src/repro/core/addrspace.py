"""Address-family abstraction: 32-bit IPv4 and 128-bit IPv6 spaces.

Every width assumption in the pipeline routes through an
:class:`AddressSpace`: the ``v4`` family keeps today's ``int64``
representation and semantics untouched, while the ``v6`` family stores
128-bit addresses as big-endian 16-byte strings (NumPy dtype ``S16``).

Why ``S16``: big-endian fixed-width byte strings compare
lexicographically in numeric order, so every sorted-array idiom the
repro is built on — ``np.sort``, ``np.unique``, ``np.searchsorted``,
elementwise ``==``/``<`` — works unchanged on 128-bit addresses without
object arrays or (hi, lo) split bookkeeping at the call sites.  The two
things ``S16`` cannot do are arithmetic and ``np.maximum``-style ufuncs;
those few call sites dispatch on the family and do exact math in Python
ints (arbitrary precision, so 2^128 is not special).

One subtlety: NumPy's ``S`` kind strips *trailing* NUL bytes when a
scalar is extracted, so ``bytes(scalar)`` may be shorter than 16 bytes.
All decode paths therefore right-pad with ``b"\\0"`` — numerically this
re-appends the stripped low-order zero bytes.
"""

from __future__ import annotations

import ipaddress

import numpy as np

__all__ = [
    "AddressSpace",
    "V4",
    "V6",
    "FAMILIES",
    "get_space",
    "family_of",
    "space_of",
]

#: dtype of the v6 representation: 16 big-endian bytes per address.
V6_DTYPE = np.dtype("S16")


class AddressSpace:
    """One address family: its width, dtype, and codec helpers.

    Instances are stateless singletons (:data:`V4`, :data:`V6`);
    equality is identity.
    """

    __slots__ = ("name", "bits", "dtype")

    def __init__(self, name: str, bits: int, dtype: np.dtype):
        self.name = name
        self.bits = bits
        self.dtype = np.dtype(dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AddressSpace({self.name!r})"

    # -- scalar codec ---------------------------------------------------

    def encode_scalar(self, value: int):
        """A Python int -> one array-compatible scalar of this family."""
        if self.bits == 32:
            return np.int64(value)
        return int(value).to_bytes(16, "big")

    def decode_scalar(self, value) -> int:
        """One array element of this family -> a Python int."""
        if self.bits == 32:
            return int(value)
        # NumPy strips trailing NULs from S-kind scalars; re-pad.
        return int.from_bytes(bytes(value).ljust(16, b"\0"), "big")

    # -- array codec ----------------------------------------------------

    def encode(self, values) -> np.ndarray:
        """A sequence of Python ints -> an array of this family."""
        if self.bits == 32:
            return np.asarray(values, dtype=np.int64)
        blob = b"".join(int(v).to_bytes(16, "big") for v in values)
        return np.frombuffer(blob, dtype=V6_DTYPE)

    def decode(self, arr) -> list:
        """An array of this family -> a list of Python ints."""
        arr = np.asarray(arr, dtype=self.dtype)
        if self.bits == 32:
            return [int(v) for v in arr.tolist()]
        raw = np.frombuffer(arr.tobytes(), dtype=np.uint8).reshape(-1, 16)
        return [
            int.from_bytes(bytes(row), "big") for row in raw
        ]

    def asarray(self, values) -> np.ndarray:
        """Coerce to this family's dtype (ints are encoded for v6)."""
        arr = np.asarray(values)
        if arr.dtype == self.dtype:
            return arr
        if self.bits == 32:
            return arr.astype(np.int64)
        if arr.dtype.kind in "SV" and arr.dtype.itemsize == 16:
            return arr.view(V6_DTYPE)
        # A sequence of Python ints (object array after asarray).
        return self.encode(arr.reshape(-1).tolist())

    def empty(self) -> np.ndarray:
        return np.empty(0, dtype=self.dtype)

    # -- (hi, lo) uint64 views (v6 vector construction) -----------------

    def from_hi_lo(self, hi, lo) -> np.ndarray:
        """Build a v6 array from top/bottom 64-bit halves (vectorized)."""
        if self.bits != 128:
            raise ValueError("from_hi_lo is a v6-only constructor")
        hi = np.asarray(hi, dtype=np.uint64)
        lo = np.asarray(lo, dtype=np.uint64)
        out = np.empty((hi.size, 2), dtype=">u8")
        out[:, 0] = hi
        out[:, 1] = lo
        return out.reshape(-1).view(V6_DTYPE)

    def to_hi_lo(self, arr) -> tuple[np.ndarray, np.ndarray]:
        """Split a v6 array into native-endian (hi, lo) uint64 halves."""
        if self.bits != 128:
            raise ValueError("to_hi_lo is a v6-only accessor")
        arr = np.asarray(arr, dtype=V6_DTYPE)
        halves = arr.view(">u8").reshape(-1, 2).astype(np.uint64)
        return halves[:, 0], halves[:, 1]

    # -- interval math ---------------------------------------------------

    def interval_sizes_exact(self, starts, ends) -> list:
        """Per-interval ``end - start`` as exact Python ints."""
        if self.bits == 32:
            return [int(e) - int(s) for s, e in zip(starts, ends)]
        s = self.decode(starts)
        e = self.decode(ends)
        return [b - a for a, b in zip(s, e)]

    def interval_sizes_float(self, starts, ends) -> np.ndarray:
        """Per-interval sizes as float64 (exact for power-of-two sizes).

        Density ranking only needs relative magnitudes; power-of-two
        sizes up to 2^128 are exactly representable in float64.
        """
        return np.array(
            self.interval_sizes_exact(starts, ends), dtype=np.float64
        )

    def coalesce(self, starts, ends):
        """Family-dispatching interval coalesce (see bgp.table)."""
        from repro.bgp.table import coalesce_intervals

        return coalesce_intervals(starts, ends)

    # -- text ------------------------------------------------------------

    def format_address(self, value) -> str:
        if self.bits == 32:
            from repro.bgp.table import int_to_ip

            return int_to_ip(int(value))
        if isinstance(value, (bytes, np.bytes_)):
            value = self.decode_scalar(value)
        return str(ipaddress.IPv6Address(int(value)))

    def parse_address(self, text: str) -> int:
        if self.bits == 32:
            from repro.bgp.table import ip_to_int

            return ip_to_int(text)
        return int(ipaddress.IPv6Address(text))


V4 = AddressSpace("v4", 32, np.dtype(np.int64))
V6 = AddressSpace("v6", 128, V6_DTYPE)

FAMILIES = ("v4", "v6")
_SPACES = {"v4": V4, "v6": V6}


def get_space(name: str) -> AddressSpace:
    """Look up a family by name, raising loudly on unknown names."""
    try:
        return _SPACES[name]
    except KeyError:
        raise ValueError(
            f"unknown address family {name!r}; choices: {FAMILIES}"
        ) from None


def family_of(arr_or_dtype) -> str:
    """Infer the family from an array/dtype: S16/V16 -> v6, ints -> v4."""
    dtype = getattr(arr_or_dtype, "dtype", None)
    if dtype is None:
        dtype = np.dtype(arr_or_dtype)
    if dtype.kind in "SV":
        if dtype.itemsize != 16:
            raise ValueError(
                f"byte-string address arrays must be 16 bytes wide, "
                f"got dtype {dtype}"
            )
        return "v6"
    return "v4"


def space_of(arr_or_dtype) -> AddressSpace:
    """The :class:`AddressSpace` matching an array's dtype."""
    return _SPACES[family_of(arr_or_dtype)]
