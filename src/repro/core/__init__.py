"""Core layer: the TASS algorithm, campaign simulation, and refinements."""
