"""Per-prefix density counting — the slow radix-trie reference backend.

The production path is ``Partition.count_addresses`` (two vectorized
``searchsorted`` passes).  This module keeps the classic alternative —
longest-prefix-matching every single address through a binary radix
trie, one Python iteration per address — as the correctness reference
for the counting ablation (``bench_ablation_counting.py``), which
quantifies the 2-3 orders of magnitude between the two.
"""

from __future__ import annotations

import numpy as np

__all__ = ["build_trie", "count_with_trie", "lookup"]

# Trie nodes are plain 3-slot lists [zero_child, one_child, part_index]
# — the cheapest mutable structure CPython offers for this.
_ZERO, _ONE, _INDEX = 0, 1, 2


def build_trie(partition):
    """Build a binary radix trie mapping addresses to partition indices."""
    root = [None, None, None]
    for index, prefix in enumerate(partition.prefixes):
        node = root
        network, length = prefix.network, prefix.length
        for bit in range(31, 31 - length, -1):
            side = (network >> bit) & 1
            child = node[side]
            if child is None:
                child = [None, None, None]
                node[side] = child
            node = child
        node[_INDEX] = index
    return root


def lookup(root, address: int):
    """Longest-prefix-match one address; returns the part index or None."""
    node = root
    bit = 31
    best = None
    while node is not None:
        if node[_INDEX] is not None:
            best = node[_INDEX]
        if bit < 0:
            break
        node = node[(address >> bit) & 1]
        bit -= 1
    return best


def count_with_trie(addresses, partition) -> np.ndarray:
    """Per-prefix occupancy via per-address trie walks (slow reference).

    Semantically identical to ``partition.count_addresses`` but walks
    the trie once per address in a Python-level loop — the per-packet
    cost model of a naive scanner implementation.
    """
    values = getattr(addresses, "values", addresses)
    root = build_trie(partition)
    counts = np.zeros(len(partition), dtype=np.int64)
    for address in map(int, np.asarray(values)):
        index = lookup(root, address)
        if index is not None:
            counts[index] += 1
    return counts
