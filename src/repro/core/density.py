"""Per-prefix density counting — the slow radix-trie reference backend.

The production path is ``Partition.count_addresses`` (two vectorized
``searchsorted`` passes).  This module keeps the classic alternative —
longest-prefix-matching every single address through a binary radix
trie, one Python iteration per address — as the correctness reference
for the counting ablation (``bench_ablation_counting.py``), which
quantifies the 2-3 orders of magnitude between the two.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "build_trie",
    "trie_insert",
    "count_lookups",
    "count_with_trie",
    "lookup",
]

# Trie nodes are plain 3-slot lists [zero_child, one_child, part_index]
# — the cheapest mutable structure CPython offers for this.
_ZERO, _ONE, _INDEX = 0, 1, 2


def trie_insert(root, network: int, length: int, index: int,
                bits: int = 32) -> None:
    """Insert one prefix, mapping its subtree to ``index``.

    ``bits`` is the address width (32 for IPv4, 128 for IPv6).
    """
    node = root
    for bit in range(bits - 1, bits - 1 - length, -1):
        side = (network >> bit) & 1
        child = node[side]
        if child is None:
            child = [None, None, None]
            node[side] = child
        node = child
    node[_INDEX] = index


def build_trie(partition):
    """Build a binary radix trie mapping addresses to partition indices."""
    root = [None, None, None]
    bits = partition.space.bits
    for index, prefix in enumerate(partition.prefixes):
        trie_insert(root, prefix.network, prefix.length, index, bits=bits)
    return root


def lookup(root, address: int, bits: int = 32):
    """Longest-prefix-match one address; returns the part index or None."""
    node = root
    bit = bits - 1
    best = None
    while node is not None:
        if node[_INDEX] is not None:
            best = node[_INDEX]
        if bit < 0:
            break
        node = node[(address >> bit) & 1]
        bit -= 1
    return best


def count_lookups(root, values, size: int, bits: int = 32) -> np.ndarray:
    """LPM every address through the trie; per-index occupancy counts."""
    counts = np.zeros(size, dtype=np.int64)
    arr = np.asarray(values)
    if arr.dtype.kind == "S":
        from repro.core.addrspace import space_of

        addresses = space_of(arr).decode(arr)
    else:
        addresses = map(int, arr)
    for address in addresses:
        index = lookup(root, address, bits)
        if index is not None:
            counts[index] += 1
    return counts


def count_with_trie(addresses, partition) -> np.ndarray:
    """Per-prefix occupancy via per-address trie walks (slow reference).

    Semantically identical to ``partition.count_addresses`` but walks
    the trie once per address in a Python-level loop — the per-packet
    cost model of a naive scanner implementation.
    """
    values = getattr(addresses, "values", addresses)
    return count_lookups(
        build_trie(partition), values, len(partition),
        bits=partition.space.bits,
    )
