"""Month-over-month campaign simulation (TASS step 5 accounting).

A campaign derives its plan from the seed snapshot, then replays the
remaining monthly snapshots against the fixed selection.  The per-month
hitrate — responsive addresses inside the selection over all responsive
addresses — is computed with the same two-``searchsorted`` interval
pass as everything else; no probe-level loop is needed to account a
simulated campaign.

Counting goes through ``Selection.count_in`` and therefore the
process-wide :data:`~repro.bgp.backends.COUNT_CACHE`: when several
campaigns (or strategies, or the reseeding sweep) replay the same
snapshot series, each snapshot is counted once and every later replay
reduces to a fancy-index sum over the cached per-partition counts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Campaign", "simulate_campaign"]


class Campaign:
    """Hitrate trajectory (and probe cost) of one simulated campaign."""

    def __init__(self, hitrates, selection, probes_per_month=None):
        self._hitrates = [float(h) for h in hitrates]
        self.selection = selection
        self.probes_per_month = probes_per_month

    def hitrates(self):
        """Per-month hitrate, month 0 = seed time."""
        return list(self._hitrates)

    def decay_per_month(self) -> float:
        """Mean monthly hitrate drift over the campaign."""
        rates = self._hitrates
        if len(rates) < 2:
            return 0.0
        return (rates[-1] - rates[0]) / (len(rates) - 1)

    def final_hitrate(self) -> float:
        return self._hitrates[-1]

    def total_probes(self) -> int:
        if self.probes_per_month is None:
            return 0
        return int(np.sum(self.probes_per_month))


def simulate_campaign(strategy, series, backend=None) -> Campaign:
    """Plan on the seed snapshot, replay every monthly snapshot.

    ``backend`` selects the per-month interval-counting backend (see
    :mod:`repro.bgp.backends`); planning uses the strategy's own
    backend choice.
    """
    selection = strategy.plan(series.seed_snapshot)
    rates = []
    for snapshot in series:
        values = snapshot.addresses.values
        found = selection.count_in(values, backend=backend)
        rates.append(found / len(values) if len(values) else 0.0)
    probes = [selection.probe_count()] * len(rates)
    return Campaign(rates, selection, probes)
