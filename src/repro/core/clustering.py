"""Cai-Heidemann-style clustered-/24 refinement (paper §5 future work).

Instead of whole routed prefixes, scan only the /24 blocks that were
responsive at seed time, merging runs of occupied blocks separated by at
most ``max_gap`` empty blocks.  The result scans far less space than
either prefix view but decays hitlist-like — the trade-off the
clustering ablation regenerates.
"""

from __future__ import annotations

import numpy as np

from repro.bgp.table import Partition

__all__ = ["refine_partition"]


def refine_partition(snapshot, partition: Partition, max_gap: int = 1) -> Partition:
    """Cluster a seed snapshot's occupied /24s into an interval partition.

    Runs never cross a parent-prefix boundary, so the refinement is a
    strict sub-cover of ``partition``.  Fully vectorized: occupied
    blocks via one ``unique``, parents via one ``searchsorted``, run
    boundaries via ``diff``.
    """
    addresses = getattr(snapshot, "addresses", snapshot)
    values = getattr(addresses, "values", addresses)
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return Partition(empty, empty)

    # One run element per occupied (block, parent-prefix) pair: parent
    # lookup goes through the responsive addresses themselves, and a /24
    # straddling several sub-/24 parts yields one element per part.
    parents_all = partition.index_of(values)
    key = (values >> 8) * np.int64(len(partition) + 1) + parents_all
    _, first_occupant = np.unique(key, return_index=True)
    blocks = values[first_occupant] >> 8
    parents = parents_all[first_occupant]
    # A new run starts where the gap of empty /24s exceeds max_gap or
    # the covering routed prefix changes.
    breaks = np.empty(len(blocks), dtype=bool)
    breaks[0] = True
    breaks[1:] = (np.diff(blocks) > max_gap + 1) | (np.diff(parents) != 0)
    run_starts = np.flatnonzero(breaks)
    run_ends = np.append(run_starts[1:], len(blocks)) - 1
    # Clip each run to its parent interval so the refinement stays a
    # strict sub-cover even when parts are smaller than a /24.
    starts = np.maximum(
        blocks[run_starts] << 8, partition.starts[parents[run_starts]]
    )
    ends = np.minimum(
        (blocks[run_ends] + 1) << 8, partition.ends[parents[run_ends]]
    )
    return Partition(starts, ends)
