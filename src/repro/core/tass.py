"""Topology Aware Scanning Strategy (TASS): phi-threshold prefix selection.

TASS step 2/3: count responsive addresses per prefix of the chosen
view, rank prefixes by address density, and select the densest ones
until they cover a fraction ``phi`` of all responsive addresses.  The
whole selection is a handful of array operations — counting is the
two-``searchsorted`` pass, ranking one ``argsort``, thresholding one
``cumsum`` + ``searchsorted``.
"""

from __future__ import annotations

import numpy as np

# Module-level on purpose: count_in sits inside per-wave hot loops and
# must not pay an import-machinery lookup per call.
from repro.bgp.backends import COUNT_CACHE, count_with_backend
from repro.bgp.table import (
    LESS_SPECIFIC,
    Partition,
    RoutingTable,
    coalesce_intervals,
    interval_membership,
)

__all__ = ["Selection", "TassStrategy", "select_by_density"]


class Selection:
    """The outcome of one phi-threshold selection over a partition."""

    __slots__ = (
        "partition",
        "indices",
        "starts",
        "ends",
        "covered_hosts",
        "total_hosts",
        "phi",
        "_coalesced",
    )

    def __init__(self, partition, indices, covered_hosts, total_hosts, phi):
        self.partition = partition
        # Keep the interval view sorted by network for searchsorted use.
        self.indices = np.sort(np.asarray(indices, dtype=np.int64))
        self.starts = partition.starts[self.indices]
        self.ends = partition.ends[self.indices]
        self.covered_hosts = int(covered_hosts)
        self.total_hosts = int(total_hosts)
        self.phi = phi
        self._coalesced = None

    def __len__(self) -> int:
        return int(self.indices.shape[0])

    @property
    def prefixes(self):
        """Selected :class:`Prefix` objects (table partitions only)."""
        prefixes = self.partition.prefixes
        return [prefixes[i] for i in self.indices.tolist()]

    def selected_address_count(self) -> int:
        """Total address-space size of the selected prefixes."""
        if self.starts.dtype.kind == "S":
            # 128-bit interval sizes overflow int64; sum exactly in
            # Python ints via the partition's exact size table.
            sizes = self.partition.sizes_exact
            return sum(sizes[i] for i in self.indices.tolist())
        return int((self.ends - self.starts).sum())

    def probe_count(self) -> int:
        """Probes one scan pass over the selection costs."""
        return self.selected_address_count()

    @property
    def space_coverage(self) -> float:
        """Selected space as a fraction of the whole announced space."""
        return self.selected_address_count() / self.partition.address_count()

    @property
    def host_coverage(self) -> float:
        """Fraction of responsive addresses covered at selection time."""
        return self.covered_hosts / self.total_hosts if self.total_hosts else 0.0

    def coalesced(self):
        """The selection's intervals with adjacent runs merged.

        A dense selection (many neighbouring prefixes) collapses to far
        fewer ``[start, end)`` runs; every membership/count pass over
        the coalesced table does the same work on a smaller table.
        Computed once, cached for the life of the selection.
        """
        if self._coalesced is None:
            self._coalesced = coalesce_intervals(self.starts, self.ends)
        return self._coalesced

    def count_in(self, values: np.ndarray, backend=None) -> int:
        """How many of a sorted address array fall inside the selection.

        ``backend`` (or the partition's ``count_backend``, or
        ``$REPRO_COUNT_BACKEND``) selects a registered counting
        backend; the default is the two-``searchsorted`` pass.

        Immutable snapshot arrays hit the process-wide
        :data:`~repro.bgp.backends.COUNT_CACHE`: the full-partition
        counts are computed once per snapshot and this call reduces to
        a fancy-index sum, so repeated waves/strategies over the same
        snapshot never recount it.  (The selection's intervals are by
        construction a subset of the partition's disjoint intervals, so
        the subset sum equals a direct count under every backend.)
        """
        if backend is None:
            backend = getattr(self.partition, "count_backend", None)
        if not callable(backend) and COUNT_CACHE.cacheable(values):
            counts = COUNT_CACHE.counts(self.partition, values, backend)
            return int(counts[self.indices].sum())
        starts, ends = self.coalesced()
        return int(count_with_backend(starts, ends, values, backend).sum())

    def membership(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask over ``values``: inside the selection or not."""
        starts, ends = self.coalesced()
        return interval_membership(starts, ends, values)


def select_by_density(
    partition: Partition, counts: np.ndarray, phi: float
) -> Selection:
    """Select the densest prefixes covering ``phi`` of the addresses."""
    if not 0.0 < phi <= 1.0:
        raise ValueError("phi must be in (0, 1]")
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return Selection(partition, np.empty(0, np.int64), 0, 0, phi)
    density = counts / partition.sizes
    order = np.argsort(-density, kind="stable")
    cumulative = np.cumsum(counts[order])
    target = phi * total
    # First rank whose cumulative count reaches the target (the epsilon
    # keeps float rounding from demanding one prefix too many at phi=1).
    k = int(np.searchsorted(cumulative, target - 1e-9, side="left")) + 1
    chosen = order[:k]
    return Selection(partition, chosen, int(cumulative[k - 1]), total, phi)


class TassStrategy:
    """The paper's selection strategy bound to one partition and phi."""

    def __init__(
        self,
        table,
        phi: float = 1.0,
        view: str = LESS_SPECIFIC,
        backend=None,
    ):
        if isinstance(table, RoutingTable):
            self.partition = table.partition(view)
        elif isinstance(table, Partition):
            self.partition = table
        else:
            raise TypeError(
                "expected a RoutingTable or Partition, got "
                f"{type(table).__name__}"
            )
        self.phi = float(phi)
        self.view = view
        #: Counting backend for planning (None = partition default).
        self.backend = backend
        self.last_selection: Selection | None = None

    def plan(self, snapshot) -> Selection:
        """Derive the probe plan from a seed snapshot (TASS steps 2-4)."""
        addresses = getattr(snapshot, "addresses", snapshot)
        values = getattr(addresses, "values", addresses)
        counts = self.partition.count_addresses(values, backend=self.backend)
        selection = select_by_density(self.partition, counts, self.phi)
        self.last_selection = selection
        return selection
