"""Validated environment knobs shared by the scan layer and orchestrator.

Every process-wide tuning knob the package reads from the environment is
parsed here, with one resolution rule everywhere: an explicit argument
wins, then the environment variable, then the built-in default — and a
bad value raises a :class:`ValueError` naming the knob, the offending
value, and the accepted choices, instead of a silent fallback or a
cryptic failure deep inside a hot loop.

Knobs:

- ``REPRO_SCAN_SHARDS``   — positive shard count for sharded scans;
- ``REPRO_SCAN_EXECUTOR`` — an executor registered in
  :mod:`repro.scan.executors` (``serial``, ``process``,
  ``distributed``, or anything registered on top);
- ``REPRO_COUNT_BACKEND`` — a counting backend registered in
  :mod:`repro.bgp.backends`;
- ``REPRO_DIST_WORKERS``  — worker-process count for the
  ``distributed`` executor (default: one per shard, CPU-capped);
- ``REPRO_FAULT_PLAN``    — declarative chaos plan for the distributed
  executor (:mod:`repro.scan.faults` syntax, e.g. ``crash@2,hang@0``);
- ``REPRO_DIST_SHARD_DEADLINE`` — per-shard attempt deadline in seconds
  before speculative re-dispatch (default 30; ``0`` disables);
- ``REPRO_DIST_RESPAWN_BASE``   — base of the exponential respawn
  backoff in seconds (default 0.05; ``0`` disables the backoff);
- ``REPRO_DIST_CRASH_LOOP``     — consecutive spawn-side failures that
  declare a crash loop and degrade the fleet (default 3);
- ``REPRO_DIST_ADDRESS_BOOK``   — comma-separated ``host:port`` entries
  of pre-started remote workers (``python -m repro.scan.distributed
  --listen host:port``) the coordinator dials out to; spawned and
  remote workers mix in one fleet (default: empty — spawn-only);
- ``REPRO_DIST_SECRET``         — shared HMAC-SHA256 key for the
  worker handshake; when set, both sides must prove knowledge of it
  before any work is exchanged (default: unset — no authentication);
- ``REPRO_OBS``                 — the observability plane
  (:mod:`repro.obs`): ``off`` (default — no events, no metrics),
  ``events`` (append structured trace events to ``events.jsonl``),
  or ``full`` (events plus the metrics registry and ``metrics.json``).
  Observability is wall-clock-side only: campaign state, merged
  results, and resume byte-identity are unchanged at every setting;
- ``REPRO_CKPT_KEEP``           — checkpoint generations the store
  retains (default 2); older generations are pruned after each save,
  newer ones are the rollback targets when the latest fails
  verification at resume;
- ``REPRO_FS_FAULT_PLAN``       — declarative storage chaos plan for
  the checkpoint store (:mod:`repro.orchestrator.storage_faults`
  syntax, e.g. ``torn_write@save-2,bitrot@gen-3``);
- ``REPRO_ADDR_FAMILY``         — the address family campaigns run in:
  ``v4`` (default — today's exhaustive int64 pipeline) or ``v6``
  (128-bit addresses, hitlist/prefix-seeded targeting; see
  :mod:`repro.core.addrspace`).
"""

from __future__ import annotations

import os

__all__ = [
    "ENV_SCAN_SHARDS",
    "ENV_SCAN_EXECUTOR",
    "ENV_COUNT_BACKEND",
    "ENV_DIST_WORKERS",
    "ENV_FAULT_PLAN",
    "ENV_DIST_SHARD_DEADLINE",
    "ENV_DIST_RESPAWN_BASE",
    "ENV_DIST_CRASH_LOOP",
    "ENV_DIST_ADDRESS_BOOK",
    "ENV_DIST_SECRET",
    "ENV_OBS",
    "ENV_CKPT_KEEP",
    "ENV_FS_FAULT_PLAN",
    "ENV_ADDR_FAMILY",
    "OBS_MODES",
    "ADDR_FAMILIES",
    "EXECUTORS",
    "scan_shards",
    "scan_executor",
    "count_backend",
    "dist_workers",
    "fault_plan",
    "dist_shard_deadline",
    "dist_respawn_base",
    "dist_crash_loop_threshold",
    "dist_address_book",
    "dist_secret",
    "obs_mode",
    "ckpt_keep",
    "fs_fault_plan",
    "addr_family",
]

ENV_SCAN_SHARDS = "REPRO_SCAN_SHARDS"
ENV_SCAN_EXECUTOR = "REPRO_SCAN_EXECUTOR"
ENV_COUNT_BACKEND = "REPRO_COUNT_BACKEND"
ENV_DIST_WORKERS = "REPRO_DIST_WORKERS"
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"
ENV_DIST_SHARD_DEADLINE = "REPRO_DIST_SHARD_DEADLINE"
ENV_DIST_RESPAWN_BASE = "REPRO_DIST_RESPAWN_BASE"
ENV_DIST_CRASH_LOOP = "REPRO_DIST_CRASH_LOOP"
ENV_DIST_ADDRESS_BOOK = "REPRO_DIST_ADDRESS_BOOK"
ENV_DIST_SECRET = "REPRO_DIST_SECRET"
ENV_OBS = "REPRO_OBS"
ENV_CKPT_KEEP = "REPRO_CKPT_KEEP"
ENV_FS_FAULT_PLAN = "REPRO_FS_FAULT_PLAN"
ENV_ADDR_FAMILY = "REPRO_ADDR_FAMILY"

#: The observability modes, least to most recorded.
OBS_MODES = ("off", "events", "full")

#: The address families the pipeline runs in.
ADDR_FAMILIES = ("v4", "v6")


def _executor_choices() -> tuple[str, ...]:
    # Imported lazily: the executor registry lives in the scan layer,
    # which itself imports this module for the other knobs.
    from repro.scan.executors import available_executors

    return tuple(available_executors())


def __getattr__(name: str):
    # ``EXECUTORS`` is registry-backed: reading it always reflects the
    # live executor registry (including anything registered at runtime)
    # instead of a tuple frozen at import.
    if name == "EXECUTORS":
        return _executor_choices()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _resolve(explicit, env_var, default):
    """explicit argument > environment variable > default."""
    if explicit is not None:
        return explicit, "argument"
    raw = os.environ.get(env_var)
    if raw is not None:
        return raw, env_var
    return default, "default"


def scan_shards(explicit=None) -> int:
    """The validated scan shard count (>= 1).

    ``explicit`` wins over ``$REPRO_SCAN_SHARDS`` over the default of 1.
    Non-integer or non-positive values raise a :class:`ValueError` that
    names the source of the bad value.
    """
    raw, source = _resolve(explicit, ENV_SCAN_SHARDS, 1)
    try:
        # Round-trip through str so 2.5 (or True) is rejected rather
        # than silently truncated by int().
        value = int(str(raw).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"scan shards must be a positive integer, got {raw!r} "
            f"(from {source})"
        ) from None
    if value < 1:
        raise ValueError(
            f"scan shards must be >= 1, got {value} (from {source})"
        )
    return value


def scan_executor(explicit=None) -> str:
    """The validated scan executor name, against the live registry."""
    raw, source = _resolve(explicit, ENV_SCAN_EXECUTOR, "serial")
    executors = _executor_choices()
    if raw not in executors:
        choices = ", ".join(repr(e) for e in executors)
        raise ValueError(
            f"unknown executor {raw!r} (from {source}); "
            f"choose one of {choices}"
        )
    return raw


def dist_workers(explicit=None) -> int | None:
    """The validated distributed worker count, or ``None`` for auto.

    ``explicit`` wins over ``$REPRO_DIST_WORKERS``; with neither set
    the distributed executor sizes itself (one worker per shard,
    capped at the CPU count).
    """
    raw, source = _resolve(explicit, ENV_DIST_WORKERS, None)
    if raw is None:
        return None
    try:
        value = int(str(raw).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"distributed workers must be a positive integer, got "
            f"{raw!r} (from {source})"
        ) from None
    if value < 1:
        raise ValueError(
            f"distributed workers must be >= 1, got {value} "
            f"(from {source})"
        )
    return value


def fault_plan(explicit=None):
    """The validated chaos :class:`~repro.scan.faults.FaultPlan`.

    ``explicit`` may be a plan string or an existing ``FaultPlan``;
    otherwise ``$REPRO_FAULT_PLAN`` is parsed; with neither, the empty
    plan (no injected faults).  Syntax errors raise :class:`ValueError`
    naming the source.
    """
    # Imported lazily: the fault plane lives in the scan layer, which
    # imports this module for the other knobs.
    from repro.scan.faults import FaultPlan

    if isinstance(explicit, FaultPlan):
        return explicit
    raw, source = _resolve(explicit, ENV_FAULT_PLAN, None)
    try:
        return FaultPlan.parse(raw)
    except ValueError as exc:
        raise ValueError(f"bad fault plan (from {source}): {exc}") from None


def _positive_float(raw, source, knob, *, zero_ok=False):
    try:
        value = float(str(raw).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"{knob} must be a number, got {raw!r} (from {source})"
        ) from None
    if value < 0 or (value == 0 and not zero_ok):
        raise ValueError(
            f"{knob} must be {'>= 0' if zero_ok else '> 0'}, got "
            f"{value} (from {source})"
        )
    return value


def dist_shard_deadline(explicit=None) -> float | None:
    """Per-shard attempt deadline in seconds, or ``None`` when disabled.

    ``explicit`` wins over ``$REPRO_DIST_SHARD_DEADLINE`` over the
    default of 30 s.  A shard held past its deadline is speculatively
    re-dispatched to an idle worker; ``0`` disables the deadline (only
    the coordinator's global no-progress timeout then applies).
    """
    raw, source = _resolve(explicit, ENV_DIST_SHARD_DEADLINE, 30.0)
    value = _positive_float(
        raw, source, "shard deadline", zero_ok=True
    )
    return value or None


def dist_respawn_base(explicit=None) -> float:
    """Base (seconds) of the exponential worker-respawn backoff."""
    raw, source = _resolve(explicit, ENV_DIST_RESPAWN_BASE, 0.05)
    return _positive_float(raw, source, "respawn base", zero_ok=True)


def dist_crash_loop_threshold(explicit=None) -> int:
    """Consecutive spawn-side failures that declare a crash loop."""
    raw, source = _resolve(explicit, ENV_DIST_CRASH_LOOP, 3)
    try:
        value = int(str(raw).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"crash-loop threshold must be a positive integer, got "
            f"{raw!r} (from {source})"
        ) from None
    if value < 1:
        raise ValueError(
            f"crash-loop threshold must be >= 1, got {value} "
            f"(from {source})"
        )
    return value


def _parse_book_entry(entry, source) -> tuple[str, int]:
    if (
        isinstance(entry, tuple)
        and len(entry) == 2
        and not isinstance(entry[1], bool)
    ):
        host, port = str(entry[0]), entry[1]
        text = f"{host}:{port}"
    else:
        text = str(entry).strip()
        host, sep, port = text.rpartition(":")
        if not sep:
            raise ValueError(
                f"address book entry {text!r} must be HOST:PORT "
                f"(from {source})"
            )
    if not host:
        raise ValueError(
            f"address book entry {text!r} has an empty host "
            f"(from {source})"
        )
    try:
        port_value = int(str(port).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"address book entry {text!r} has a non-integer port "
            f"(from {source})"
        ) from None
    if not 1 <= port_value <= 65535:
        raise ValueError(
            f"address book entry {text!r} port must be in 1..65535 "
            f"(from {source})"
        )
    return host, port_value


def dist_address_book(explicit=None) -> tuple[tuple[str, int], ...]:
    """The validated remote-worker address book as ``(host, port)`` pairs.

    ``explicit`` may be a ``"host:port,host:port"`` string or a sequence
    of entries (strings or ``(host, port)`` tuples); otherwise
    ``$REPRO_DIST_ADDRESS_BOOK`` is parsed; with neither, the empty book
    (the distributed executor spawns local workers only).  Malformed or
    duplicate entries raise a :class:`ValueError` naming the source —
    a duplicate would dial the same worker twice and deadlock its
    one-session-at-a-time accept loop.
    """
    raw, source = _resolve(explicit, ENV_DIST_ADDRESS_BOOK, None)
    if raw is None:
        return ()
    if isinstance(raw, (list, tuple)):
        entries = list(raw)
    else:
        entries = [e for e in str(raw).split(",") if e.strip()]
    book = tuple(_parse_book_entry(entry, source) for entry in entries)
    if len(set(book)) != len(book):
        raise ValueError(
            f"address book has duplicate entries (from {source}): "
            + ",".join(f"{h}:{p}" for h, p in book)
        )
    return book


def dist_secret(explicit=None) -> str | None:
    """The shared handshake secret, or ``None`` when auth is disabled.

    ``explicit`` wins over ``$REPRO_DIST_SECRET``.  A set-but-blank
    secret raises — it would silently authenticate everyone.
    """
    raw, source = _resolve(explicit, ENV_DIST_SECRET, None)
    if raw is None:
        return None
    secret = str(raw)
    if not secret.strip():
        raise ValueError(
            f"distributed secret must be a non-empty string "
            f"(from {source})"
        )
    return secret


def obs_mode(explicit=None) -> str:
    """The validated observability mode: ``off``/``events``/``full``.

    ``explicit`` wins over ``$REPRO_OBS`` over the default ``off``.
    The mode only gates what gets *recorded* — nothing the campaign
    computes or checkpoints depends on it.
    """
    raw, source = _resolve(explicit, ENV_OBS, "off")
    value = str(raw).strip().lower()
    if value not in OBS_MODES:
        choices = ", ".join(repr(m) for m in OBS_MODES)
        raise ValueError(
            f"unknown observability mode {raw!r} (from {source}); "
            f"choose one of {choices}"
        )
    return value


def ckpt_keep(explicit=None) -> int:
    """The validated checkpoint keep-N window (>= 1).

    ``explicit`` wins over ``$REPRO_CKPT_KEEP`` over the default of 2.
    The newest N checkpoint generations survive each save; everything
    older is pruned.  1 restores the pre-generation behaviour (a
    single live checkpoint — and therefore no rollback target when it
    fails verification at resume).
    """
    raw, source = _resolve(explicit, ENV_CKPT_KEEP, 2)
    try:
        value = int(str(raw).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"checkpoint keep window must be a positive integer, got "
            f"{raw!r} (from {source})"
        ) from None
    if value < 1:
        raise ValueError(
            f"checkpoint keep window must be >= 1, got {value} "
            f"(from {source})"
        )
    return value


def fs_fault_plan(explicit=None):
    """The validated storage-chaos
    :class:`~repro.orchestrator.storage_faults.FsFaultPlan`.

    ``explicit`` may be a plan string or an existing ``FsFaultPlan``;
    otherwise ``$REPRO_FS_FAULT_PLAN`` is parsed; with neither, the
    empty plan (no injected storage faults).  Syntax errors raise
    :class:`ValueError` naming the source.
    """
    # Imported lazily: the storage fault plane lives next to the
    # checkpoint store, which imports this module for the other knobs.
    from repro.orchestrator.storage_faults import FsFaultPlan

    if isinstance(explicit, FsFaultPlan):
        return explicit
    raw, source = _resolve(explicit, ENV_FS_FAULT_PLAN, None)
    try:
        return FsFaultPlan.parse(raw)
    except ValueError as exc:
        raise ValueError(
            f"bad storage fault plan (from {source}): {exc}"
        ) from None


def count_backend(explicit=None) -> str:
    """The validated counting-backend *name* the resolution lands on.

    Unlike :func:`repro.bgp.backends.get_backend` — which resolves at
    counting time, deep inside a campaign — this validates up front so
    knob errors surface before any work is done.
    """
    # Imported lazily: backends is a leaf module but pulls in numpy
    # machinery this module doesn't otherwise need.
    from repro.bgp.backends import DEFAULT_BACKEND, available_backends

    raw, source = _resolve(explicit, ENV_COUNT_BACKEND, DEFAULT_BACKEND)
    if raw not in available_backends():
        raise ValueError(
            f"unknown counting backend {raw!r} (from {source}); "
            f"available: {available_backends()}"
        )
    return raw


def addr_family(explicit=None) -> str:
    """The validated address family: ``v4`` or ``v6``.

    ``explicit`` wins over ``$REPRO_ADDR_FAMILY`` over the default
    ``v4``.  The family decides the address representation end to end
    (int64 vs 128-bit ``S16``; see :mod:`repro.core.addrspace`) and is
    recorded in campaign specs and checkpoint manifests so a resume
    can reject a family mismatch.
    """
    raw, source = _resolve(explicit, ENV_ADDR_FAMILY, "v4")
    value = str(raw).strip().lower()
    if value not in ADDR_FAMILIES:
        choices = ", ".join(repr(f) for f in ADDR_FAMILIES)
        raise ValueError(
            f"unknown address family {raw!r} (from {source}); "
            f"choose one of {choices}"
        )
    return value
