"""Benchmark + regeneration of Figure 3 (hosts per prefix length).

Seven monthly measurements × two protocols × both views, matching the
paper's panels (a)-(d).
"""

from repro.analysis.figure3 import render_figure3, run_figure3

from benchmarks.conftest import save_artifact


def test_figure3(benchmark, dataset, artifact_dir):
    result = benchmark.pedantic(
        run_figure3, args=(dataset,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "figure3.txt", render_figure3(result))
    for protocol in result.protocols:
        # Stability across the seven measurements...
        assert result.stability("less-specific", protocol) < 0.35
        # ...and the right-shift of the more-specific view.
        assert result.mean_length("more-specific", protocol) > (
            result.mean_length("less-specific", protocol)
        )
