"""Sharded scan execution: serial vs K-sharded, in-process vs pool.

Scans the phi=0.9 TASS selection for HTTP against the seed snapshot
through the sharded executor at several shard counts, recording the
speedup trajectory of the scale-out layer.  Every variant must merge to
a byte-identical :class:`ScanResult` — the K-invariance the sharded
test suite locks down, re-asserted here on the full benchmark dataset.
"""

import dataclasses

import pytest

from repro.core.tass import TassStrategy
from repro.scan.engine import EngineConfig
from repro.scan.sharded import run_sharded

_PHI = 0.9
_CONFIG = EngineConfig()


@pytest.fixture(scope="module")
def scan_inputs(dataset):
    seed = dataset.series_for("http").seed_snapshot
    strategy = TassStrategy(dataset.topology.table, phi=_PHI)
    return strategy.plan(seed.addresses), seed.addresses


@pytest.fixture(scope="module")
def reference_result(scan_inputs):
    selection, responsive = scan_inputs
    return run_sharded(
        selection, responsive, shards=1, executor="serial", config=_CONFIG
    ).result


def _assert_matches(run, reference):
    assert dataclasses.astuple(run.result) == dataclasses.astuple(reference)


def test_sharded_serial_k1(benchmark, scan_inputs, reference_result):
    selection, responsive = scan_inputs
    run = benchmark(
        run_sharded,
        selection,
        responsive,
        shards=1,
        executor="serial",
        config=_CONFIG,
    )
    _assert_matches(run, reference_result)


@pytest.mark.parametrize("shards", [4, 8])
def test_sharded_serial_many(benchmark, scan_inputs, reference_result, shards):
    selection, responsive = scan_inputs
    run = benchmark(
        run_sharded,
        selection,
        responsive,
        shards=shards,
        executor="serial",
        config=_CONFIG,
    )
    _assert_matches(run, reference_result)


@pytest.mark.parametrize("shards", [4, 8])
def test_sharded_process_pool(
    benchmark, scan_inputs, reference_result, shards
):
    selection, responsive = scan_inputs
    run = benchmark.pedantic(
        run_sharded,
        args=(selection, responsive),
        kwargs=dict(shards=shards, executor="process", config=_CONFIG),
        rounds=3,
        iterations=1,
    )
    _assert_matches(run, reference_result)
