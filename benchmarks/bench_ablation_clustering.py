"""Ablation: §5 future work — /24 clustering refinement vs prefix views.

Compares three partitions of the announced space at φ=1: the l-view,
the m-view, and the Cai-Heidemann-style clustered-/24 refinement.  The
refinement scans the least space at seed time but decays hitlist-like;
the benchmark regenerates that trade-off.
"""

from repro.analysis.report import format_table
from repro.bgp.table import LESS_SPECIFIC, MORE_SPECIFIC
from repro.core.clustering import refine_partition
from repro.core.simulate import simulate_campaign
from repro.core.tass import TassStrategy

from benchmarks.conftest import save_artifact


def run_clustering_ablation(dataset, protocol="ftp"):
    table = dataset.topology.table
    series = dataset.series_for(protocol)
    seed = series.seed_snapshot
    partitions = {
        "l-prefixes": table.partition(LESS_SPECIFIC),
        "m-prefixes": table.partition(MORE_SPECIFIC),
        "clustered-/24": refine_partition(
            seed, table.partition(LESS_SPECIFIC), max_gap=1
        ),
    }
    announced = table.partition(LESS_SPECIFIC).address_count()
    rows = []
    for name, partition in partitions.items():
        strategy = TassStrategy(partition, phi=1.0)
        campaign = simulate_campaign(strategy, series)
        plan_space = strategy.last_selection.selected_address_count()
        rows.append(
            {
                "partition": name,
                "parts": len(partition),
                "space": plan_space / announced,
                "final": campaign.hitrates()[-1],
            }
        )
    return rows


def test_clustering_ablation(benchmark, dataset, artifact_dir):
    rows = benchmark.pedantic(
        run_clustering_ablation, args=(dataset,), rounds=1, iterations=1
    )
    rendered = format_table(
        ["partition", "parts", "space@phi=1", "month-6 hitrate"],
        [
            (
                row["partition"],
                row["parts"],
                f"{row['space']:.4f}",
                f"{row['final']:.3f}",
            )
            for row in rows
        ],
        title="Ablation: prefix views vs clustered-/24 refinement (FTP, phi=1)",
    )
    save_artifact(artifact_dir, "ablation_clustering.txt", rendered)
    by_name = {row["partition"]: row for row in rows}
    # Finer partitions scan monotonically less space at seed time...
    assert (
        by_name["clustered-/24"]["space"]
        < by_name["m-prefixes"]["space"]
        < by_name["l-prefixes"]["space"]
    )
    # ...but hold accuracy monotonically worse over six months.
    assert (
        by_name["clustered-/24"]["final"]
        < by_name["m-prefixes"]["final"]
        < by_name["l-prefixes"]["final"] + 1e-9
    )
