"""Ablation: the l-prefix vs m-prefix trade-off (paper §5).

The discussion section weighs the two views: m-prefixes scan 15-20
points less space at φ=1 but decay about twice as fast.  This benchmark
regenerates that trade-off table for every protocol.
"""

from repro.analysis.report import format_table
from repro.bgp.table import LESS_SPECIFIC, MORE_SPECIFIC
from repro.core.simulate import simulate_campaign
from repro.core.tass import TassStrategy

from benchmarks.conftest import save_artifact


def run_view_tradeoff(dataset):
    rows = []
    table = dataset.topology.table
    for protocol in dataset.protocols:
        series = dataset.series_for(protocol)
        for view in (LESS_SPECIFIC, MORE_SPECIFIC):
            strategy = TassStrategy(table, phi=1.0, view=view)
            campaign = simulate_campaign(strategy, series)
            selection = strategy.last_selection
            rows.append(
                {
                    "protocol": protocol,
                    "view": view,
                    "space": selection.space_coverage,
                    "decay": campaign.decay_per_month(),
                    "final": campaign.hitrates()[-1],
                }
            )
    return rows


def test_view_tradeoff(benchmark, dataset, artifact_dir):
    rows = benchmark.pedantic(
        run_view_tradeoff, args=(dataset,), rounds=1, iterations=1
    )
    rendered = format_table(
        ["protocol", "view", "space@phi=1", "decay/mo", "month-6 hitrate"],
        [
            (
                row["protocol"],
                row["view"],
                f"{row['space']:.3f}",
                f"{row['decay'] * 100:+.2f}%",
                f"{row['final']:.3f}",
            )
            for row in rows
        ],
        title="Ablation: less- vs more-specific prefixes (phi=1)",
    )
    save_artifact(artifact_dir, "ablation_views.txt", rendered)
    by_key = {(r["protocol"], r["view"]): r for r in rows}
    for protocol in dataset.protocols:
        less = by_key[(protocol, LESS_SPECIFIC)]
        more = by_key[(protocol, MORE_SPECIFIC)]
        assert more["space"] < less["space"], "m-view must scan less"
        assert more["final"] <= less["final"] + 0.003, (
            "m-view must not hold accuracy better than l-view"
        )
