"""Campaign orchestrator: checkpointing overhead and wave throughput.

Runs the same short campaign with checkpointing disabled and with a
durable checkpoint after every shard, on the benchmark dataset.  The
two timings recorded in ``BENCH_<preset>.json`` bound the cost of the
resume guarantee — the acceptance target is < 10% wall-clock overhead
on the small preset — and the runs must agree byte-for-byte on every
deterministic field, re-asserting kill-and-resume's precondition on
the full benchmark dataset.
"""

import json
import shutil
import tempfile

import pytest

from repro.orchestrator import CampaignSpec, ReseedPolicy, run_campaign

_WAVES = 2
_PHI = 0.9


@pytest.fixture(scope="module")
def campaign_spec(dataset):
    return CampaignSpec(
        name="bench",
        preset=dataset.preset,
        protocol="http",
        phi=_PHI,
        waves=_WAVES,
        reseed=ReseedPolicy("interval", interval=0),
        shards=4,
        executor="serial",
    )


@pytest.fixture(scope="module")
def reference_status(campaign_spec, dataset):
    return run_campaign(campaign_spec, dataset=dataset)


def _deterministic_digest(status):
    return json.dumps(
        {"waves": status["waves"], "totals": status["totals"]},
        sort_keys=True,
    )


def test_campaign_checkpoint_off(
    benchmark, campaign_spec, dataset, reference_status
):
    status = benchmark.pedantic(
        run_campaign,
        args=(campaign_spec,),
        kwargs=dict(dataset=dataset),
        rounds=3,
        iterations=1,
    )
    assert _deterministic_digest(status) == _deterministic_digest(
        reference_status
    )


def test_campaign_checkpoint_every_shard(
    benchmark, campaign_spec, dataset, reference_status
):
    dirs = []

    def fresh_dir():
        dirs.append(tempfile.mkdtemp(prefix="bench-orch-"))
        return (campaign_spec,), dict(dataset=dataset, directory=dirs[-1])

    try:
        status = benchmark.pedantic(
            run_campaign, setup=fresh_dir, rounds=3, iterations=1
        )
        assert _deterministic_digest(status) == _deterministic_digest(
            reference_status
        )
    finally:
        for directory in dirs:
            shutil.rmtree(directory, ignore_errors=True)
