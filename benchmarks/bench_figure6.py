"""Benchmark + regeneration of Figure 6 (TASS hitrate over time).

Both panels: φ=1 and φ=0.95, both prefix views, all four protocols.
"""

from repro.analysis.figure6 import render_figure6, run_figure6

from benchmarks.conftest import save_artifact


def test_figure6(benchmark, dataset, artifact_dir):
    result = benchmark.pedantic(
        run_figure6, args=(dataset,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "figure6.txt", render_figure6(result))
    for protocol in dataset.protocols:
        less = result.decay(1.0, "less-specific", protocol)
        # Paper: ~ -0.3%/month for the less-specific view.
        assert -0.007 < less < 0.0
        final_95 = result.campaigns[
            (0.95, "less-specific", protocol)
        ].hitrates()[-1]
        assert final_95 > 0.85
