"""Benchmark + regeneration of Figure 5 (hitlist hitrate over time)."""

from repro.analysis.figure5 import render_figure5, run_figure5

from benchmarks.conftest import save_artifact


def test_figure5(benchmark, dataset, artifact_dir):
    result = benchmark.pedantic(
        run_figure5, args=(dataset,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "figure5.txt", render_figure5(result))
    rates = result.hitrates()
    # Paper: server protocols ~0.8 after one month; CWMP collapses.
    for protocol in ("ftp", "http", "https"):
        assert 0.7 < rates[protocol][1] < 0.9
    assert rates["cwmp"][-1] < 0.55
