"""The 128-bit address-family hot paths.

Benchmarks the v6-specific machinery against a generated v6 preset
(``v6-tiny`` under ``REPRO_BENCH_PRESET=tiny``, ``v6-small``
otherwise): phi-selection counting over an S16 partition, the
hitlist + sampled sharded scan, and the big-modulus (Python-int)
cyclic walk that covers one announced /32.  Every scan variant must
merge to a byte-identical result — the executor-invariance contract
re-asserted on the v6 path.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.census.loader import get_dataset
from repro.core.tass import TassStrategy
from repro.scan.permutation import CyclicPermutation
from repro.scan.sharded import run_sharded

_PHI = 0.9
_SAMPLES = 16


@pytest.fixture(scope="module")
def v6_dataset():
    preset = os.environ.get("REPRO_BENCH_PRESET", "small")
    v6_preset = "v6-tiny" if preset == "tiny" else "v6-small"
    return get_dataset(preset=v6_preset, seed=0)


@pytest.fixture(scope="module")
def v6_inputs(v6_dataset):
    snapshot = v6_dataset.series_for("http").seed_snapshot
    strategy = TassStrategy(v6_dataset.topology.table, phi=_PHI)
    selection = strategy.plan(snapshot.addresses)
    return strategy, selection, snapshot.addresses


def test_v6_selection_plan(benchmark, v6_inputs):
    """Two-searchsorted counting + density ranking on S16 intervals."""
    strategy, selection, responsive = v6_inputs
    planned = benchmark(strategy.plan, responsive)
    assert planned.covered_hosts == selection.covered_hosts


def test_v6_sharded_scan(benchmark, v6_inputs):
    """Hitlist + sampled v6 scan through the sharded executor."""
    _, selection, responsive = v6_inputs
    reference = run_sharded(
        selection,
        responsive,
        shards=1,
        executor="serial",
        hitlist=responsive.values,
        samples=_SAMPLES,
    ).result

    def scan():
        return run_sharded(
            selection,
            responsive,
            shards=4,
            executor="serial",
            hitlist=responsive.values,
            samples=_SAMPLES,
        )

    run = benchmark(scan)
    assert dataclasses.astuple(run.result) == dataclasses.astuple(
        reference
    )


def test_v6_bigint_walk(benchmark):
    """First 8k elements of a 2^96-element cyclic walk (one /32)."""
    permutation = CyclicPermutation(1 << 96, seed=3)

    def drain():
        seen = 0
        for batch in permutation.batches(1 << 10):
            seen += len(batch)
            if seen >= 1 << 13:
                break
        return seen

    assert benchmark(drain) >= 1 << 13
