"""Benchmark + regeneration of Table 1.

Regenerates the paper's Table 1 (address-space coverage at
φ ∈ {1, 0.99, 0.95, 0.7, 0.5} × four protocols × both prefix views) and
times the full sweep.
"""

from repro.analysis.table1 import render_table1, run_table1

from benchmarks.conftest import save_artifact


def test_table1(benchmark, dataset, artifact_dir):
    result = benchmark.pedantic(
        run_table1, args=(dataset,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "table1.txt", render_table1(result))
    # Sanity: the headline orderings of the paper hold.
    assert result.cell("more-specific", 1.0, "ftp") < result.cell(
        "less-specific", 1.0, "ftp"
    )
    assert result.cell("less-specific", 0.5, "ftp") < 0.1
