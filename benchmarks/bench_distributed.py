"""Distributed executor: coordinator + socket workers vs serial.

Scans the phi=0.9 TASS selection for HTTP against the seed snapshot
through the ``distributed`` executor — real worker subprocesses, the
full length-prefixed socket protocol, requeue machinery armed — and
records the end-to-end cost next to the serial drain of the same
shards.  Every variant must merge to a byte-identical
:class:`ScanResult` (executor invariance, re-asserted here on the full
benchmark dataset), including a run with an injected worker failure.

The absolute numbers measure protocol + process-spawn overhead on one
host; the payoff of this executor is multi-node scale-out, which a
single-machine benchmark cannot show.
"""

import dataclasses

import pytest

from repro.core.tass import TassStrategy
from repro.scan.engine import EngineConfig
from repro.scan.sharded import run_sharded

_PHI = 0.9
_CONFIG = EngineConfig()


@pytest.fixture(scope="module")
def scan_inputs(dataset):
    seed = dataset.series_for("http").seed_snapshot
    strategy = TassStrategy(dataset.topology.table, phi=_PHI)
    return strategy.plan(seed.addresses), seed.addresses


@pytest.fixture(scope="module")
def reference_result(scan_inputs):
    selection, responsive = scan_inputs
    return run_sharded(
        selection, responsive, shards=1, executor="serial", config=_CONFIG
    ).result


def _assert_matches(run, reference):
    assert dataclasses.astuple(run.result) == dataclasses.astuple(reference)


@pytest.mark.parametrize("shards", [4, 8])
def test_distributed_workers(
    benchmark, scan_inputs, reference_result, shards
):
    selection, responsive = scan_inputs
    run = benchmark.pedantic(
        run_sharded,
        args=(selection, responsive),
        kwargs=dict(shards=shards, executor="distributed", config=_CONFIG),
        rounds=3,
        iterations=1,
    )
    _assert_matches(run, reference_result)


def test_distributed_with_worker_failure(
    benchmark, scan_inputs, reference_result, monkeypatch
):
    """One injected worker death + requeue; results must not move."""
    monkeypatch.setenv("REPRO_DIST_FAIL_SHARDS", "1")
    selection, responsive = scan_inputs
    run = benchmark.pedantic(
        run_sharded,
        args=(selection, responsive),
        kwargs=dict(shards=4, executor="distributed", config=_CONFIG),
        rounds=2,
        iterations=1,
    )
    _assert_matches(run, reference_result)
