"""Benchmark + regeneration of Figure 4 (density-ranked coverage curves).

Also exports the full per-rank series as CSV (the paper plots ~100K+
points; the text render downsamples).
"""

from repro.analysis.figure4 import (
    export_figure4_csv,
    render_figure4,
    run_figure4,
)

from benchmarks.conftest import save_artifact


def test_figure4(benchmark, dataset, artifact_dir):
    result = benchmark.pedantic(
        run_figure4, args=(dataset,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "figure4.txt", render_figure4(result))
    export_figure4_csv(result, str(artifact_dir))
    for (view, protocol), curve in result.curves.items():
        knees = result.knee_stats(view, protocol)
        # The concentration knee the paper's argument rests on.
        assert knees["space_at_host_0.5"] < 0.1, (view, protocol)
