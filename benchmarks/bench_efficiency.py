"""Benchmark + regeneration of the §1/§4 efficiency headline.

"TASS scans are 1.25 to 10 times more efficient for a period of at
least 6 months" — full campaign accounting against periodic full scans.
"""

from repro.analysis.efficiency import render_efficiency, run_efficiency

from benchmarks.conftest import save_artifact


def test_efficiency(benchmark, dataset, artifact_dir):
    result = benchmark.pedantic(
        run_efficiency, args=(dataset,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "efficiency.txt", render_efficiency(result))
    low, high = result.ratio_range()
    assert low > 1.0, "TASS must always beat periodic full scans"
    assert high > 2.5, "aggressive settings must be several times cheaper"
    for row in result.rows:
        assert row.final_hitrate > 0.8
