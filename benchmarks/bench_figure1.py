"""Benchmark + regeneration of Figure 1 (scanning-strategy scopes)."""

from repro.analysis.figure1 import render_figure1, run_figure1

from benchmarks.conftest import save_artifact


def test_figure1(benchmark, dataset, artifact_dir):
    result = benchmark.pedantic(
        run_figure1, args=(dataset,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "figure1.txt", render_figure1(result))
    assert (
        result.iana_slash0
        > result.iana_allocated
        > result.bgp_announced
        > max(result.hitlist_sizes.values())
    )
