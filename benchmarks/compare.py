#!/usr/bin/env python
"""Diff a fresh benchmark run against a committed baseline; gate CI.

Compares per-benchmark *mean* times from one or more pytest-benchmark
JSON files against a baseline JSON (normally the committed
``BENCH_small.json``) and exits non-zero when any benchmark regressed
by more than ``--tolerance`` (fractional; 0.25 = +25%).

Noise handling: pass several candidate run files and the **best (min)
mean per benchmark across runs** is compared — a 2-run best-of absorbs
one-off scheduler hiccups without hiding a real regression.  The same
applies to the baseline: repeat ``--against`` to take the best-of-N
across several freshly measured baseline runs, which tight-tolerance
gates (like the <5% observability-overhead check) need to keep noise
from dominating the margin.

Benchmarks present in only one side are reported but never fail the
gate (new benchmarks have no baseline yet; retired ones have no fresh
run).  Speedups are reported too — a big one is the cue to re-commit
the baseline.

Usage::

    python benchmarks/compare.py RUN.json [RUN2.json ...] \
        --against BENCH_small.json [--against BASE2.json ...] \
        [--tolerance 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["load_means", "best_means", "compare", "main"]


def load_means(path) -> dict[str, float]:
    """``{benchmark fullname: mean seconds}`` from a pytest-benchmark JSON."""
    data = json.loads(Path(path).read_text())
    return {
        bench["fullname"]: float(bench["stats"]["mean"])
        for bench in data["benchmarks"]
    }


def best_means(paths) -> dict[str, float]:
    """Per-benchmark minimum mean across several run files (best-of-N)."""
    best: dict[str, float] = {}
    for path in paths:
        for name, mean in load_means(path).items():
            if name not in best or mean < best[name]:
                best[name] = mean
    return best


def compare(baseline: dict, candidate: dict, tolerance: float):
    """Split the common benchmarks into (regressions, ok) row lists.

    Each row is ``(fullname, baseline_mean, candidate_mean, ratio)``;
    a regression is ``candidate > baseline * (1 + tolerance)``.
    """
    regressions, ok = [], []
    for name in sorted(set(baseline) & set(candidate)):
        base, cand = baseline[name], candidate[name]
        ratio = cand / base if base > 0 else float("inf")
        row = (name, base, cand, ratio)
        (regressions if cand > base * (1.0 + tolerance) else ok).append(row)
    return regressions, ok


def _render(rows, flag: str) -> str:
    return "\n".join(
        f"  {flag} {name}: {base * 1e3:9.3f}ms -> {cand * 1e3:9.3f}ms "
        f"({ratio:5.2f}x)"
        for name, base, cand, ratio in rows
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "runs",
        nargs="+",
        help="candidate pytest-benchmark JSON file(s); several = best-of-N",
    )
    parser.add_argument(
        "--against",
        action="append",
        required=True,
        help="baseline pytest-benchmark JSON (e.g. BENCH_small.json); "
        "repeatable — several baselines compare against their "
        "per-benchmark best-of",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional mean-time growth (default 0.25 = +25%%)",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("tolerance must be >= 0")

    baseline = best_means(args.against)
    candidate = best_means(args.runs)
    regressions, ok = compare(baseline, candidate, args.tolerance)

    missing = sorted(set(baseline) - set(candidate))
    fresh = sorted(set(candidate) - set(baseline))
    print(
        f"compared {len(regressions) + len(ok)} benchmark(s) against "
        f"{', '.join(args.against)} (tolerance +{args.tolerance:.0%}, "
        f"best of {len(args.runs)} run(s) vs best of "
        f"{len(args.against)} baseline(s))"
    )
    if ok:
        print(_render(ok, "ok"))
    for name in fresh:
        print(f"  ?? {name}: no baseline entry (skipped)")
    for name in missing:
        print(f"  -- {name}: not in this run (skipped)")
    if regressions:
        print(f"{len(regressions)} benchmark(s) regressed beyond tolerance:")
        print(_render(regressions, "!!"))
        return 1
    print("no benchmark regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `compare.py ... | head`
        sys.exit(141)
