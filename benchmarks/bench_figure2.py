"""Benchmark + regeneration of Figure 2 (prefix deaggregation).

Times the whole-table decomposition into the more-specific partition —
the heaviest routing-side computation in the pipeline.
"""

from repro.analysis.figure2 import render_figure2, run_figure2
from repro.bgp.deaggregate import partition_table

from benchmarks.conftest import save_artifact


def test_figure2(benchmark, dataset, artifact_dir):
    result = benchmark.pedantic(
        run_figure2, args=(dataset,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "figure2.txt", render_figure2(result))
    assert result.partition_covers_announced


def test_whole_table_deaggregation(benchmark, dataset):
    """Micro-benchmark: the raw Figure-2 algorithm at table scale."""
    table = dataset.topology.table
    forest = {p: table.children_of(p) for p in table.prefixes}

    parts = benchmark(partition_table, forest, table.l_prefixes)
    assert sum(p.size for p in parts) == sum(p.size for p in table.l_prefixes)
