"""Throughput benchmarks of the probe-level scanning substrate.

Not a paper figure — these quantify the simulator itself: cyclic-group
permutation generation and probe-level scan throughput with blocklist
filtering, the operations a real zmap-class scanner performs per packet.
"""

import numpy as np

from repro.census.addrset import AddressSet
from repro.core.tass import TassStrategy
from repro.scan.blocklist import default_blocklist
from repro.scan.engine import EngineConfig, ScanEngine
from repro.scan.permutation import CyclicPermutation
from repro.scan.targets import PrefixTargets


def test_permutation_throughput(benchmark):
    def run():
        perm = CyclicPermutation(1 << 20, seed=1)
        total = 0
        for batch in perm.batches(1 << 16):
            total += len(batch)
        return total

    assert benchmark(run) == 1 << 20


def test_iter_direct_throughput(benchmark):
    """Scalar iteration as shipped: yield straight from the batch arrays.

    Micro-bench pair with :func:`test_iter_tolist_reference` — the
    direct path skips the per-batch list materialisation (lazy,
    constant memory, cheap early exit) at the price of yielding
    ``np.int64`` scalars, which full-drain loops consume slightly
    slower than a pre-built list.  Keeping both quantifies that
    trade-off run over run.
    """

    def run():
        count = 0
        for _ in CyclicPermutation(1 << 17, seed=1):
            count += 1
        return count

    assert benchmark(run) == 1 << 17


def test_iter_tolist_reference(benchmark):
    """The old ``batch.tolist()`` iteration, kept as the reference."""

    def run():
        perm = CyclicPermutation(1 << 17, seed=1)
        count = 0
        for batch in perm.batches():
            for _ in batch.tolist():
                count += 1
        return count

    assert benchmark(run) == 1 << 17


def test_engine_throughput(benchmark, dataset):
    series = dataset.series_for("ftp")
    strategy = TassStrategy(dataset.topology.table, phi=0.5)
    plan = strategy.plan(series.seed_snapshot)
    engine = ScanEngine(
        EngineConfig(batch_size=1 << 16), blocklist=default_blocklist()
    )

    def run():
        targets = PrefixTargets(plan.prefixes, seed=7)
        return engine.run(targets, series[1].addresses, protocol="ftp")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.probes_sent == plan.probe_count()
    assert result.responses > 0


def test_membership_check_throughput(benchmark, dataset):
    """The per-batch responsive-set membership test in isolation."""
    truth = dataset.series_for("http").seed_snapshot.addresses
    rng = np.random.default_rng(0)
    probes = rng.integers(0, 1 << 32, size=1 << 20).astype(np.int64)
    truth_values = truth.values.astype(np.int64)

    def run():
        index = np.searchsorted(truth_values, probes)
        index = np.clip(index, 0, len(truth_values) - 1)
        return int((truth_values[index] == probes).sum())

    hits = benchmark(run)
    assert hits >= 0


def test_snapshot_intersection_throughput(benchmark, dataset):
    """Month-over-month snapshot intersection (the Figure 5 inner loop)."""
    series = dataset.series_for("https")
    a = series[0].addresses
    b = series[6].addresses

    def run():
        return a.intersection_count(b)

    assert benchmark(run) > 0


def test_address_set_algebra_throughput(benchmark, dataset):
    series = dataset.series_for("http")
    a, b = series[0].addresses, series[3].addresses

    def run():
        return len((a | b) - (a & b))

    assert benchmark(run) > 0


def test_mrt_roundtrip_throughput(benchmark, dataset, tmp_path_factory):
    """Write + parse an MRT RIB dump of the whole synthetic table."""
    from repro.bgp import pfx2as

    path = tmp_path_factory.mktemp("mrt") / "rib.mrt"

    def run():
        count = dataset.topology.write_mrt(path)
        return count, len(pfx2as.rib_to_pfx2as(path))

    written, parsed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert written == parsed > 0


def test_dataset_generation(benchmark):
    """End-to-end tiny-dataset generation (topology + census + churn)."""
    from repro.census.loader import CensusDataset

    result = benchmark.pedantic(
        CensusDataset.generate,
        kwargs={"preset": "tiny", "seed": 99},
        rounds=1,
        iterations=1,
    )
    assert result.protocols == ["cwmp", "ftp", "http", "https"]
