"""Benchmark + regeneration of the §3.4 headline statistics (FTP)."""

from repro.analysis.section34 import render_section34, run_section34

from benchmarks.conftest import save_artifact


def test_section34(benchmark, dataset, artifact_dir):
    result = benchmark.pedantic(
        run_section34, args=(dataset,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "section34.txt", render_section34(result))
    # phi=0.95 must cost far less space than phi=1 (paper: 27.3 vs 76.2).
    assert result.phi95_space_less < 0.6 * result.phi1_space_less
    # m-view cheaper than l-view at both settings.
    assert result.phi1_space_more < result.phi1_space_less
    assert result.phi95_space_more < result.phi95_space_less
    # The densest ~15% of prefixes hold the majority of hosts.
    assert result.dense_host_coverage > 0.5
    assert result.dense_space_coverage < 0.1
