"""Ablation: the counting-backend registry on the benchmark dataset.

Times every backend registered in :mod:`repro.bgp.backends` on the
same per-prefix counting task (TASS step 2) and asserts exact agreement
— the registry-level generalisation of the original searchsorted-vs-
trie ablation.  The trie oracle is subsampled to stay tractable.
"""

import numpy as np
import pytest

from repro.bgp.backends import count_with_backend
from repro.bgp.table import LESS_SPECIFIC
from repro.census.addrset import AddressSet


@pytest.fixture(scope="module")
def counting_task(dataset):
    partition = dataset.topology.table.partition(LESS_SPECIFIC)
    snapshot = dataset.series_for("http").seed_snapshot
    return partition, snapshot.addresses.values


@pytest.mark.parametrize("backend", ["searchsorted", "bitmap"])
def test_backend_vectorized(benchmark, counting_task, backend):
    partition, values = counting_task
    counts = benchmark(
        count_with_backend, partition.starts, partition.ends, values, backend
    )
    reference = partition.count_addresses(values)
    assert np.array_equal(counts, reference)


def test_backend_trie(benchmark, counting_task):
    partition, values = counting_task
    # The pure-Python trie walks one address at a time; subsample so the
    # oracle stays tractable, then verify agreement on the sample.
    sample = AddressSet(values[::37]).values
    counts = benchmark.pedantic(
        count_with_backend,
        args=(partition.starts, partition.ends, sample, "trie"),
        rounds=1,
        iterations=1,
    )
    assert np.array_equal(counts, partition.count_addresses(sample))
