"""Benchmark + regeneration of the re-seed interval sweep (TASS step 5)."""

from repro.analysis.reseeding import render_reseeding, run_reseeding

from benchmarks.conftest import save_artifact


def test_reseeding(benchmark, dataset, artifact_dir):
    result = benchmark.pedantic(
        run_reseeding, args=(dataset,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "reseeding.txt", render_reseeding(result))
    for protocol in dataset.protocols:
        rows = {row.reseed_every: row for row in result.for_protocol(protocol)}
        assert rows[None].total_probes < rows[1].total_probes
        assert rows[1].worst_hitrate >= rows[None].worst_hitrate
