"""Benchmark + regeneration of the static-vs-adaptive TASS comparison."""

from repro.analysis.adaptive import render_adaptive, run_adaptive

from benchmarks.conftest import save_artifact


def test_adaptive(benchmark, dataset, artifact_dir):
    result = benchmark.pedantic(
        run_adaptive, args=(dataset,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "adaptive.txt", render_adaptive(result))
    for comparison in result.comparisons:
        assert comparison.hitrate_gain_month6 > -0.01
        assert comparison.probe_overhead > 0.0
