#!/usr/bin/env python
"""Run the benchmark suite and record the perf trajectory.

Runs pytest over ``benchmarks/`` with ``pytest-benchmark`` JSON output
enabled, writing ``BENCH_<preset>.json`` at the repository root so the
performance trajectory of every preset is tracked in-tree.

Usage::

    python benchmarks/run_bench.py [--preset small] [pytest args...]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--preset",
        default=os.environ.get("REPRO_BENCH_PRESET", "small"),
        choices=("tiny", "small", "medium"),
        help="dataset preset to benchmark against",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="benchmark JSON path (default BENCH_<preset>.json at the "
        "repo root); the perf gate writes per-run files here",
    )
    args, pytest_args = parser.parse_known_args(argv)

    env = dict(os.environ)
    env["REPRO_BENCH_PRESET"] = args.preset
    src = str(ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    output = Path(args.output) if args.output else (
        ROOT / f"BENCH_{args.preset}.json"
    )
    command = [
        sys.executable,
        "-m",
        "pytest",
        "benchmarks",
        "-q",
        f"--benchmark-json={output}",
        *pytest_args,
    ]
    print("+", " ".join(command), flush=True)
    return subprocess.call(command, cwd=ROOT, env=env)


if __name__ == "__main__":
    raise SystemExit(main())
