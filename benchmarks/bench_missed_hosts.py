"""Benchmark + regeneration of the found-vs-missed host analysis (§5)."""

from repro.analysis.missed import render_missed_hosts, run_missed_hosts

from benchmarks.conftest import save_artifact


def test_missed_hosts(benchmark, dataset, artifact_dir):
    result = benchmark.pedantic(
        run_missed_hosts, args=(dataset,), rounds=1, iterations=1
    )
    save_artifact(
        artifact_dir, "missed_hosts.txt", render_missed_hosts(result)
    )
    assert result.found_count > result.missed_count
    assert 0.0 <= result.kind_divergence <= 1.0
