"""Ablation: per-prefix counting backends.

TASS step 2 counts responsive addresses per prefix.  The library uses a
vectorized two-``searchsorted`` pass over the sorted snapshot; the
classic alternative is longest-prefix-matching every address in a radix
trie.  This benchmark quantifies the gap (typically 2-3 orders of
magnitude) and asserts the two agree.
"""

import numpy as np

from repro.bgp.table import LESS_SPECIFIC
from repro.census.addrset import AddressSet
from repro.core.density import count_with_trie


def test_counting_vectorized(benchmark, dataset):
    partition = dataset.topology.table.partition(LESS_SPECIFIC)
    snapshot = dataset.series_for("http").seed_snapshot
    counts = benchmark(partition.count_addresses, snapshot.addresses.values)
    assert counts.sum() == len(snapshot.addresses)


def test_counting_trie(benchmark, dataset):
    partition = dataset.topology.table.partition(LESS_SPECIFIC)
    snapshot = dataset.series_for("http").seed_snapshot
    # The trie path is orders of magnitude slower; subsample so the
    # benchmark stays tractable, then verify agreement on the sample.
    sample = AddressSet(snapshot.addresses.values[::37])
    counts = benchmark.pedantic(
        count_with_trie, args=(sample, partition), rounds=1, iterations=1
    )
    assert np.array_equal(counts, partition.count_addresses(sample.values))
