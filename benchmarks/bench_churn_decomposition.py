"""Benchmark + regeneration of the churn-decomposition analysis (§2)."""

from repro.analysis.churn_decomposition import (
    render_churn_decomposition,
    run_churn_decomposition,
)

from benchmarks.conftest import save_artifact


def test_churn_decomposition(benchmark, dataset, artifact_dir):
    result = benchmark.pedantic(
        run_churn_decomposition, args=(dataset,), rounds=1, iterations=1
    )
    save_artifact(
        artifact_dir,
        "churn_decomposition.txt",
        render_churn_decomposition(result),
    )
    for row in result.rows:
        # The paper's stability explanation: most hitlist loss must be
        # within-prefix renumbering that prefix scanning survives.
        assert row.breakdown.renumbering_share > 0.5, row.protocol
