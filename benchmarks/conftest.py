"""Benchmark fixtures.

Benchmarks run against a cached dataset; the preset is selected with the
``REPRO_BENCH_PRESET`` environment variable (default ``small`` — a good
speed/fidelity compromise; use ``medium`` for the full-scale paper
reproduction).  The first run generates and caches the dataset under
``data/``; later runs reload it in a couple of seconds.

Rendered experiment output is written to ``benchmarks/out/`` so the
tables/series survive pytest's output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.census.loader import get_dataset

OUTPUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def dataset():
    """The benchmark dataset (env ``REPRO_BENCH_PRESET``, default small)."""
    preset = os.environ.get("REPRO_BENCH_PRESET", "small")
    return get_dataset(preset=preset, seed=0)


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    """Directory for rendered tables and CSV artifacts."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


def save_artifact(directory: Path, name: str, text: str) -> None:
    """Write rendered experiment output (and echo it for -s runs)."""
    (directory / name).write_text(text + "\n")
    print()
    print(text)
