"""Orchestrator units: spec, policy, pacing, checkpoints, wave behavior."""

import json

import numpy as np
import pytest

from repro.orchestrator import (
    CampaignRunner,
    CampaignSpec,
    CheckpointStore,
    PacedTargets,
    ReseedPolicy,
    TokenBucket,
    compile_waves,
    run_campaign,
)
from repro.orchestrator.checkpoint import CHECKPOINT_VERSION
from repro.orchestrator.waves import (
    explore_unselected,
    hold_or_reseed,
    sample_complement,
    selection_stats,
)

SPEC = CampaignSpec(
    preset="mini",
    waves=3,
    phi=0.9,
    shards=3,
    executor="serial",
    batch_size=1 << 12,
)


# ---------------------------------------------------------------------------
# Spec and policy
# ---------------------------------------------------------------------------


class TestCampaignSpec:
    def test_roundtrips_through_dict(self):
        spec = SPEC.resolved()
        again = CampaignSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert again == spec

    def test_resolved_pins_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCAN_SHARDS", "5")
        monkeypatch.setenv("REPRO_COUNT_BACKEND", "bitmap")
        resolved = CampaignSpec().resolved()
        assert resolved.shards == 5
        assert resolved.executor == "serial"
        assert resolved.backend == "bitmap"
        # Resolution is idempotent: a stored spec re-resolves to itself.
        monkeypatch.setenv("REPRO_SCAN_SHARDS", "9")
        assert resolved.resolved() == resolved

    def test_bad_env_knob_fails_at_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCAN_EXECUTOR", "bogus")
        with pytest.raises(ValueError, match="unknown executor"):
            CampaignSpec().resolved()

    def test_pacing_requires_serial_executor(self):
        spec = CampaignSpec(executor="process", probes_per_sec=1000.0)
        with pytest.raises(ValueError, match="serial executor"):
            spec.resolved()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"waves": 0},
            {"phi": 0.0},
            {"phi": 1.5},
            {"view": "sideways"},
            {"explore_frac": 1.0},
            {"batch_size": 0},
            {"probe_budget": -1},
            {"probes_per_sec": 0.0},
            {"name": ""},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CampaignSpec(**kwargs)


class TestReseedPolicy:
    def test_wave_zero_always_seeds(self):
        for policy in (
            ReseedPolicy("never"),
            ReseedPolicy("interval", interval=0),
            ReseedPolicy("hitrate", min_hitrate=0.0),
        ):
            assert policy.decide(0, None) is True

    def test_interval_schedule(self):
        policy = ReseedPolicy("interval", interval=2)
        assert [policy.decide(w, None) for w in range(5)] == [
            True, False, True, False, True,
        ]

    def test_hitrate_trigger_uses_previous_wave(self):
        policy = ReseedPolicy("hitrate", min_hitrate=0.9)
        assert policy.decide(1, 0.95) is False
        assert policy.decide(1, 0.85) is True
        assert policy.decide(1, None) is False

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown reseed mode"):
            ReseedPolicy("sometimes")

    def test_compile_waves_clamps_months(self):
        plans = compile_waves(5, 3, ReseedPolicy("interval", interval=2))
        assert [p.month for p in plans] == [0, 1, 2, 2, 2]
        assert [p.reseed for p in plans] == [True, False, True, False, True]

    def test_compile_waves_hitrate_is_conditional(self):
        plans = compile_waves(3, 3, ReseedPolicy("hitrate", min_hitrate=0.5))
        assert plans[0].reseed is True
        assert plans[1].reseed is None and plans[2].reseed is None


# ---------------------------------------------------------------------------
# Pacing
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        assert seconds >= 0
        self.now += seconds


class TestTokenBucket:
    def test_burst_within_capacity_never_sleeps(self):
        clock = FakeClock()
        bucket = TokenBucket(100.0, clock=clock, sleep=clock.sleep)
        assert bucket.throttle(100) == 0.0
        assert bucket.slept == 0.0

    def test_sustained_rate_is_bounded(self):
        clock = FakeClock()
        bucket = TokenBucket(1000.0, clock=clock, sleep=clock.sleep)
        for _ in range(10):
            bucket.throttle(500)
        # 5000 tokens at 1000/sec with a 1000-token burst head start.
        assert clock.now == pytest.approx(4.0)
        assert bucket.consumed == 5000
        assert bucket.achieved_rate == pytest.approx(5000 / 4.0)

    def test_oversized_request_allowed(self):
        clock = FakeClock()
        bucket = TokenBucket(100.0, capacity=10.0, clock=clock,
                             sleep=clock.sleep)
        bucket.throttle(1000)  # 100x the burst capacity
        assert clock.now == pytest.approx((1000 - 10) / 100.0)

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0)
        with pytest.raises(ValueError):
            TokenBucket(10.0, capacity=0.0)

    def test_paced_targets_passes_batches_through(self):
        from repro.scan.sharded import IntervalTargets

        clock = FakeClock()
        bucket = TokenBucket(1e12, clock=clock, sleep=clock.sleep)
        targets = IntervalTargets(5000, seed=3)
        plain = [b.tolist() for b in targets.batches(512)]
        paced = [
            b.tolist()
            for b in PacedTargets(targets, bucket).batches(512)
        ]
        assert paced == plain
        assert bucket.consumed == 5000

    def test_overshooting_sleep_credits_elapsed_time(self):
        # Regression: throttle used to zero the bucket after sleeping,
        # discarding every token accrued while the OS overslept.
        clock = FakeClock()
        bucket = TokenBucket(
            100.0, clock=clock,
            sleep=lambda seconds: clock.sleep(seconds * 1.5),
        )
        bucket.throttle(100)  # drains the initial burst, no sleep
        bucket.throttle(100)  # asks for 1.0s, the clock advances 1.5s
        assert bucket.slept == pytest.approx(1.0)
        # The 0.5s overshoot accrued 50 tokens; they must be spendable.
        assert bucket.throttle(50) == 0.0
        assert clock.now == pytest.approx(1.5)

    def test_long_paced_run_does_not_drift_below_rate(self):
        # With a sleep that always overshoots by 25%, the credited
        # surplus must pull later waits down so the achieved rate
        # converges to the configured one instead of drifting 25% low.
        clock = FakeClock()
        bucket = TokenBucket(
            1000.0, clock=clock,
            sleep=lambda seconds: clock.sleep(seconds * 1.25),
        )
        for _ in range(100):
            bucket.throttle(500)
        assert bucket.achieved_rate == pytest.approx(1000.0, rel=0.02)
        # The pre-fix bucket lands at 61.25s here (~816 tokens/sec).
        assert clock.now < 50.0

    def test_undershooting_sleep_keeps_the_rate_bounded(self):
        # A sleep returning *early* leaves a deficit the next throttle
        # must wait out — the average rate never exceeds the configured.
        clock = FakeClock()
        bucket = TokenBucket(
            1000.0, clock=clock,
            sleep=lambda seconds: clock.sleep(seconds * 0.5),
        )
        for _ in range(50):
            bucket.throttle(500)
        # Never more than rate * elapsed + the burst head start + the
        # one in-flight request the deficit is charged against.
        assert bucket.consumed <= 1000.0 * clock.now + 1000.0 + 500.0 + 1e-6
        assert bucket.achieved_rate == pytest.approx(1000.0, rel=0.10)

    def test_zero_elapsed_rate_is_json_safe(self):
        # Regression: with tokens consumed but no clock movement (a
        # burst served entirely from capacity), achieved_rate returned
        # float("inf"), which json.dumps emits as a bare Infinity
        # token — invalid JSON in progress.json.
        clock = FakeClock()
        bucket = TokenBucket(100.0, clock=clock, sleep=clock.sleep)
        bucket.throttle(50)  # within burst: the clock never advances
        assert clock.now == 0.0 and bucket.consumed == 50
        assert bucket.achieved_rate == 0.0
        progress = {"achieved_probes_per_sec": bucket.achieved_rate}
        text = json.dumps(progress, allow_nan=False)  # must not raise
        assert json.loads(text) == progress


# ---------------------------------------------------------------------------
# Checkpoint store
# ---------------------------------------------------------------------------


class TestCheckpointStore:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "camp")
        manifest = {"wave": 2, "shard": 1, "records": [{"a": 1}]}
        mask = np.array([True, False, True])
        store.save(manifest, {"mask": mask})
        loaded, arrays = store.load()
        assert loaded["wave"] == 2 and loaded["shard"] == 1
        assert loaded["version"] == CHECKPOINT_VERSION
        assert np.array_equal(arrays["mask"], mask)

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"wave": 0}, {"mask": np.zeros(3, dtype=bool)})
        leftovers = [
            p.name for p in tmp_path.iterdir() if ".tmp" in p.name
        ]
        assert leftovers == []

    def test_load_without_checkpoint_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="nothing to resume"):
            CheckpointStore(tmp_path).load()

    def test_reserved_array_name_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            CheckpointStore(tmp_path).save({}, {"manifest": np.zeros(1)})

    def test_missing_spec_mentions_plan(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="plan"):
            CheckpointStore(tmp_path).read_spec()

    def test_save_fsyncs_file_and_directory(self, tmp_path, monkeypatch):
        # Durability regression: rename-without-fsync can surface a
        # truncated "atomic" checkpoint after a power loss.  Both the
        # tmp file (before the rename) and the directory (after it)
        # must be fsynced.
        import os as _os

        store = CheckpointStore(tmp_path)
        real_fsync = _os.fsync
        synced = []

        def recording_fsync(fd):
            synced.append(_os.fstat(fd).st_mode)
            return real_fsync(fd)

        import stat

        monkeypatch.setattr(
            "repro.orchestrator.checkpoint.os.fsync", recording_fsync
        )
        store.save({"wave": 0}, {"mask": np.zeros(3, dtype=bool)})
        assert any(stat.S_ISREG(mode) for mode in synced), "file fsync"
        assert any(stat.S_ISDIR(mode) for mode in synced), "dir fsync"

        synced.clear()
        store.write_status({"finished": False})
        assert any(stat.S_ISREG(mode) for mode in synced)
        assert any(stat.S_ISDIR(mode) for mode in synced)

    def test_orphaned_tmp_files_swept_on_open(self, tmp_path):
        directory = tmp_path / "camp"
        directory.mkdir()
        (directory / "checkpoint.tmp.npz").write_bytes(b"truncated")
        (directory / "status.tmp").write_text("{")
        store = CheckpointStore(directory)
        assert not (directory / "checkpoint.tmp.npz").exists()
        assert not (directory / "status.tmp").exists()
        assert not store.has_checkpoint()

    def test_write_progress_never_emits_non_finite_json(self, tmp_path):
        # Telemetry rates are wall-clock derived, so a pathological
        # clock must degrade to null — never to the Infinity/NaN
        # tokens strict JSON parsers reject.
        store = CheckpointStore(tmp_path)
        store.write_progress(
            {
                "rate": float("inf"),
                "nested": {"x": float("nan"), "deep": [float("-inf")]},
                "ok": 1.5,
                "n": 3,
            }
        )

        def no_constants(token):
            raise AssertionError(
                f"non-finite constant {token!r} in progress.json"
            )

        text = (tmp_path / "progress.json").read_text()
        doc = json.loads(text, parse_constant=no_constants)
        assert doc["rate"] is None
        assert doc["nested"]["x"] is None
        assert doc["nested"]["deep"] == [None]
        assert doc["ok"] == 1.5 and doc["n"] == 3


# ---------------------------------------------------------------------------
# Wave cores
# ---------------------------------------------------------------------------


class TestWaveCores:
    def test_sample_complement_stays_outside_selection(self, mini_dataset):
        partition = mini_dataset.topology.table.partition("less-specific")
        selected = np.array([True, False, False, True])
        rng = np.random.default_rng(0)
        probes, unselected = sample_complement(rng, partition, selected, 500)
        assert unselected.tolist() == [1, 2]
        assert len(probes) == 500
        inside = partition.index_of(probes)
        assert set(inside.tolist()) <= {1, 2}

    def test_selection_stats_counts_exactly(self, mini_dataset):
        partition = mini_dataset.topology.table.partition("less-specific")
        values = mini_dataset.series_for("http").seed_snapshot.addresses.values
        selected = np.array([True, False, False, False])
        found, size = selection_stats(partition, selected, values)
        assert size == int(partition.sizes[0])
        assert found == int(partition.count_addresses(values)[0])

    def test_explore_absorbs_only_fresh_prefixes(self, mini_dataset):
        partition = mini_dataset.topology.table.partition("less-specific")
        values = mini_dataset.series_for("http").seed_snapshot.addresses.values
        selected = np.array([True, False, False, True])
        rng = np.random.default_rng(1)
        probes, hits, fresh = explore_unselected(
            rng, partition, selected, values, 20000
        )
        assert len(probes) == 20000
        assert np.all(~selected[fresh])
        # Every reported hit really is a responsive address.
        assert np.isin(hits, values).all()

    def test_hold_or_reseed_accounting(self, mini_dataset):
        from repro.core.tass import TassStrategy

        table = mini_dataset.topology.table
        announced = table.partition("less-specific").address_count()
        series = mini_dataset.series_for("http")
        strategy = TassStrategy(table, phi=0.9)
        selection = strategy.plan(series.seed_snapshot)
        held, probes, rate = hold_or_reseed(
            strategy, selection, series[1], False, announced
        )
        assert held is selection
        assert probes == selection.probe_count()
        assert 0.0 < rate <= 1.0
        reseeded, probes2, rate2 = hold_or_reseed(
            strategy, selection, series[1], True, announced
        )
        assert reseeded is not selection
        assert probes2 == announced and rate2 == 1.0


# ---------------------------------------------------------------------------
# Campaign behavior
# ---------------------------------------------------------------------------


class TestCampaign:
    def test_records_one_per_wave(self, mini_dataset):
        status = run_campaign(SPEC, dataset=mini_dataset)
        assert status["waves_completed"] == 3
        assert [w["wave"] for w in status["waves"]] == [0, 1, 2]
        assert status["finished"] is True
        assert status["budget_exhausted"] is False
        assert status["waves"][0]["reseeded"] is True

    def test_wave_scan_matches_selection_hitrate(self, mini_dataset):
        from repro.core.tass import TassStrategy

        status = run_campaign(SPEC, dataset=mini_dataset)
        table = mini_dataset.topology.table
        series = mini_dataset.series_for("http")
        selection = TassStrategy(table, phi=0.9).plan(series.seed_snapshot)
        wave0 = status["waves"][0]
        assert wave0["probes_sent"] == selection.probe_count()
        assert wave0["responses"] == selection.count_in(
            series[0].addresses.values
        )
        assert wave0["missed"] == wave0["responsive_hosts"] - wave0["responses"]

    def test_interval_policy_reseeds_on_schedule(self, mini_dataset):
        spec = CampaignSpec(
            preset="mini", waves=4, phi=0.9, shards=2, executor="serial",
            reseed=ReseedPolicy("interval", interval=2),
            batch_size=1 << 12,
        )
        status = run_campaign(spec, dataset=mini_dataset)
        assert [w["reseeded"] for w in status["waves"]] == [
            True, False, True, False,
        ]
        assert status["totals"]["reseeds"] == 2

    def test_hitrate_policy_reseeds_when_coverage_drops(self, mini_dataset):
        spec = CampaignSpec(
            preset="mini", waves=3, phi=0.9, shards=1, executor="serial",
            reseed=ReseedPolicy("hitrate", min_hitrate=1.0),
            batch_size=1 << 12,
        )
        status = run_campaign(spec, dataset=mini_dataset)
        # A threshold of 1.0 forces a reseed after every imperfect wave.
        assert all(w["reseeded"] for w in status["waves"])

    def test_probe_budget_stops_campaign(self, mini_dataset):
        one_wave = run_campaign(SPEC, dataset=mini_dataset)["waves"][0]
        spec = CampaignSpec(
            preset="mini", waves=3, phi=0.9, shards=3, executor="serial",
            probe_budget=one_wave["probes_sent"],
            batch_size=1 << 12,
        )
        status = run_campaign(spec, dataset=mini_dataset)
        assert status["budget_exhausted"] is True
        assert status["waves_completed"] == 1
        assert status["finished"] is True

    def test_exploration_absorbs_and_accounts(self, mini_dataset):
        spec = CampaignSpec(
            preset="mini", waves=3, phi=0.7, shards=2, executor="serial",
            explore_frac=0.01, batch_size=1 << 12,
        )
        status = run_campaign(spec, dataset=mini_dataset)
        totals = status["totals"]
        assert totals["explore_probes"] > 0
        for wave in status["waves"]:
            assert wave["probes_sent"] >= wave["explore_probes"]
            assert wave["responses"] >= wave["explore_hits"]

    def test_reseed_scan_charges_announced_space(self, mini_dataset):
        announced = mini_dataset.topology.table.partition(
            "less-specific"
        ).address_count()
        spec = CampaignSpec(
            preset="mini", waves=2, phi=0.9, shards=2, executor="serial",
            reseed_scan=True, batch_size=1 << 12,
        )
        status = run_campaign(spec, dataset=mini_dataset)
        wave0 = status["waves"][0]
        assert wave0["probes_sent"] == announced
        assert wave0["hitrate"] == pytest.approx(1.0)
        # Held waves still scan just the selection.
        assert status["waves"][1]["probes_sent"] < announced

    def test_full_scan_waves_skip_exploration(self, mini_dataset):
        # A discovery scan already probed the unselected space;
        # exploring it again would double-count hosts (hitrate > 1).
        spec = CampaignSpec(
            preset="mini", waves=2, phi=0.9, shards=2, executor="serial",
            reseed_scan=True, explore_frac=0.05, batch_size=1 << 12,
        )
        status = run_campaign(spec, dataset=mini_dataset)
        wave0 = status["waves"][0]
        assert wave0["explore_probes"] == 0
        assert wave0["hitrate"] == pytest.approx(1.0)
        assert wave0["missed"] == 0
        for wave in status["waves"]:
            assert 0.0 <= wave["hitrate"] <= 1.0
            assert wave["missed"] >= 0
        # The held wave still explores.
        assert status["waves"][1]["explore_probes"] > 0

    def test_shard_count_invariant_accounting(self, mini_dataset):
        baseline = None
        for shards in (1, 2, 5):
            spec = CampaignSpec(
                preset="mini", waves=2, phi=0.9, shards=shards,
                executor="serial", batch_size=1 << 12,
            )
            status = run_campaign(spec, dataset=mini_dataset)
            digest = json.dumps(status["waves"], sort_keys=True)
            if baseline is None:
                baseline = digest
            else:
                assert digest == baseline

    def test_pacing_does_not_change_results(self, mini_dataset):
        unpaced = run_campaign(SPEC, dataset=mini_dataset)
        paced_spec = CampaignSpec(
            preset="mini", waves=3, phi=0.9, shards=3, executor="serial",
            probes_per_sec=1e9, batch_size=1 << 12,
        )
        paced = run_campaign(paced_spec, dataset=mini_dataset)
        assert paced["waves"] == unpaced["waves"]
        assert paced["totals"] == unpaced["totals"]

    def test_status_json_is_wall_clock_free(self, mini_dataset, tmp_path):
        run_campaign(SPEC, dataset=mini_dataset, directory=tmp_path)
        status_text = (tmp_path / "status.json").read_text()
        status = json.loads(status_text)
        assert "time" not in json.dumps(status)
        # Telemetry lives in progress.json instead.
        progress = json.loads((tmp_path / "progress.json").read_text())
        assert "time" in progress

    def test_mid_campaign_status_totals_are_consistent(
        self, mini_dataset, tmp_path
    ):
        from repro.orchestrator.campaign import status_from_manifest

        class Stop(Exception):
            pass

        runner = CampaignRunner(SPEC, dataset=mini_dataset,
                                directory=tmp_path)
        seen = [0]

        def kill(r):
            seen[0] += 1
            if seen[0] == 5:  # mid wave 1 (wave 0 took 3+1 checkpoints)
                raise Stop()

        with pytest.raises(Stop):
            runner.run(on_checkpoint=kill)
        manifest, _ = CheckpointStore(tmp_path).load()
        status = status_from_manifest(manifest)
        assert status["position"]["wave"] == 1
        assert status["position"]["shard"] == 1
        # In-flight shard responses/blocked are folded in alongside the
        # in-flight probes, keeping mid-campaign totals coherent.
        wave0 = status["waves"][0]
        in_flight = manifest["shard_results"]
        assert status["totals"]["probes_sent"] == (
            wave0["probes_sent"] + sum(s[0] for s in in_flight)
        )
        assert status["totals"]["responses"] == (
            wave0["responses"] + sum(s[1] for s in in_flight)
        )
        assert len(in_flight) == 1

    def test_runner_rejects_foreign_checkpoint_mask(
        self, mini_dataset, tmp_path
    ):
        run_campaign(SPEC, dataset=mini_dataset, directory=tmp_path)
        store = CheckpointStore(tmp_path)
        manifest, _ = store.load()
        store.save(manifest, {"mask": np.zeros(99, dtype=bool)})
        with pytest.raises(ValueError, match="different dataset"):
            CampaignRunner.resume(tmp_path, dataset=mini_dataset)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


@pytest.fixture
def cli_env(monkeypatch):
    """Point the CLI's dataset cache at the committed tiny dataset."""
    from pathlib import Path

    monkeypatch.setenv(
        "REPRO_DATA_DIR", str(Path(__file__).parent.parent / "data")
    )


class TestCli:
    PLAN_ARGS = [
        "--preset", "tiny", "--protocol", "http", "--phi", "0.5",
        "--waves", "2", "--shards", "2", "--executor", "serial",
        "--batch-size", "16384",
    ]

    def _plan(self, directory):
        from repro.orchestrator.cli import main

        return main(["plan", "--dir", str(directory), *self.PLAN_ARGS])

    def test_plan_run_status_roundtrip(self, tmp_path, capsys, cli_env):
        from repro.orchestrator.cli import main

        assert self._plan(tmp_path) == 0
        out = capsys.readouterr().out
        assert "wave 0: census month 0 [reseed]" in out
        assert "wave 1: census month 1 [hold]" in out
        assert (tmp_path / "campaign.json").exists()

        assert main(["run", "--dir", str(tmp_path)]) == 0
        assert "2/2 waves" in capsys.readouterr().out

        assert main(["status", "--dir", str(tmp_path), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["waves_completed"] == 2
        assert status["finished"] is True
        assert status["spec"]["shards"] == 2

    def test_run_refuses_to_clobber_checkpoint(self, tmp_path, capsys,
                                               cli_env):
        from repro.orchestrator.cli import main

        self._plan(tmp_path)
        assert main(["run", "--dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["run", "--dir", str(tmp_path)]) == 2
        assert "resume" in capsys.readouterr().err
        assert main(["run", "--dir", str(tmp_path), "--fresh"]) == 0

    def test_run_without_plan_is_a_clean_error(self, tmp_path, capsys,
                                               cli_env):
        from repro.orchestrator.cli import main

        assert main(["run", "--dir", str(tmp_path / "nowhere")]) == 2
        assert "plan" in capsys.readouterr().err

    def test_bad_knob_is_a_clean_error(self, tmp_path, capsys, cli_env):
        from repro.orchestrator.cli import main

        code = main(
            ["plan", "--dir", str(tmp_path), "--preset", "tiny",
             "--shards", "lots"]
        )
        assert code == 2
        assert "positive integer" in capsys.readouterr().err
