"""Regression contract for progress.json.

``progress.json`` is the wall-clock-side heartbeat: advisory, never
read back to reconstruct deterministic state, but external tooling
(`status --follow`, dashboards, the obs report) depends on its shape.
Every key must be documented in ``PROGRESS_KEYS``, strictly
JSON-serializable (``allow_nan=False``), and present regardless of
which executor ran the campaign.
"""

import json

import pytest

from conftest import build_mini_dataset
from repro.orchestrator import CampaignRunner, CampaignSpec
from repro.orchestrator.campaign import PROGRESS_KEYS


def _run_campaign(tmp_path, executor, monkeypatch):
    if executor == "distributed":
        monkeypatch.setenv("REPRO_DIST_WORKERS", "2")
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    spec = CampaignSpec(
        preset="mini",
        waves=2,
        phi=0.9,
        shards=2,
        executor=executor,
        batch_size=1 << 12,
    )
    directory = tmp_path / executor
    runner = CampaignRunner(
        spec, dataset=build_mini_dataset(), directory=directory
    )
    runner.store.write_spec(runner.spec.to_dict())
    runner.run()
    return json.loads((directory / "progress.json").read_text())


def test_every_key_is_documented():
    assert PROGRESS_KEYS
    for key, doc in PROGRESS_KEYS.items():
        assert isinstance(key, str) and key
        assert isinstance(doc, str) and doc.strip(), (
            f"PROGRESS_KEYS[{key!r}] needs a real description"
        )


@pytest.mark.parametrize(
    "executor", ["serial", "process", "distributed"]
)
def test_schema_is_stable_across_executors(
    tmp_path, monkeypatch, executor
):
    progress = _run_campaign(tmp_path, executor, monkeypatch)

    # Exactly the documented keys — nothing undeclared, nothing missing.
    assert set(progress) == set(PROGRESS_KEYS)

    # Strict JSON: round-trips losslessly and admits no NaN/Infinity.
    encoded = json.dumps(progress, allow_nan=False, sort_keys=True)
    assert json.loads(encoded) == progress

    assert isinstance(progress["time"], float)
    assert progress["executor"] == executor
    assert progress["finished"] is True
    assert progress["waves_completed"] == 2
    assert isinstance(progress["probes_sent"], int)
    assert progress["probes_sent"] > 0
    assert progress["wave_retries_used"] == 0
    assert isinstance(progress["executor_telemetry"], dict)
    if executor == "distributed":
        # The fleet reports in even on a clean run.
        telemetry = progress["executor_telemetry"]
        assert telemetry["fleet_initial"] == 2
        assert telemetry["failures"] == 0
    else:
        assert progress["executor_telemetry"] == {}
