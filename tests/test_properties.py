"""Hypothesis property tests: AddressSet algebra and permutation shards.

The AddressSet properties check every set operation against the
built-in ``set`` oracle on random address arrays; the permutation
properties check full-cycle bijectivity and the shard disjoint-union
invariant over random cyclic-group parameters.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.census.addrset import AddressSet
from repro.scan.permutation import CyclicPermutation

addresses = st.lists(
    st.integers(min_value=0, max_value=(1 << 32) - 1), max_size=200
)


def _pyset(address_set: AddressSet) -> set:
    return set(address_set.values.tolist())


@given(addresses, addresses)
def test_addrset_algebra_matches_set_oracle(a, b):
    sa, sb = AddressSet(a), AddressSet(b)
    oa, ob = set(a), set(b)
    assert _pyset(sa) == oa
    assert _pyset(sa | sb) == oa | ob
    assert _pyset(sa & sb) == oa & ob
    assert _pyset(sa - sb) == oa - ob
    assert _pyset(sa ^ sb) == oa ^ ob
    assert sa.intersection_count(sb) == len(oa & ob)
    assert sa.issubset(sb) == oa.issubset(ob)
    assert (sa | sb) == (sb | sa)


@given(addresses, addresses)
def test_addrset_membership_matches_oracle(a, b):
    sa = AddressSet(a)
    oa = set(a)
    probes = np.asarray(b, dtype=np.int64)
    mask = sa.membership(probes)
    assert mask.tolist() == [v in oa for v in b]
    for v in b[:10]:
        assert (v in sa) == (v in oa)


@given(addresses)
def test_addrset_values_sorted_unique(a):
    sa = AddressSet(a)
    values = sa.values
    assert np.array_equal(values, np.unique(np.asarray(a, dtype=np.int64)))


@given(
    st.integers(min_value=1, max_value=5000),
    st.integers(min_value=0, max_value=1 << 30),
    st.integers(min_value=1, max_value=512),
)
@settings(max_examples=50, deadline=None)
def test_permutation_is_bijective(n, seed, batch_size):
    perm = CyclicPermutation(n, seed=seed)
    values = np.concatenate(list(perm.batches(batch_size)))
    assert np.array_equal(np.sort(values), np.arange(n))


@given(
    st.integers(min_value=1, max_value=3000),
    st.integers(min_value=0, max_value=1 << 30),
    st.integers(min_value=1, max_value=12),
)
@settings(max_examples=50, deadline=None)
def test_shards_are_a_disjoint_cover(n, seed, shards):
    perm = CyclicPermutation(n, seed=seed)
    pieces = []
    for i in range(shards):
        batches = list(perm.shard(i, shards).batches(97))
        if batches:
            pieces.append(np.concatenate(batches))
    union = np.concatenate(pieces)
    # Jointly a bijection onto range(n): disjointness and coverage both.
    assert np.array_equal(np.sort(union), np.arange(n))


@given(
    st.integers(min_value=2, max_value=3000),
    st.integers(min_value=0, max_value=1 << 30),
    st.integers(min_value=2, max_value=8),
)
@settings(max_examples=25, deadline=None)
def test_shards_preserve_full_walk_order(n, seed, shards):
    perm = CyclicPermutation(n, seed=seed)
    full = np.concatenate(list(perm.batches(64)))
    position = {int(v): i for i, v in enumerate(full)}
    for i in range(shards):
        batches = list(perm.shard(i, shards).batches(64))
        if not batches:
            continue
        walk = [position[int(v)] for v in np.concatenate(batches)]
        assert walk == sorted(walk)
