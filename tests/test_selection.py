"""phi-threshold selection edge cases (no dataset fixture)."""

import numpy as np
import pytest

from repro.bgp.table import Partition, Prefix
from repro.core.tass import Selection, TassStrategy, select_by_density


def _partition():
    return Partition.from_prefixes(
        [
            Prefix.from_cidr("10.0.0.0/24"),
            Prefix.from_cidr("10.1.0.0/24"),
            Prefix.from_cidr("10.2.0.0/16"),
        ]
    )


def test_phi_zero_and_out_of_range_rejected():
    partition = _partition()
    counts = np.array([5, 5, 5])
    for phi in (0.0, -0.1, 1.0001):
        with pytest.raises(ValueError, match="phi"):
            select_by_density(partition, counts, phi)


def test_phi_one_covers_every_occupied_prefix():
    partition = _partition()
    counts = np.array([5, 0, 3])
    selection = select_by_density(partition, counts, 1.0)
    assert selection.host_coverage == 1.0
    assert len(selection) == 2  # empty prefixes never selected
    assert selection.covered_hosts == 8
    assert selection.total_hosts == 8


def test_tiny_phi_selects_single_densest_prefix():
    partition = _partition()
    counts = np.array([50, 10, 200])  # densities: 0.195, 0.039, 0.003
    selection = select_by_density(partition, counts, 1e-9)
    assert len(selection) == 1
    assert selection.indices.tolist() == [0]


def test_density_ties_resolve_stably():
    # Equal densities: stable argsort keeps partition order.
    partition = _partition()
    counts = np.array([10, 10, 2560])  # /24s tie; /16 same density too
    a = select_by_density(partition, counts, 0.003)
    b = select_by_density(partition, counts, 0.003)
    assert a.indices.tolist() == b.indices.tolist()
    assert a.indices.tolist() == [0]  # first of the tied prefixes wins


def test_zero_total_hosts_yields_empty_selection():
    partition = _partition()
    selection = select_by_density(partition, np.zeros(3, np.int64), 0.5)
    assert len(selection) == 0
    assert selection.host_coverage == 0.0
    assert selection.space_coverage == 0.0
    assert selection.probe_count() == 0
    assert selection.count_in(np.array([1, 2, 3])) == 0


def test_selection_accessors():
    partition = _partition()
    counts = np.array([10, 0, 20])
    selection = select_by_density(partition, counts, 1.0)
    assert isinstance(selection, Selection)
    assert selection.selected_address_count() == 256 + (1 << 16)
    assert [str(p) for p in selection.prefixes] == [
        "10.0.0.0/24",
        "10.2.0.0/16",
    ]
    inside = np.array([partition.starts[0] + 1, partition.starts[2] + 5])
    assert selection.membership(inside).all()
    assert selection.count_in(inside) == 2


def test_strategy_rejects_non_table_input():
    with pytest.raises(TypeError, match="RoutingTable or Partition"):
        TassStrategy(object())


def test_strategy_plans_on_partition_directly():
    partition = _partition()
    strategy = TassStrategy(partition, phi=1.0)
    values = np.array([partition.starts[0], partition.starts[0] + 3])
    selection = strategy.plan(values)
    assert strategy.last_selection is selection
    assert selection.indices.tolist() == [0]
