"""Golden regression tests: paper outputs snapshotted on the tiny preset.

Each rendered figure/table is diffed against a committed snapshot under
``tests/golden/`` so refactors (new counting backends, sharded
execution, vectorization changes) cannot silently change the numbers
the reproduction reports.  To regenerate after an *intentional* change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden.py
"""

import os
from pathlib import Path

import pytest

from repro.analysis.figure1 import render_figure1, run_figure1
from repro.analysis.figure2 import render_figure2, run_figure2
from repro.analysis.figure3 import render_figure3, run_figure3
from repro.analysis.figure4 import render_figure4, run_figure4
from repro.analysis.figure5 import render_figure5, run_figure5
from repro.analysis.figure6 import render_figure6, run_figure6
from repro.analysis.table1 import render_table1, run_table1
from repro.census.loader import get_dataset

GOLDEN_DIR = Path(__file__).parent / "golden"

CASES = {
    "figure1": (run_figure1, render_figure1),
    "figure2": (run_figure2, render_figure2),
    "figure3": (run_figure3, render_figure3),
    "figure4": (run_figure4, render_figure4),
    "figure5": (run_figure5, render_figure5),
    "figure6": (run_figure6, render_figure6),
    "table1": (run_table1, render_table1),
}


@pytest.fixture(scope="module")
def tiny_dataset():
    return get_dataset(preset="tiny", seed=0)


@pytest.mark.parametrize("name", sorted(CASES))
def test_output_matches_golden(name, tiny_dataset):
    run, render = CASES[name]
    text = render(run(tiny_dataset)) + "\n"
    path = GOLDEN_DIR / f"{name}.txt"
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"missing golden snapshot {path}; regenerate with "
        "REPRO_UPDATE_GOLDEN=1"
    )
    assert text == path.read_text(), (
        f"{name} output changed; if intentional, regenerate goldens with "
        "REPRO_UPDATE_GOLDEN=1"
    )


@pytest.mark.parametrize("backend", ["bitmap", "trie"])
def test_table1_golden_holds_under_every_backend(tiny_dataset, backend):
    """Swapping the counting backend must not move any paper number."""
    path = GOLDEN_DIR / "table1.txt"
    if not path.exists():
        pytest.skip("goldens not generated yet")
    text = render_table1(run_table1(tiny_dataset, backend=backend)) + "\n"
    assert text == path.read_text()
