"""Storage chaos: campaigns under ``REPRO_FS_FAULT_PLAN`` recover
byte-identically.

The acceptance bar from the storage-hardening work: under every fault
kind — torn_write, bitrot, enospc, fsync_fail, rename_crash — a
campaign that is faulted (and, where the fault is fatal or silent,
killed and resumed) recovers via save-retry, tmp sweep, or
quarantine-and-rollback, and its final checkpoint generations, status
JSON, and wave accounting are byte-identical to an unfaulted serial
run.  Also covers the ``FsFaultPlan`` syntax and the incident →
trace-event pipeline.
"""

import json

import numpy as np
import pytest

from conftest import build_mini_dataset
from repro.env import fs_fault_plan
from repro.orchestrator import (
    CampaignRunner,
    CampaignSpec,
    CheckpointStore,
    ReseedPolicy,
)
from repro.orchestrator.storage_faults import (
    FsFaultPlan,
    FsFaultSpec,
    SimulatedCrash,
)

SPEC = CampaignSpec(
    preset="mini",
    waves=2,
    phi=0.9,
    shards=3,
    executor="serial",
    reseed=ReseedPolicy("interval", interval=2),
    batch_size=1 << 12,
)
# 2 waves x (3 shard + 1 wave-boundary) checkpoints + the final one.
N_SAVES = 9


class _Killed(RuntimeError):
    """Raised by the checkpoint hook to simulate a kill at a boundary."""


@pytest.fixture(autouse=True)
def _no_plan_leak(monkeypatch):
    monkeypatch.delenv("REPRO_FS_FAULT_PLAN", raising=False)
    monkeypatch.delenv("REPRO_CKPT_KEEP", raising=False)
    # Save-retry backoff is wall-clock-only; don't sleep in tests.
    monkeypatch.setattr(
        "repro.orchestrator.campaign._retry_sleep", lambda _: None
    )


def _run(directory, on_checkpoint=None):
    runner = CampaignRunner(
        SPEC, dataset=build_mini_dataset(), directory=directory
    )
    runner.store.write_spec(runner.spec.to_dict())
    return runner.run(on_checkpoint=on_checkpoint)


def _resume(directory):
    return CampaignRunner.resume(
        directory, dataset=build_mini_dataset()
    ).run()


def _final_bytes(directory):
    """The deterministic artifacts: journaled generations + status."""
    store = CheckpointStore(directory)
    journal, error = store.read_journal()
    assert error is None, error
    generations = {
        entry["gen"]: (directory / entry["file"]).read_bytes()
        for entry in journal["generations"]
    }
    return generations, (directory / "status.json").read_bytes()


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    directory = tmp_path_factory.mktemp("reference")
    status = _run(directory)
    assert status["finished"] is True
    return _final_bytes(directory)


def _assert_identical(directory, reference):
    generations, status = _final_bytes(directory)
    ref_generations, ref_status = reference
    assert status == ref_status
    assert generations == ref_generations


def _kill_at(n):
    seen = [0]

    def hook(_):
        seen[0] += 1
        if seen[0] == n:
            raise _Killed()

    return hook


# ---------------------------------------------------------------------------
# Recovery per fault kind
# ---------------------------------------------------------------------------


class TestRecovery:
    def test_enospc_and_fsync_fail_are_retried_in_process(
        self, tmp_path, monkeypatch, reference
    ):
        # Clean OSError saves: the campaign's bounded save-retry
        # absorbs them without losing a generation number.
        monkeypatch.setenv(
            "REPRO_FS_FAULT_PLAN", "enospc@save-1,fsync_fail@save-4"
        )
        status = _run(tmp_path)
        assert status["finished"] is True
        monkeypatch.delenv("REPRO_FS_FAULT_PLAN")
        _assert_identical(tmp_path, reference)

    def test_save_retry_exhaustion_propagates(
        self, tmp_path, monkeypatch, reference
    ):
        # Three consecutive failures of the same checkpoint exhaust
        # the retry budget; the previous generation stays the durable
        # resume point and a clean-disk resume completes identically.
        monkeypatch.setenv(
            "REPRO_FS_FAULT_PLAN",
            "enospc@save-1,enospc@save-2,enospc@save-3",
        )
        with pytest.raises(OSError):
            _run(tmp_path)
        monkeypatch.delenv("REPRO_FS_FAULT_PLAN")
        status = _resume(tmp_path)
        assert status["finished"] is True
        _assert_identical(tmp_path, reference)

    def test_torn_write_rolls_back_on_resume(
        self, tmp_path, monkeypatch, reference
    ):
        # The tear is silent at save time (the rename promotes a
        # truncated payload) — the journaled digest catches it at the
        # next load, which quarantines gen 3 and rolls back to gen 2.
        monkeypatch.setenv("REPRO_FS_FAULT_PLAN", "torn_write@save-2")
        with pytest.raises(_Killed):
            _run(tmp_path, on_checkpoint=_kill_at(3))
        monkeypatch.delenv("REPRO_FS_FAULT_PLAN")
        status = _resume(tmp_path)
        assert status["finished"] is True
        assert (tmp_path / "quarantine" / "checkpoint.3.npz").exists()
        _assert_identical(tmp_path, reference)

    def test_bitrot_rolls_back_on_resume(
        self, tmp_path, monkeypatch, reference
    ):
        monkeypatch.setenv("REPRO_FS_FAULT_PLAN", "bitrot@gen-3")
        with pytest.raises(_Killed):
            _run(tmp_path, on_checkpoint=_kill_at(3))
        monkeypatch.delenv("REPRO_FS_FAULT_PLAN")
        status = _resume(tmp_path)
        assert status["finished"] is True
        assert (tmp_path / "quarantine" / "checkpoint.3.npz").exists()
        _assert_identical(tmp_path, reference)

    def test_rename_crash_sweeps_and_resumes(
        self, tmp_path, monkeypatch, reference
    ):
        # The "process dies at the promote rename" fault: the tmp file
        # is deliberately left behind (real crash semantics) and the
        # journal never learned about the generation.
        monkeypatch.setenv("REPRO_FS_FAULT_PLAN", "rename_crash@save-2")
        with pytest.raises(SimulatedCrash):
            _run(tmp_path)
        assert list(tmp_path.glob("*.tmp.npz")), "crash leaves its tmp"
        monkeypatch.delenv("REPRO_FS_FAULT_PLAN")
        status = _resume(tmp_path)
        assert status["finished"] is True
        assert not list(tmp_path.glob("*.tmp*"))
        _assert_identical(tmp_path, reference)

    def test_rot_in_a_pruned_generation_never_surfaces(
        self, tmp_path, monkeypatch, reference
    ):
        # Corruption of an *older* generation while the campaign
        # marches on: the newest generations stay intact, the rotted
        # one ages out of the keep window, and the final directory is
        # still byte-identical.
        monkeypatch.setenv("REPRO_FS_FAULT_PLAN", "bitrot@gen-2")
        status = _run(tmp_path)
        assert status["finished"] is True
        monkeypatch.delenv("REPRO_FS_FAULT_PLAN")
        _assert_identical(tmp_path, reference)


# ---------------------------------------------------------------------------
# Incidents surface as trace events
# ---------------------------------------------------------------------------


def test_rollback_incidents_surface_as_obs_events(
    tmp_path, monkeypatch
):
    from repro.obs.schema import validate_file

    monkeypatch.setenv("REPRO_OBS", "events")
    monkeypatch.setenv("REPRO_FS_FAULT_PLAN", "bitrot@gen-3")
    with pytest.raises(_Killed):
        _run(tmp_path, on_checkpoint=_kill_at(3))
    monkeypatch.delenv("REPRO_FS_FAULT_PLAN")
    assert _resume(tmp_path)["finished"] is True
    path = tmp_path / "events.jsonl"
    assert validate_file(path) == []
    types = [
        json.loads(line)["type"]
        for line in path.read_text().splitlines()
        if line.strip()
    ]
    assert "storage.fault_fired" in types  # the faulted run
    assert "checkpoint.corrupt" in types  # detected at resume
    assert "checkpoint.rollback" in types


# ---------------------------------------------------------------------------
# FsFaultPlan syntax
# ---------------------------------------------------------------------------


class TestFsFaultPlan:
    def test_parse_roundtrip(self):
        text = "torn_write@save-2,bitrot@gen-3:offset=17,enospc@save-0"
        plan = FsFaultPlan.parse(text)
        assert len(plan) == 3
        assert plan.to_string() == text
        assert FsFaultPlan.parse(plan.to_string()) == plan

    def test_separators_and_whitespace(self):
        plan = FsFaultPlan.parse(" enospc@save-1 ; bitrot@gen-2 ,")
        assert [s.kind for s in plan.specs] == ["enospc", "bitrot"]

    def test_empty_plan_is_falsy(self):
        assert not FsFaultPlan.parse(None)
        assert not FsFaultPlan.parse("  ")
        assert FsFaultPlan.parse("enospc@save-0")

    def test_queries_first_match_wins(self):
        plan = FsFaultPlan.parse("enospc@save-1,fsync_fail@save-1")
        assert plan.save_fault(1).kind == "enospc"
        assert plan.save_fault(0) is None
        assert FsFaultPlan.parse("bitrot@gen-2").gen_fault(2).kind == (
            "bitrot"
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "melt@save-1",          # unknown kind
            "enospc",               # no site
            "enospc@shard-1",       # unknown site
            "enospc@save-x",        # non-integer position
            "enospc@save--1",       # negative position
            "bitrot@save-1",        # bitrot fires at gen sites
            "torn_write@gen-1",     # save kinds fire at save sites
            "bitrot@gen-0",         # generations are 1-based
            "enospc@save-1:offset=3",  # offset is bitrot-only
            "bitrot@gen-1:depth=3",    # unknown option
        ],
    )
    def test_bad_entries_rejected(self, bad):
        with pytest.raises(ValueError):
            FsFaultPlan.parse(bad)

    def test_spec_validation_direct(self):
        with pytest.raises(ValueError, match="offset"):
            FsFaultSpec(kind="bitrot", site="gen", index=1, offset=-1)

    def test_env_knob_parses_and_names_source(self, monkeypatch):
        monkeypatch.setenv("REPRO_FS_FAULT_PLAN", "enospc@save-2")
        assert fs_fault_plan().save_fault(2).kind == "enospc"
        monkeypatch.setenv("REPRO_FS_FAULT_PLAN", "bogus@save-2")
        with pytest.raises(ValueError, match="REPRO_FS_FAULT_PLAN"):
            fs_fault_plan()
        plan = FsFaultPlan.parse("bitrot@gen-1")
        assert fs_fault_plan(plan) is plan
        with pytest.raises(ValueError, match="argument"):
            fs_fault_plan("nope@save-1")


def test_store_numbering_deterministic_under_faulted_history(
    tmp_path, monkeypatch
):
    """A faulted+killed+resumed store ends with the same generation
    numbers and bytes as an unfaulted store (the smoke-test invariant,
    in miniature, without a campaign)."""
    clean = tmp_path / "clean"
    store = CheckpointStore(clean, keep=2)
    for i in range(4):
        store.save({"spec": {}, "i": i}, {"mask": np.arange(4) + i})
    faulted = tmp_path / "faulted"
    store = CheckpointStore(
        faulted,
        keep=2,
        fault_plan=FsFaultPlan.parse("enospc@save-1,bitrot@gen-3"),
    )
    for i in range(3):
        try:
            store.save({"spec": {}, "i": i}, {"mask": np.arange(4) + i})
        except OSError:
            store.save({"spec": {}, "i": i}, {"mask": np.arange(4) + i})
    # "Kill": reopen; load rolls back past the rotted gen 3.
    store = CheckpointStore(faulted, keep=2)
    manifest, _ = store.load()
    assert manifest["i"] == 1
    for i in range(2, 4):
        store.save({"spec": {}, "i": i}, {"mask": np.arange(4) + i})
    names = lambda d: sorted(
        p.name for p in d.glob("checkpoint.*.npz")
    )
    assert names(faulted) == names(clean)
    for name in names(clean):
        assert (faulted / name).read_bytes() == (
            clean / name
        ).read_bytes()
