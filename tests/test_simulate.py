"""simulate_campaign hitrate accounting (no dataset fixture)."""

import numpy as np
import pytest

from repro.bgp.table import Partition, Prefix
from repro.census.addrset import AddressSet
from repro.core.simulate import Campaign, simulate_campaign
from repro.core.tass import TassStrategy


class _Snapshot:
    def __init__(self, values):
        self.addresses = AddressSet(values)


class _Series:
    def __init__(self, snapshots):
        self._snapshots = list(snapshots)

    @property
    def seed_snapshot(self):
        return self._snapshots[0]

    def __iter__(self):
        return iter(self._snapshots)

    def __len__(self):
        return len(self._snapshots)


def _partition():
    return Partition.from_prefixes(
        [Prefix.from_cidr("10.0.0.0/24"), Prefix.from_cidr("10.1.0.0/24")]
    )


_BASE0 = Prefix.from_cidr("10.0.0.0/24").network
_BASE1 = Prefix.from_cidr("10.1.0.0/24").network


def test_hitrate_accounting_month_by_month():
    partition = _partition()
    # Seed: 4 hosts in prefix 0, 1 in prefix 1 -> phi=0.8 selects only 0.
    seed = _Snapshot([_BASE0 + i for i in range(4)] + [_BASE1])
    # Month 1: half the population left the selection.
    month1 = _Snapshot([_BASE0, _BASE0 + 1, _BASE1, _BASE1 + 1])
    # Month 2: everyone inside the selection again.
    month2 = _Snapshot([_BASE0 + 7, _BASE0 + 8])
    strategy = TassStrategy(partition, phi=0.8)
    campaign = simulate_campaign(strategy, _Series([seed, month1, month2]))
    assert campaign.hitrates() == [pytest.approx(0.8), 0.5, 1.0]
    assert campaign.final_hitrate() == 1.0
    assert campaign.decay_per_month() == pytest.approx((1.0 - 0.8) / 2)
    assert campaign.total_probes() == 3 * 256  # one /24, three months
    assert campaign.selection.probe_count() == 256


def test_empty_months_count_as_zero_hitrate():
    partition = _partition()
    seed = _Snapshot([_BASE0])
    campaign = simulate_campaign(
        TassStrategy(partition, phi=1.0), _Series([seed, _Snapshot([])])
    )
    assert campaign.hitrates() == [1.0, 0.0]


def test_backend_choice_does_not_change_accounting():
    partition = _partition()
    series = _Series(
        [
            _Snapshot([_BASE0 + i for i in range(10)] + [_BASE1 + 1]),
            _Snapshot([_BASE0 + 3, _BASE1 + 2]),
        ]
    )
    baseline = simulate_campaign(TassStrategy(partition, phi=0.9), series)
    for backend in ("searchsorted", "bitmap", "trie"):
        strategy = TassStrategy(partition, phi=0.9, backend=backend)
        campaign = simulate_campaign(strategy, series, backend=backend)
        assert campaign.hitrates() == baseline.hitrates()


def test_campaign_without_probe_costs():
    campaign = Campaign([0.5], selection=None)
    assert campaign.total_probes() == 0
    assert campaign.decay_per_month() == 0.0
