"""Validated environment knobs: clear errors instead of silent fallbacks."""

import pytest

from repro.env import (
    ckpt_keep,
    count_backend,
    dist_address_book,
    dist_secret,
    dist_workers,
    obs_mode,
    scan_executor,
    scan_shards,
)
from repro.scan.sharded import run_sharded


class TestScanShards:
    def test_defaults_to_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCAN_SHARDS", raising=False)
        assert scan_shards() == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCAN_SHARDS", "8")
        assert scan_shards(3) == 3
        assert scan_shards() == 8

    def test_env_string_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCAN_SHARDS", "4")
        assert scan_shards() == 4

    @pytest.mark.parametrize("bad", ["abc", "", "2.5", "0x4"])
    def test_non_integer_rejected_with_source(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_SCAN_SHARDS", bad)
        with pytest.raises(ValueError) as excinfo:
            scan_shards()
        message = str(excinfo.value)
        assert "positive integer" in message
        assert repr(bad) in message
        assert "REPRO_SCAN_SHARDS" in message

    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_non_positive_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_SCAN_SHARDS", bad)
        with pytest.raises(ValueError, match="shards must be >= 1"):
            scan_shards()

    def test_bad_explicit_names_argument(self):
        with pytest.raises(ValueError, match=r"\(from argument\)"):
            scan_shards("nope")

    @pytest.mark.parametrize("bad", [2.5, True])
    def test_non_integral_python_values_rejected(self, bad):
        # int() would silently truncate these; the knob must not.
        with pytest.raises(ValueError, match="positive integer"):
            scan_shards(bad)


class TestCkptKeep:
    def test_defaults_to_two(self, monkeypatch):
        monkeypatch.delenv("REPRO_CKPT_KEEP", raising=False)
        assert ckpt_keep() == 2

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CKPT_KEEP", "5")
        assert ckpt_keep(3) == 3
        assert ckpt_keep() == 5

    @pytest.mark.parametrize("bad", ["abc", "", "2.5"])
    def test_non_integer_rejected_with_source(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_CKPT_KEEP", bad)
        with pytest.raises(ValueError) as excinfo:
            ckpt_keep()
        message = str(excinfo.value)
        assert "positive integer" in message
        assert "REPRO_CKPT_KEEP" in message

    @pytest.mark.parametrize("bad", ["0", "-1"])
    def test_non_positive_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_CKPT_KEEP", bad)
        with pytest.raises(ValueError, match="keep window must be >= 1"):
            ckpt_keep()

    def test_bad_explicit_names_argument(self):
        with pytest.raises(ValueError, match=r"\(from argument\)"):
            ckpt_keep("nope")


class TestScanExecutor:
    def test_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCAN_EXECUTOR", raising=False)
        assert scan_executor() == "serial"

    def test_valid_values(self, monkeypatch):
        assert scan_executor("process") == "process"
        monkeypatch.setenv("REPRO_SCAN_EXECUTOR", "process")
        assert scan_executor() == "process"

    def test_distributed_accepted(self, monkeypatch):
        assert scan_executor("distributed") == "distributed"
        monkeypatch.setenv("REPRO_SCAN_EXECUTOR", "distributed")
        assert scan_executor() == "distributed"

    def test_bad_env_value_lists_choices(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCAN_EXECUTOR", "threads")
        with pytest.raises(ValueError) as excinfo:
            scan_executor()
        message = str(excinfo.value)
        assert "unknown executor 'threads'" in message
        assert "'serial'" in message and "'process'" in message
        assert "'distributed'" in message
        assert "REPRO_SCAN_EXECUTOR" in message

    def test_executors_attribute_is_registry_backed(self):
        import repro.env as env
        from repro.scan.executors import available_executors

        assert env.EXECUTORS == tuple(available_executors())
        with pytest.raises(AttributeError):
            env.NOT_A_KNOB


class TestDistWorkers:
    def test_defaults_to_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_DIST_WORKERS", raising=False)
        assert dist_workers() is None

    def test_explicit_and_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIST_WORKERS", "8")
        assert dist_workers(3) == 3
        assert dist_workers() == 8

    @pytest.mark.parametrize("bad", ["abc", "0", "-2", "1.5"])
    def test_bad_values_rejected_with_source(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_DIST_WORKERS", bad)
        with pytest.raises(ValueError, match="REPRO_DIST_WORKERS"):
            dist_workers()


class TestDistAddressBook:
    def test_defaults_to_empty(self, monkeypatch):
        monkeypatch.delenv("REPRO_DIST_ADDRESS_BOOK", raising=False)
        assert dist_address_book() == ()

    def test_env_string_parsed(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_DIST_ADDRESS_BOOK", "10.0.0.1:9001, node-b:9002"
        )
        assert dist_address_book() == (
            ("10.0.0.1", 9001),
            ("node-b", 9002),
        )

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIST_ADDRESS_BOOK", "env-host:1")
        assert dist_address_book("host:7") == (("host", 7),)
        assert dist_address_book([("a", 1), "b:2"]) == (
            ("a", 1),
            ("b", 2),
        )

    @pytest.mark.parametrize(
        "bad",
        ["no-port", ":9000", "host:", "host:abc", "host:0", "host:70000"],
    )
    def test_bad_entries_rejected_with_source(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_DIST_ADDRESS_BOOK", bad)
        with pytest.raises(ValueError, match="REPRO_DIST_ADDRESS_BOOK"):
            dist_address_book()

    def test_duplicates_rejected(self):
        # A duplicate would dial the same one-session-at-a-time listen
        # worker twice and deadlock its handshake.
        with pytest.raises(ValueError, match="duplicate"):
            dist_address_book("host:9001,host:9001")


class TestDistSecret:
    def test_defaults_to_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_DIST_SECRET", raising=False)
        assert dist_secret() is None

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIST_SECRET", "env-secret")
        assert dist_secret("arg-secret") == "arg-secret"
        assert dist_secret() == "env-secret"

    @pytest.mark.parametrize("bad", ["", "   "])
    def test_blank_secret_rejected(self, monkeypatch, bad):
        # A set-but-blank secret would silently authenticate everyone.
        monkeypatch.setenv("REPRO_DIST_SECRET", bad)
        with pytest.raises(ValueError, match="non-empty"):
            dist_secret()


class TestCountBackend:
    def test_defaults_to_searchsorted(self, monkeypatch):
        monkeypatch.delenv("REPRO_COUNT_BACKEND", raising=False)
        assert count_backend() == "searchsorted"

    def test_registered_names_accepted(self):
        for name in ("searchsorted", "bitmap", "trie"):
            assert count_backend(name) == name

    def test_bad_value_lists_available(self, monkeypatch):
        monkeypatch.setenv("REPRO_COUNT_BACKEND", "gpu")
        with pytest.raises(ValueError) as excinfo:
            count_backend()
        message = str(excinfo.value)
        assert "unknown counting backend 'gpu'" in message
        assert "searchsorted" in message


class TestObsMode:
    def test_defaults_to_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert obs_mode() == "off"

    def test_valid_values(self, monkeypatch):
        for mode in ("off", "events", "full"):
            monkeypatch.setenv("REPRO_OBS", mode)
            assert obs_mode() == mode

    def test_case_and_whitespace_normalized(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "  FULL ")
        assert obs_mode() == "full"

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "full")
        assert obs_mode("events") == "events"

    def test_bad_env_value_lists_choices(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "verbose")
        with pytest.raises(ValueError) as excinfo:
            obs_mode()
        message = str(excinfo.value)
        assert "unknown observability mode 'verbose'" in message
        assert "REPRO_OBS" in message
        assert "'events'" in message

    def test_bad_explicit_names_argument(self):
        with pytest.raises(ValueError, match=r"\(from argument\)"):
            obs_mode("nope")


def test_run_sharded_surfaces_bad_env_shards(monkeypatch):
    import numpy as np

    monkeypatch.setenv("REPRO_SCAN_SHARDS", "lots")
    with pytest.raises(ValueError, match="positive integer"):
        run_sharded(1000, np.array([1, 2, 3], dtype=np.int64))
