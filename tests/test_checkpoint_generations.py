"""Generation-journaled checkpoint store: digests, rollback, and fsck.

Unit coverage for the storage-hardened :class:`CheckpointStore`: the
``checkpoint.<gen>.npz`` layout and its ``checkpoints.json`` journal,
keep-N pruning, integrity verification (whole-payload SHA-256 +
per-array digests), quarantine-and-rollback on corruption, journal
rebuild, the failed-write cleanup guarantees, and the
``verify [--repair]`` CLI.  Campaign-level recovery (byte-identity
under fault plans) lives in ``test_storage_chaos.py``.
"""

import hashlib
import json
import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.orchestrator.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointCorruption,
    CheckpointStore,
    _sanitize_floats,
)
from repro.orchestrator.cli import main
from repro.orchestrator.storage_faults import FsFaultPlan, flip_byte


def _save_n(store, n, start=0):
    """n deterministic saves; the manifest carries its ordinal."""
    for i in range(start, start + n):
        store.save(
            {"spec": {}, "ordinal": i}, {"mask": np.arange(6) + i}
        )


# ---------------------------------------------------------------------------
# Generation layout and journal
# ---------------------------------------------------------------------------


class TestGenerations:
    def test_every_save_promotes_a_new_generation(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=4)
        _save_n(store, 3)
        assert [g for g, _ in store.generation_files()] == [1, 2, 3]
        journal, error = store.read_journal()
        assert error is None
        assert journal["latest"] == 3
        assert [e["gen"] for e in journal["generations"]] == [1, 2, 3]

    def test_journal_digests_match_the_files(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        _save_n(store, 2)
        journal, _ = store.read_journal()
        for entry in journal["generations"]:
            data = (tmp_path / entry["file"]).read_bytes()
            assert entry["bytes"] == len(data)
            assert entry["sha256"] == hashlib.sha256(data).hexdigest()

    def test_keep_window_prunes_old_generations(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        _save_n(store, 5)
        assert [g for g, _ in store.generation_files()] == [4, 5]
        journal, _ = store.read_journal()
        assert [e["gen"] for e in journal["generations"]] == [4, 5]

    def test_keep_env_knob_respected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CKPT_KEEP", "3")
        store = CheckpointStore(tmp_path)
        assert store.keep == 3
        _save_n(store, 4)
        assert [g for g, _ in store.generation_files()] == [2, 3, 4]

    def test_keep_one_restores_single_checkpoint_behaviour(
        self, tmp_path
    ):
        store = CheckpointStore(tmp_path, keep=1)
        _save_n(store, 3)
        assert [g for g, _ in store.generation_files()] == [3]

    def test_checkpoint_path_tracks_the_latest_generation(
        self, tmp_path
    ):
        store = CheckpointStore(tmp_path, keep=2)
        assert store.checkpoint_path is None
        _save_n(store, 2)
        assert store.checkpoint_path == store.generation_path(2)

    def test_manifest_carries_per_array_digests(self, tmp_path):
        store = CheckpointStore(tmp_path)
        _save_n(store, 1)
        manifest, arrays = store.load()
        assert manifest["version"] == CHECKPOINT_VERSION
        digest = manifest["array_sha256"]["mask"]
        assert isinstance(digest, str) and len(digest) == 64
        assert set(manifest["array_sha256"]) == set(arrays)

    def test_failed_save_consumes_no_generation_number(self, tmp_path):
        store = CheckpointStore(
            tmp_path, keep=4, fault_plan=FsFaultPlan.parse("enospc@save-1")
        )
        _save_n(store, 1)
        with pytest.raises(OSError):
            _save_n(store, 1, start=1)
        _save_n(store, 1, start=1)
        assert [g for g, _ in store.generation_files()] == [1, 2]
        manifest, _ = store.load()
        assert manifest["ordinal"] == 1

    def test_numbering_continues_across_reopen(self, tmp_path):
        _save_n(CheckpointStore(tmp_path, keep=2), 2)
        reopened = CheckpointStore(tmp_path, keep=2)
        _save_n(reopened, 1, start=2)
        journal, _ = reopened.read_journal()
        assert journal["latest"] == 3


# ---------------------------------------------------------------------------
# Verification, quarantine, rollback
# ---------------------------------------------------------------------------


class TestRollback:
    def test_bitrot_quarantines_and_rolls_back(self, tmp_path):
        _save_n(CheckpointStore(tmp_path, keep=3), 3)
        flip_byte(tmp_path / "checkpoint.3.npz")
        store = CheckpointStore(tmp_path, keep=3)
        manifest, arrays = store.load()
        assert manifest["ordinal"] == 1  # gen 2 holds the 2nd save
        assert np.array_equal(arrays["mask"], np.arange(6) + 1)
        assert (store.quarantine_dir / "checkpoint.3.npz").exists()
        assert not (tmp_path / "checkpoint.3.npz").exists()
        types = [i["type"] for i in store.incidents]
        assert types == ["checkpoint.corrupt", "checkpoint.rollback"]
        rollback = store.incidents[-1]
        assert rollback["from_gen"] == 3 and rollback["to_gen"] == 2
        journal, _ = store.read_journal()
        assert journal["latest"] == 2

    def test_next_save_after_rollback_reuses_the_generation(
        self, tmp_path
    ):
        _save_n(CheckpointStore(tmp_path, keep=3), 3)
        flip_byte(tmp_path / "checkpoint.3.npz")
        store = CheckpointStore(tmp_path, keep=3)
        store.load()
        _save_n(store, 1, start=2)  # replays the lost 3rd save
        journal, _ = store.read_journal()
        assert journal["latest"] == 3
        assert store.verify_generation(
            store.generation_path(3), journal["generations"][-1]
        ) is None

    def test_truncation_caught_by_journaled_size(self, tmp_path):
        _save_n(CheckpointStore(tmp_path, keep=2), 2)
        path = tmp_path / "checkpoint.2.npz"
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        store = CheckpointStore(tmp_path, keep=2)
        manifest, _ = store.load()
        assert manifest["ordinal"] == 0
        reason = store.incidents[0]["reason"]
        assert "size" in reason or "sha256" in reason

    def test_all_generations_corrupt_raises(self, tmp_path):
        _save_n(CheckpointStore(tmp_path, keep=2), 2)
        flip_byte(tmp_path / "checkpoint.1.npz")
        flip_byte(tmp_path / "checkpoint.2.npz")
        store = CheckpointStore(tmp_path, keep=2)
        with pytest.raises(CheckpointCorruption, match="verify"):
            store.load()
        # Both files held for inspection, not deleted.
        held = sorted(p.name for p in store.quarantine_dir.iterdir())
        assert held == ["checkpoint.1.npz", "checkpoint.2.npz"]

    def test_lost_journal_rebuilt_from_disk(self, tmp_path):
        _save_n(CheckpointStore(tmp_path, keep=2), 3)
        (tmp_path / "checkpoints.json").unlink()
        store = CheckpointStore(tmp_path, keep=2)
        manifest, _ = store.load()
        assert manifest["ordinal"] == 2
        journal, error = store.read_journal()
        assert error is None
        assert journal["latest"] == 3

    def test_corrupt_journal_falls_back_to_scanning(self, tmp_path):
        _save_n(CheckpointStore(tmp_path, keep=2), 2)
        (tmp_path / "checkpoints.json").write_text("{not json")
        store = CheckpointStore(tmp_path, keep=2)
        manifest, _ = store.load()
        assert manifest["ordinal"] == 1
        corrupt = store.incidents[0]
        assert corrupt["type"] == "checkpoint.corrupt"
        assert corrupt["gen"] is None
        assert "checkpoints.json" in corrupt["reason"]

    def test_version_mismatch_is_an_error_not_corruption(
        self, tmp_path
    ):
        # A schema-version skew is a code/state mismatch: it must raise
        # plainly, never quarantine the (intact) file.
        path = tmp_path / "checkpoint.1.npz"
        np.savez_compressed(
            path, manifest=json.dumps({"version": 999})
        )
        store = CheckpointStore(tmp_path)
        with pytest.raises(ValueError, match="version"):
            store.load()
        assert path.exists()
        assert not store.quarantine_dir.exists()


# ---------------------------------------------------------------------------
# Satellites: clear() drops status, failed writes clean up, spec errors
# ---------------------------------------------------------------------------


class TestClear:
    def test_clear_drops_status_journal_and_quarantine(self, tmp_path):
        # Regression: clear() used to leave status.json behind, so
        # `run --fresh` served a stale document from the old campaign.
        _save_n(CheckpointStore(tmp_path, keep=2), 3)
        flip_byte(tmp_path / "checkpoint.3.npz")
        store = CheckpointStore(tmp_path, keep=2)
        store.load()  # populates quarantine/
        store.write_status({"finished": True})
        store.write_progress({"finished": True})
        store.clear()
        assert not store.has_checkpoint()
        assert not store.status_path.exists()
        assert not store.journal_path.exists()
        assert not store.progress_path.exists()
        assert not store.quarantine_dir.exists()


class TestFailedWriteCleanup:
    def test_failed_save_leaves_no_tmp(self, tmp_path):
        store = CheckpointStore(
            tmp_path, fault_plan=FsFaultPlan.parse("enospc@save-0")
        )
        with pytest.raises(OSError):
            _save_n(store, 1)
        assert list(tmp_path.glob("*.tmp*")) == []

    def test_failed_json_write_leaves_no_tmp(self, tmp_path, monkeypatch):
        # An fsync EIO (dying disk) mid-_write_json must unlink its own
        # tmp instead of waiting for the next store open to sweep it.
        store = CheckpointStore(tmp_path)

        def dying_fsync(fd):
            raise OSError(5, "I/O error")

        monkeypatch.setattr(
            "repro.orchestrator.checkpoint.os.fsync", dying_fsync
        )
        with pytest.raises(OSError):
            store.write_status({"finished": False})
        assert list(tmp_path.glob("*.tmp*")) == []


class TestReadSpec:
    def test_corrupt_spec_is_a_clear_error(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.spec_path.write_text('{"name": "camp"')  # truncated
        with pytest.raises(ValueError) as excinfo:
            store.read_spec()
        message = str(excinfo.value)
        assert "campaign.json" in message
        assert "plan" in message and "verify" in message


# ---------------------------------------------------------------------------
# The verify CLI (fsck)
# ---------------------------------------------------------------------------


def _planned_store(tmp_path) -> CheckpointStore:
    from repro.orchestrator.campaign import CampaignSpec

    store = CheckpointStore(tmp_path, keep=2)
    store.write_spec(CampaignSpec(executor="serial").resolved().to_dict())
    return store


class TestVerifyCLI:
    def test_healthy_store_exits_zero(self, tmp_path, capsys):
        store = _planned_store(tmp_path)
        _save_n(store, 2)
        store.write_status({"finished": True})
        assert main(["verify", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr()
        assert "FAIL" not in out.out
        assert "all artifacts verify" in out.err

    def test_corruption_reports_per_artifact_and_exits_nonzero(
        self, tmp_path, capsys
    ):
        store = _planned_store(tmp_path)
        _save_n(store, 2)
        flip_byte(tmp_path / "checkpoint.2.npz")
        (tmp_path / "status.json").write_text("{")
        assert main(["verify", "--dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "FAIL  checkpoint.2.npz" in out
        assert "FAIL  status.json" in out
        assert "ok    checkpoint.1.npz" in out
        # Report-only: nothing was moved or deleted.
        assert (tmp_path / "checkpoint.2.npz").exists()
        assert (tmp_path / "status.json").exists()

    def test_repair_quarantines_and_subsequent_verify_is_clean(
        self, tmp_path, capsys
    ):
        store = _planned_store(tmp_path)
        _save_n(store, 2)
        flip_byte(tmp_path / "checkpoint.2.npz")
        assert main(["verify", "--dir", str(tmp_path), "--repair"]) == 1
        assert (
            tmp_path / "quarantine" / "checkpoint.2.npz"
        ).exists()
        journal, _ = store.read_journal()
        assert journal["latest"] == 1
        capsys.readouterr()
        assert main(["verify", "--dir", str(tmp_path)]) == 0

    def test_strays_reported_and_removed_on_repair(
        self, tmp_path, capsys
    ):
        store = _planned_store(tmp_path)
        _save_n(store, 1)
        (tmp_path / "checkpoint.9.tmp.npz").write_bytes(b"torn")
        assert main(["verify", "--dir", str(tmp_path)]) == 1
        assert "checkpoint.9.tmp.npz" in capsys.readouterr().out
        assert (tmp_path / "checkpoint.9.tmp.npz").exists()
        assert main(["verify", "--dir", str(tmp_path), "--repair"]) == 1
        assert not (tmp_path / "checkpoint.9.tmp.npz").exists()
        capsys.readouterr()
        assert main(["verify", "--dir", str(tmp_path)]) == 0

    def test_lost_journal_rebuilt_on_repair(self, tmp_path, capsys):
        store = _planned_store(tmp_path)
        _save_n(store, 2)
        store.journal_path.unlink()
        assert main(["verify", "--dir", str(tmp_path)]) == 1
        assert store.read_journal() == (None, None)
        assert main(["verify", "--dir", str(tmp_path), "--repair"]) == 1
        journal, error = store.read_journal()
        assert error is None and journal["latest"] == 2
        capsys.readouterr()
        assert main(["verify", "--dir", str(tmp_path)]) == 0

    def test_json_findings_are_machine_readable(self, tmp_path, capsys):
        store = _planned_store(tmp_path)
        _save_n(store, 1)
        assert main(["verify", "--dir", str(tmp_path), "--json"]) == 0
        findings = json.loads(capsys.readouterr().out)
        assert isinstance(findings, list)
        assert {"artifact", "ok", "detail", "repaired"} == set(
            findings[0]
        )


# ---------------------------------------------------------------------------
# _sanitize_floats: Hypothesis property
# ---------------------------------------------------------------------------


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    st.text(max_size=8),
)
_nested = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=4), children, max_size=4),
    ),
    max_leaves=25,
)


def _reference_transform(value):
    """Independent spec of the sanitizer, for equality checking."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _reference_transform(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_reference_transform(v) for v in value]
    return value


def _contains_tuple(value) -> bool:
    if isinstance(value, tuple):
        return True
    if isinstance(value, dict):
        return any(_contains_tuple(v) for v in value.values())
    if isinstance(value, list):
        return any(_contains_tuple(v) for v in value)
    return False


class TestSanitizeFloats:
    @given(_nested)
    def test_output_is_strict_json_and_preserves_structure(self, value):
        out = _sanitize_floats(value)
        # Strict JSON: allow_nan=False must not raise, and the text
        # must round-trip without the Infinity/NaN constant tokens.
        text = json.dumps(out, allow_nan=False)
        assert json.loads(text) == out
        # Finite values and structure preserved; non-finite -> None;
        # tuples -> lists is the one intended shape change (pinned
        # below), which the reference transform also applies.
        assert out == _reference_transform(value)
        assert not _contains_tuple(out)

    def test_tuples_become_lists_pinned(self):
        assert _sanitize_floats((1, 2)) == [1, 2]
        assert _sanitize_floats({"t": (1, (2.5, None))}) == {
            "t": [1, [2.5, None]]
        }
