"""Distributed executor: registry, wire codec, parity, failure requeue.

The load-bearing guarantees: merged results are **executor invariant**
(``serial``, ``process``, and ``distributed`` produce byte-identical
``ShardedScanResult.result``\\ s, per-shard results included), worker
failures re-queue the lost shard without perturbing any result, and a
campaign killed and resumed under the distributed executor stays
byte-identical to an uninterrupted run.
"""

import dataclasses
import json

import numpy as np
import pytest

from conftest import build_mini_dataset
from repro.orchestrator import CampaignRunner, CampaignSpec, ReseedPolicy
from repro.scan.blocklist import Blocklist
from repro.scan.distributed import (
    ENV_FAIL_SHARDS,
    Coordinator,
    decode_array,
    encode_array,
)
from repro.scan.engine import EngineConfig
from repro.scan.executors import (
    available_executors,
    executor_supports_wrap,
    get_executor,
    register_executor,
)
from repro.scan.sharded import run_sharded, shard_targets

_CONFIG = EngineConfig(batch_size=1 << 11)


def _world():
    rng = np.random.default_rng(11)
    responsive = np.unique(rng.integers(0, 300000, 6000))
    return 300000, responsive


def _result_bytes(result) -> bytes:
    return repr(dataclasses.astuple(result)).encode()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestExecutorRegistry:
    def test_builtins_registered(self):
        names = available_executors()
        assert {"serial", "process", "distributed"} <= set(names)

    def test_unknown_executor_lists_available(self):
        with pytest.raises(ValueError, match="unknown executor 'gpu'"):
            get_executor("gpu")

    def test_wrap_support_metadata(self):
        assert executor_supports_wrap("serial")
        assert not executor_supports_wrap("process")
        assert not executor_supports_wrap("distributed")

    def test_env_registry_view_is_live(self):
        import repro.env as env

        assert set(env.EXECUTORS) == set(available_executors())

    def test_custom_executor_threads_through_run_sharded(self):
        from repro.scan.executors import _REGISTRY, serial_executor

        calls = []

        @register_executor("counting-serial", supports_wrap=True)
        def counting(targets, worker_args, wrap_targets=None):
            calls.append(len(targets))
            yield from serial_executor(
                targets, worker_args, wrap_targets=wrap_targets
            )

        try:
            spec, responsive = _world()
            run = run_sharded(
                spec, responsive, shards=3, executor="counting-serial",
                config=_CONFIG,
            )
            baseline = run_sharded(
                spec, responsive, shards=3, executor="serial",
                config=_CONFIG,
            )
            assert calls == [3]
            assert run.executor == "counting-serial"
            assert _result_bytes(run.result) == _result_bytes(
                baseline.result
            )
        finally:
            del _REGISTRY["counting-serial"]


# ---------------------------------------------------------------------------
# Wire codec
# ---------------------------------------------------------------------------


def test_array_codec_roundtrip():
    for arr in (
        np.arange(17, dtype=np.int64),
        np.array([], dtype=np.int64),
        np.array([2**40, -5], dtype=np.int64),
    ):
        carried = json.loads(json.dumps(encode_array(arr)))
        assert np.array_equal(decode_array(carried), arr)
        assert decode_array(carried).dtype == arr.dtype


# ---------------------------------------------------------------------------
# Executor parity
# ---------------------------------------------------------------------------


def test_distributed_matches_serial_and_process():
    spec, responsive = _world()
    runs = {
        name: run_sharded(
            spec, responsive, shards=4, executor=name, config=_CONFIG,
            protocol="http",
        )
        for name in ("serial", "process", "distributed")
    }
    reference = _result_bytes(runs["serial"].result)
    for name, run in runs.items():
        assert _result_bytes(run.result) == reference, name
        assert run.result.protocol == "http"
        for left, right in zip(
            runs["serial"].shard_results, run.shard_results
        ):
            assert _result_bytes(left) == _result_bytes(right), name


def test_distributed_carries_blocklist_accounting():
    spec, responsive = _world()
    blocklist = Blocklist(np.array([1000]), np.array([3000]))
    serial = run_sharded(
        spec, responsive, shards=3, executor="serial", config=_CONFIG,
        blocklist=blocklist,
    )
    dist = run_sharded(
        spec, responsive, shards=3, executor="distributed",
        config=_CONFIG, blocklist=blocklist,
    )
    assert serial.result.blocked == 2000
    assert _result_bytes(serial.result) == _result_bytes(dist.result)


def test_distributed_respects_worker_count_knob(monkeypatch):
    monkeypatch.setenv("REPRO_DIST_WORKERS", "2")
    spec, responsive = _world()
    serial = run_sharded(
        spec, responsive, shards=5, executor="serial", config=_CONFIG
    )
    dist = run_sharded(
        spec, responsive, shards=5, executor="distributed", config=_CONFIG
    )
    assert _result_bytes(serial.result) == _result_bytes(dist.result)


def test_distributed_rejects_wrap_targets():
    spec, responsive = _world()
    with pytest.raises(ValueError, match="serial executor"):
        run_sharded(
            spec, responsive, shards=2, executor="distributed",
            config=_CONFIG, wrap_targets=lambda t: t,
        )


def test_distributed_on_shard_fires_in_shard_order():
    spec, responsive = _world()
    seen = []
    run_sharded(
        spec, responsive, shards=4, executor="distributed",
        config=_CONFIG, on_shard=lambda i, r: seen.append(i),
    )
    assert seen == [0, 1, 2, 3]


def test_coordinator_rejects_mismatched_geometry():
    spec, responsive = _world()
    targets = shard_targets(spec, shards=2, seed=0)
    other = shard_targets(spec, shards=2, seed=9)
    with Coordinator((responsive, 1 << 11, None, None)) as coordinator:
        with pytest.raises(ValueError, match="one walk"):
            list(coordinator.run([targets[0], other[1]]))


# ---------------------------------------------------------------------------
# Failure injection and requeue
# ---------------------------------------------------------------------------


def test_worker_failure_requeues_without_perturbing_results():
    spec, responsive = _world()
    serial = run_sharded(
        spec, responsive, shards=4, executor="serial", config=_CONFIG
    )
    targets = shard_targets(spec, shards=4, seed=0)
    worker_args = (responsive, _CONFIG.batch_size, None, None)
    with Coordinator(
        worker_args, workers=2, fail_shards={2}
    ) as coordinator:
        results = list(coordinator.run(targets))
        assert coordinator.failures >= 1
    assert [_result_bytes(r) for r in results] == [
        _result_bytes(r) for r in serial.shard_results
    ]


def test_env_fail_injection_through_run_sharded(monkeypatch):
    spec, responsive = _world()
    serial = run_sharded(
        spec, responsive, shards=3, executor="serial", config=_CONFIG
    )
    monkeypatch.setenv(ENV_FAIL_SHARDS, "1")
    dist = run_sharded(
        spec, responsive, shards=3, executor="distributed", config=_CONFIG
    )
    assert _result_bytes(serial.result) == _result_bytes(dist.result)


def test_unrecoverable_failures_raise():
    spec, responsive = _world()
    targets = shard_targets(spec, shards=2, seed=0)
    worker_args = (responsive, _CONFIG.batch_size, None, None)
    with Coordinator(
        worker_args,
        workers=1,
        fail_shards={0, 1},
        fail_every_spawn=True,
    ) as coordinator:
        with pytest.raises(RuntimeError, match="worker failures"):
            list(coordinator.run(targets))


# ---------------------------------------------------------------------------
# Campaign integration: kill-and-resume under the distributed executor
# ---------------------------------------------------------------------------


class _Killed(RuntimeError):
    pass


DIST_SPEC = CampaignSpec(
    preset="mini",
    waves=2,
    phi=0.9,
    shards=3,
    executor="distributed",
    reseed=ReseedPolicy("interval", interval=0),
    batch_size=1 << 12,
)


def _status_bytes(status: dict) -> bytes:
    return json.dumps(status, sort_keys=True).encode()


def test_distributed_campaign_matches_serial_campaign():
    serial_spec = dataclasses.replace(DIST_SPEC, executor="serial")
    dist = CampaignRunner(DIST_SPEC, dataset=build_mini_dataset()).run()
    serial = CampaignRunner(
        serial_spec, dataset=build_mini_dataset()
    ).run()
    # The spec (and position executor echo) legitimately differ; every
    # computed number must not.
    assert dist["waves"] == serial["waves"]
    assert dist["totals"] == serial["totals"]


def test_distributed_kill_and_resume_is_byte_identical(tmp_path):
    reference = CampaignRunner(
        DIST_SPEC, dataset=build_mini_dataset()
    ).run()

    directory = tmp_path / "dist"
    runner = CampaignRunner(
        DIST_SPEC, dataset=build_mini_dataset(), directory=directory
    )
    runner.store.write_spec(runner.spec.to_dict())
    seen = [0]

    def kill(_):
        seen[0] += 1
        if seen[0] == 2:  # mid-wave, one shard checkpointed
            raise _Killed()

    with pytest.raises(_Killed):
        runner.run(on_checkpoint=kill)
    resumed = CampaignRunner.resume(
        directory, dataset=build_mini_dataset()
    )
    assert _status_bytes(resumed.run()) == _status_bytes(reference)


def test_distributed_kill_and_resume_with_worker_failure(
    tmp_path, monkeypatch
):
    """Node loss *and* a kill-and-resume together stay deterministic."""
    reference = CampaignRunner(
        DIST_SPEC, dataset=build_mini_dataset()
    ).run()

    monkeypatch.setenv(ENV_FAIL_SHARDS, "1")
    directory = tmp_path / "dist-faulty"
    runner = CampaignRunner(
        DIST_SPEC, dataset=build_mini_dataset(), directory=directory
    )
    runner.store.write_spec(runner.spec.to_dict())
    seen = [0]

    def kill(_):
        seen[0] += 1
        if seen[0] == 2:
            raise _Killed()

    with pytest.raises(_Killed):
        runner.run(on_checkpoint=kill)
    resumed = CampaignRunner.resume(
        directory, dataset=build_mini_dataset()
    )
    assert _status_bytes(resumed.run()) == _status_bytes(reference)
