"""Distributed executor: registry, wire codec, parity, failure requeue.

The load-bearing guarantees: merged results are **executor invariant**
(``serial``, ``process``, and ``distributed`` produce byte-identical
``ShardedScanResult.result``\\ s, per-shard results included), worker
failures re-queue the lost shard without perturbing any result, and a
campaign killed and resumed under the distributed executor stays
byte-identical to an uninterrupted run.
"""

import base64
import dataclasses
import json
import selectors
import socket
from collections import deque

import numpy as np
import pytest

from conftest import build_mini_dataset
from repro.orchestrator import CampaignRunner, CampaignSpec, ReseedPolicy
from repro.scan.blocklist import Blocklist
from repro.scan.distributed import (
    ENV_FAIL_SHARDS,
    ENV_SHARD_DELAY,
    MAX_FRAME,
    Coordinator,
    FrameStream,
    _HEADER,
    _Worker,
    decode_array,
    encode_array,
)
from repro.scan.engine import EngineConfig
from repro.scan.executors import (
    available_executors,
    executor_supports_wrap,
    get_executor,
    register_executor,
)
from repro.scan.sharded import run_sharded, shard_targets

_CONFIG = EngineConfig(batch_size=1 << 11)


def _world():
    rng = np.random.default_rng(11)
    responsive = np.unique(rng.integers(0, 300000, 6000))
    return 300000, responsive


def _result_bytes(result) -> bytes:
    return repr(dataclasses.astuple(result)).encode()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestExecutorRegistry:
    def test_builtins_registered(self):
        names = available_executors()
        assert {"serial", "process", "distributed"} <= set(names)

    def test_unknown_executor_lists_available(self):
        with pytest.raises(ValueError, match="unknown executor 'gpu'"):
            get_executor("gpu")

    def test_wrap_support_metadata(self):
        assert executor_supports_wrap("serial")
        assert not executor_supports_wrap("process")
        assert not executor_supports_wrap("distributed")

    def test_env_registry_view_is_live(self):
        import repro.env as env

        assert set(env.EXECUTORS) == set(available_executors())

    def test_custom_executor_threads_through_run_sharded(self):
        from repro.scan.executors import _REGISTRY, serial_executor

        calls = []

        @register_executor("counting-serial", supports_wrap=True)
        def counting(targets, worker_args, wrap_targets=None):
            calls.append(len(targets))
            yield from serial_executor(
                targets, worker_args, wrap_targets=wrap_targets
            )

        try:
            spec, responsive = _world()
            run = run_sharded(
                spec, responsive, shards=3, executor="counting-serial",
                config=_CONFIG,
            )
            baseline = run_sharded(
                spec, responsive, shards=3, executor="serial",
                config=_CONFIG,
            )
            assert calls == [3]
            assert run.executor == "counting-serial"
            assert _result_bytes(run.result) == _result_bytes(
                baseline.result
            )
        finally:
            del _REGISTRY["counting-serial"]


# ---------------------------------------------------------------------------
# Wire codec
# ---------------------------------------------------------------------------


def test_array_codec_roundtrip():
    for arr in (
        np.arange(17, dtype=np.int64),
        np.array([], dtype=np.int64),
        np.array([2**40, -5], dtype=np.int64),
    ):
        carried = json.loads(json.dumps(encode_array(arr)))
        assert np.array_equal(decode_array(carried), arr)
        assert decode_array(carried).dtype == arr.dtype


def test_encode_array_pins_little_endian_wire_dtype():
    # Regression: the codec used to ship the *sender's* native dtype
    # string, silently corrupting int64 payloads between hosts of
    # different endianness.  The wire dtype is pinned to <i8 whatever
    # the input's byte order.
    native = np.array([1, 2**40, -5, 0], dtype=np.int64)
    for arr in (native, native.astype(">i8"), native.astype("<i8")):
        carried = encode_array(arr)
        assert carried["dtype"] == "<i8"
        decoded = decode_array(json.loads(json.dumps(carried)))
        assert decoded.dtype.isnative
        assert np.array_equal(decoded, native)


def test_decode_array_byteswaps_big_endian_wire():
    # A frame from a big-endian sender (or a pre-fix peer): decode must
    # hand back native-order values, never a swapped view for the
    # searchsorted hot paths to chew on.
    values = np.array([7, -1, 2**50], dtype=np.int64)
    carried = {
        "dtype": ">i8",
        "data": base64.b64encode(
            values.astype(">i8").tobytes()
        ).decode("ascii"),
    }
    decoded = decode_array(carried)
    assert decoded.dtype.isnative
    assert np.array_equal(decoded, values)


# ---------------------------------------------------------------------------
# FrameStream edge cases
# ---------------------------------------------------------------------------


class _ChunkSocket:
    """A fake socket dribbling preloaded bytes a few at a time."""

    def __init__(self, data: bytes, chunk: int = 3):
        self.data = data
        self.chunk = chunk

    def recv(self, n: int) -> bytes:
        take = min(n, self.chunk, len(self.data))
        out, self.data = self.data[:take], self.data[take:]
        return out

    def close(self) -> None:
        pass


class TestFrameStream:
    def test_read_exact_reassembles_across_chunk_boundaries(self):
        message = {"type": "result", "index": 3, "blob": "x" * 257}
        payload = json.dumps(message).encode()
        stream = FrameStream(
            _ChunkSocket(_HEADER.pack(len(payload)) + payload)
        )
        assert stream.recv() == message

    def test_mid_frame_eof_reads_as_none(self):
        payload = json.dumps({"type": "result"}).encode()
        frame = _HEADER.pack(len(payload)) + payload
        stream = FrameStream(_ChunkSocket(frame[: len(frame) // 2]))
        assert stream.recv() is None

    def test_socket_timeout_mid_frame_surfaces_as_oserror(self):
        a, b = socket.socketpair()
        try:
            a.settimeout(0.05)
            stream = FrameStream(a)
            # Promise 100 bytes, deliver 7: the reader must time out
            # (socket.timeout is an OSError), not block forever.
            b.sendall(_HEADER.pack(100) + b"partial")
            with pytest.raises(OSError):
                stream.recv()
        finally:
            a.close()
            b.close()

    def test_oversized_prefix_raises_before_allocating(self):
        stream = FrameStream(
            _ChunkSocket(_HEADER.pack(MAX_FRAME + 1) + b"garbage", chunk=64)
        )
        with pytest.raises(ValueError, match="MAX_FRAME"):
            stream.recv()

    def test_desynced_stream_drops_worker_not_retries(self):
        # After an oversized prefix the stream is desynced: the valid
        # result frame queued behind it must never be read — the
        # coordinator drops the worker and re-queues its shard instead
        # of retrying the same stream.
        spec, responsive = _world()
        coordinator = Coordinator(
            (responsive, 1 << 11, None, None), secret=None
        )
        coordinator._selector = selectors.DefaultSelector()
        a, b = socket.socketpair()
        try:
            worker = _Worker(FrameStream(a), pid=-99)
            worker.assigned = 0
            coordinator._live.append(worker)
            coordinator._selector.register(a, selectors.EVENT_READ, worker)
            pending = deque([1])
            payload = json.dumps({"type": "result", "index": 0}).encode()
            b.sendall(
                _HEADER.pack(MAX_FRAME + 1)
                + _HEADER.pack(len(payload))
                + payload
            )
            landed = coordinator._on_readable(worker, pending, [], {})
            assert landed is False
            assert worker not in coordinator._live
            assert list(pending) == [0, 1]  # lost shard re-queued first
            assert coordinator.failures == 1
        finally:
            coordinator._selector.close()
            b.close()


# ---------------------------------------------------------------------------
# Stray connections and the failure budget
# ---------------------------------------------------------------------------


def _bare_coordinator(responsive):
    coordinator = Coordinator(
        (responsive, 1 << 11, None, None), secret=None
    )
    coordinator._selector = selectors.DefaultSelector()
    coordinator._init_message = {"type": "init"}
    return coordinator


def test_stray_connect_then_close_is_not_charged():
    # Regression: a clean pre-hello EOF (port scanner, health checker)
    # used to charge RespawnGovernor.record_failure() and the failure
    # budget — a noisy network could abort a healthy run.
    spec, responsive = _world()
    coordinator = _bare_coordinator(responsive)
    a, b = socket.socketpair()
    b.close()  # the stray peer vanishes before saying hello
    try:
        joined = coordinator._handshake(FrameStream(a), None, deque(), [])
        assert joined is False
        assert coordinator.failures == 0
        assert coordinator._governor.failures == 0
        assert coordinator.telemetry["stray_disconnects"] == 1
    finally:
        coordinator._selector.close()


def test_garbled_hello_still_charges_budget():
    spec, responsive = _world()
    coordinator = _bare_coordinator(responsive)
    a, b = socket.socketpair()
    try:
        b.sendall(_HEADER.pack(4) + b"ha!!")  # framed, but not JSON
        b.close()
        joined = coordinator._handshake(FrameStream(a), None, deque(), [])
        assert joined is False
        assert coordinator.failures == 1
        assert coordinator._governor.failures == 1
        assert coordinator.telemetry["stray_disconnects"] == 0
    finally:
        coordinator._selector.close()


def test_stray_peers_mid_run_do_not_perturb_results(monkeypatch):
    monkeypatch.setenv(ENV_SHARD_DELAY, "0.2")
    spec, responsive = _world()
    monkeypatch.delenv(ENV_SHARD_DELAY)
    serial = run_sharded(
        spec, responsive, shards=3, executor="serial", config=_CONFIG
    )
    monkeypatch.setenv(ENV_SHARD_DELAY, "0.2")
    targets = shard_targets(spec, shards=3, seed=0)
    worker_args = (responsive, _CONFIG.batch_size, None, None)
    with Coordinator(worker_args, workers=2) as coordinator:
        gen = coordinator.run(targets)
        results = [next(gen)]  # the listener is live past this point
        port = coordinator._listener.getsockname()[1]
        for _ in range(3):  # connect-and-hang-up, like a port scanner
            socket.create_connection(("127.0.0.1", port)).close()
        results.extend(gen)
    assert coordinator.failures == 0
    assert coordinator.telemetry["stray_disconnects"] >= 1
    assert [_result_bytes(r) for r in results] == [
        _result_bytes(r) for r in serial.shard_results
    ]


# ---------------------------------------------------------------------------
# Executor parity
# ---------------------------------------------------------------------------


def test_distributed_matches_serial_and_process():
    spec, responsive = _world()
    runs = {
        name: run_sharded(
            spec, responsive, shards=4, executor=name, config=_CONFIG,
            protocol="http",
        )
        for name in ("serial", "process", "distributed")
    }
    reference = _result_bytes(runs["serial"].result)
    for name, run in runs.items():
        assert _result_bytes(run.result) == reference, name
        assert run.result.protocol == "http"
        for left, right in zip(
            runs["serial"].shard_results, run.shard_results
        ):
            assert _result_bytes(left) == _result_bytes(right), name


def test_distributed_carries_blocklist_accounting():
    spec, responsive = _world()
    blocklist = Blocklist(np.array([1000]), np.array([3000]))
    serial = run_sharded(
        spec, responsive, shards=3, executor="serial", config=_CONFIG,
        blocklist=blocklist,
    )
    dist = run_sharded(
        spec, responsive, shards=3, executor="distributed",
        config=_CONFIG, blocklist=blocklist,
    )
    assert serial.result.blocked == 2000
    assert _result_bytes(serial.result) == _result_bytes(dist.result)


def test_distributed_respects_worker_count_knob(monkeypatch):
    monkeypatch.setenv("REPRO_DIST_WORKERS", "2")
    spec, responsive = _world()
    serial = run_sharded(
        spec, responsive, shards=5, executor="serial", config=_CONFIG
    )
    dist = run_sharded(
        spec, responsive, shards=5, executor="distributed", config=_CONFIG
    )
    assert _result_bytes(serial.result) == _result_bytes(dist.result)


def test_distributed_rejects_wrap_targets():
    spec, responsive = _world()
    with pytest.raises(ValueError, match="serial executor"):
        run_sharded(
            spec, responsive, shards=2, executor="distributed",
            config=_CONFIG, wrap_targets=lambda t: t,
        )


def test_distributed_on_shard_fires_in_shard_order():
    spec, responsive = _world()
    seen = []
    run_sharded(
        spec, responsive, shards=4, executor="distributed",
        config=_CONFIG, on_shard=lambda i, r: seen.append(i),
    )
    assert seen == [0, 1, 2, 3]


def test_coordinator_rejects_mismatched_geometry():
    spec, responsive = _world()
    targets = shard_targets(spec, shards=2, seed=0)
    other = shard_targets(spec, shards=2, seed=9)
    with Coordinator((responsive, 1 << 11, None, None)) as coordinator:
        with pytest.raises(ValueError, match="one walk"):
            list(coordinator.run([targets[0], other[1]]))


# ---------------------------------------------------------------------------
# Failure injection and requeue
# ---------------------------------------------------------------------------


def test_worker_failure_requeues_without_perturbing_results():
    spec, responsive = _world()
    serial = run_sharded(
        spec, responsive, shards=4, executor="serial", config=_CONFIG
    )
    targets = shard_targets(spec, shards=4, seed=0)
    worker_args = (responsive, _CONFIG.batch_size, None, None)
    with Coordinator(
        worker_args, workers=2, fail_shards={2}
    ) as coordinator:
        results = list(coordinator.run(targets))
        assert coordinator.failures >= 1
    assert [_result_bytes(r) for r in results] == [
        _result_bytes(r) for r in serial.shard_results
    ]


def test_env_fail_injection_through_run_sharded(monkeypatch):
    spec, responsive = _world()
    serial = run_sharded(
        spec, responsive, shards=3, executor="serial", config=_CONFIG
    )
    monkeypatch.setenv(ENV_FAIL_SHARDS, "1")
    dist = run_sharded(
        spec, responsive, shards=3, executor="distributed", config=_CONFIG
    )
    assert _result_bytes(serial.result) == _result_bytes(dist.result)


def test_unrecoverable_failures_raise():
    spec, responsive = _world()
    targets = shard_targets(spec, shards=2, seed=0)
    worker_args = (responsive, _CONFIG.batch_size, None, None)
    with Coordinator(
        worker_args,
        workers=1,
        fail_shards={0, 1},
        fail_every_spawn=True,
    ) as coordinator:
        with pytest.raises(RuntimeError, match="worker failures"):
            list(coordinator.run(targets))


# ---------------------------------------------------------------------------
# Campaign integration: kill-and-resume under the distributed executor
# ---------------------------------------------------------------------------


class _Killed(RuntimeError):
    pass


DIST_SPEC = CampaignSpec(
    preset="mini",
    waves=2,
    phi=0.9,
    shards=3,
    executor="distributed",
    reseed=ReseedPolicy("interval", interval=0),
    batch_size=1 << 12,
)


def _status_bytes(status: dict) -> bytes:
    return json.dumps(status, sort_keys=True).encode()


def test_distributed_campaign_matches_serial_campaign():
    serial_spec = dataclasses.replace(DIST_SPEC, executor="serial")
    dist = CampaignRunner(DIST_SPEC, dataset=build_mini_dataset()).run()
    serial = CampaignRunner(
        serial_spec, dataset=build_mini_dataset()
    ).run()
    # The spec (and position executor echo) legitimately differ; every
    # computed number must not.
    assert dist["waves"] == serial["waves"]
    assert dist["totals"] == serial["totals"]


def test_distributed_kill_and_resume_is_byte_identical(tmp_path):
    reference = CampaignRunner(
        DIST_SPEC, dataset=build_mini_dataset()
    ).run()

    directory = tmp_path / "dist"
    runner = CampaignRunner(
        DIST_SPEC, dataset=build_mini_dataset(), directory=directory
    )
    runner.store.write_spec(runner.spec.to_dict())
    seen = [0]

    def kill(_):
        seen[0] += 1
        if seen[0] == 2:  # mid-wave, one shard checkpointed
            raise _Killed()

    with pytest.raises(_Killed):
        runner.run(on_checkpoint=kill)
    resumed = CampaignRunner.resume(
        directory, dataset=build_mini_dataset()
    )
    assert _status_bytes(resumed.run()) == _status_bytes(reference)


def test_distributed_kill_and_resume_with_worker_failure(
    tmp_path, monkeypatch
):
    """Node loss *and* a kill-and-resume together stay deterministic."""
    reference = CampaignRunner(
        DIST_SPEC, dataset=build_mini_dataset()
    ).run()

    monkeypatch.setenv(ENV_FAIL_SHARDS, "1")
    directory = tmp_path / "dist-faulty"
    runner = CampaignRunner(
        DIST_SPEC, dataset=build_mini_dataset(), directory=directory
    )
    runner.store.write_spec(runner.spec.to_dict())
    seen = [0]

    def kill(_):
        seen[0] += 1
        if seen[0] == 2:
            raise _Killed()

    with pytest.raises(_Killed):
        runner.run(on_checkpoint=kill)
    resumed = CampaignRunner.resume(
        directory, dataset=build_mini_dataset()
    )
    assert _status_bytes(resumed.run()) == _status_bytes(reference)
