"""Kill-and-resume determinism: the orchestrator's load-bearing property.

A campaign interrupted at *any* checkpoint (every shard boundary and
every wave boundary) and resumed must produce byte-identical wave
accounting, selection state, and final status JSON to the same campaign
run uninterrupted.  Checked exhaustively at every checkpoint index for
one configuration, and property-style over random configurations and
kill points with Hypothesis.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import build_mini_dataset
from repro.orchestrator import (
    CampaignRunner,
    CampaignSpec,
    CheckpointStore,
    ReseedPolicy,
)


class _Killed(RuntimeError):
    """Raised by the checkpoint hook to simulate a kill -9 at a boundary."""


def _status_bytes(status: dict) -> bytes:
    return json.dumps(status, sort_keys=True).encode()


def _run_uninterrupted(spec, directory=None):
    runner = CampaignRunner(
        spec, dataset=build_mini_dataset(), directory=directory
    )
    if runner.store is not None:
        runner.store.write_spec(runner.spec.to_dict())
    checkpoints = [0]

    def count(_):
        checkpoints[0] += 1

    status = runner.run(on_checkpoint=count)
    return status, checkpoints[0], runner


def _run_killed_then_resumed(spec, directory, kill_at: int):
    """Kill at checkpoint ``kill_at`` (1-based), resume, run to the end.

    Returns ``(final_status, was_killed)`` — ``was_killed`` is False when
    the campaign finished before reaching the kill point.
    """
    runner = CampaignRunner(
        spec, dataset=build_mini_dataset(), directory=directory
    )
    runner.store.write_spec(runner.spec.to_dict())
    seen = [0]

    def kill(_):
        seen[0] += 1
        if seen[0] == kill_at:
            raise _Killed()

    try:
        status = runner.run(on_checkpoint=kill)
        return status, False
    except _Killed:
        pass
    resumed = CampaignRunner.resume(directory, dataset=build_mini_dataset())
    return resumed.run(), True


BASE_SPEC = CampaignSpec(
    preset="mini",
    waves=3,
    phi=0.9,
    shards=3,
    executor="serial",
    reseed=ReseedPolicy("interval", interval=2),
    explore_frac=0.01,
    batch_size=1 << 12,
)


def test_every_checkpoint_index_resumes_identically(tmp_path):
    full_status, n_checkpoints, _ = _run_uninterrupted(BASE_SPEC)
    expected = _status_bytes(full_status)
    # 3 waves x 3 shards + 3 wave-boundary checkpoints + the final one.
    assert n_checkpoints == 13
    for kill_at in range(1, n_checkpoints):
        directory = tmp_path / f"kill{kill_at}"
        status, was_killed = _run_killed_then_resumed(
            BASE_SPEC, directory, kill_at
        )
        assert was_killed, f"checkpoint {kill_at} was never reached"
        assert _status_bytes(status) == expected, (
            f"resume from checkpoint {kill_at} diverged"
        )


def test_resume_preserves_selection_mask_bytes(tmp_path):
    _, n_checkpoints, reference = _run_uninterrupted(
        BASE_SPEC, directory=tmp_path / "full"
    )
    reference_mask = reference.state.mask.tobytes()
    kill_at = n_checkpoints // 2
    directory = tmp_path / "killed"
    status, was_killed = _run_killed_then_resumed(
        BASE_SPEC, directory, kill_at
    )
    assert was_killed
    _, arrays = CheckpointStore(directory).load()
    assert np.asarray(arrays["mask"]).tobytes() == reference_mask
    assert status["finished"] is True


def test_resume_of_finished_campaign_is_idempotent(tmp_path):
    full_status, _, _ = _run_uninterrupted(
        BASE_SPEC, directory=tmp_path / "camp"
    )
    resumed = CampaignRunner.resume(
        tmp_path / "camp", dataset=build_mini_dataset()
    )
    assert _status_bytes(resumed.run()) == _status_bytes(full_status)


def test_status_file_matches_returned_status(tmp_path):
    full_status, _, runner = _run_uninterrupted(
        BASE_SPEC, directory=tmp_path
    )
    on_disk = json.loads(runner.store.status_path.read_text())
    assert on_disk == full_status


@settings(max_examples=12, deadline=None)
@given(
    shards=st.integers(min_value=1, max_value=4),
    waves=st.integers(min_value=1, max_value=4),
    interval=st.integers(min_value=0, max_value=2),
    explore=st.sampled_from([0.0, 0.02]),
    kill_at=st.integers(min_value=1, max_value=30),
)
def test_resume_property(tmp_path_factory, shards, waves, interval,
                         explore, kill_at):
    """Resuming from any reachable checkpoint reproduces the full run."""
    spec = CampaignSpec(
        preset="mini",
        waves=waves,
        phi=0.85,
        shards=shards,
        executor="serial",
        reseed=ReseedPolicy("interval", interval=interval),
        explore_frac=explore,
        batch_size=1 << 12,
    )
    full_status, n_checkpoints, _ = _run_uninterrupted(spec)
    directory = tmp_path_factory.mktemp("campaign")
    status, was_killed = _run_killed_then_resumed(spec, directory, kill_at)
    if kill_at > n_checkpoints:
        # The campaign finished before the kill point — still identical.
        assert not was_killed
    assert _status_bytes(status) == _status_bytes(full_status)
