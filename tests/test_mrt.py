"""MRT RIB round-trip and prefix→origin-AS extraction."""

from repro.bgp.mrt import read_rib, write_rib
from repro.bgp.pfx2as import rib_to_pfx2as
from repro.bgp.table import Prefix


def _entries():
    return [
        (Prefix.from_cidr("10.0.0.0/16"), 64500),
        (Prefix.from_cidr("10.2.0.0/15"), 64501),
        (Prefix.from_cidr("192.0.0.0/8"), 65000),
    ]


def test_rib_round_trip(tmp_path):
    path = tmp_path / "rib.mrt"
    entries = _entries()
    assert write_rib(path, entries) == len(entries)
    assert list(read_rib(path)) == entries


def test_rib_to_pfx2as(tmp_path):
    path = tmp_path / "rib.mrt"
    entries = _entries()
    write_rib(path, entries)
    mapping = rib_to_pfx2as(path)
    assert mapping == dict(entries)


def test_empty_rib(tmp_path):
    path = tmp_path / "empty.mrt"
    assert write_rib(path, []) == 0
    assert list(read_rib(path)) == []
    assert rib_to_pfx2as(path) == {}
