"""The 128-bit address-family surface, end to end.

Covers the :mod:`repro.core.addrspace` representation, the interval
math and counting backends on 128-bit partitions, the big-modulus
cyclic walk, hitlist/sampled v6 target streams, executor parity, and a
full v6 campaign with kill-and-resume byte-identity — plus the two
ride-along regressions (exact ``Partition.lengths``, Python-int scalar
iteration).
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.backends import available_backends, count_with_backend
from repro.bgp.table import Partition, Prefix, RoutingTable
from repro.census.addrset import AddressSet
from repro.census.loader import (
    CensusDataset,
    Snapshot,
    SnapshotSeries,
    Topology,
)
from repro.core.addrspace import V4, V6, family_of, get_space, space_of
from repro.core.tass import TassStrategy
from repro.env import addr_family
from repro.scan.permutation import CyclicPermutation
from repro.scan.sharded import IntervalTargets, run_sharded, shard_targets
from repro.scan.targets import PrefixTargets

v6_addresses = st.lists(
    st.integers(min_value=0, max_value=(1 << 128) - 1), max_size=120
)


# ---------------------------------------------------------------------------
# The representation
# ---------------------------------------------------------------------------


class TestAddressSpace:
    def test_encode_decode_round_trip_preserves_order(self):
        values = [0, 1, 2**64 - 1, 2**64, 2**96 + 5, 2**128 - 1]
        arr = V6.encode(values)
        assert arr.dtype == np.dtype("S16")
        assert V6.decode(arr) == values
        # Lexicographic byte order == numeric order.
        assert V6.decode(np.sort(V6.encode([9, 2**100, 3, 2**64]))) == sorted(
            [9, 2**100, 3, 2**64]
        )

    def test_scalar_round_trip_survives_trailing_nul_strip(self):
        # NumPy strips trailing NULs from S-kind scalars; decode_scalar
        # must re-pad.  1 << 120 encodes as b"\x01" + 15 NULs.
        arr = V6.encode([1 << 120])
        assert V6.decode_scalar(arr[0]) == 1 << 120

    def test_hi_lo_round_trip(self):
        values = [0, (5 << 64) | 7, 2**128 - 1]
        hi, lo = V6.to_hi_lo(V6.encode(values))
        assert np.array_equal(
            V6.from_hi_lo(hi, lo), V6.encode(values)
        )

    def test_family_of_and_get_space(self):
        assert family_of(np.zeros(3, dtype=np.int64)) == "v4"
        assert family_of(V6.encode([1])) == "v6"
        assert get_space("v4") is V4 and get_space("v6") is V6
        with pytest.raises(ValueError):
            get_space("v5")
        assert space_of(V6.encode([1])) is V6

    def test_format_parse(self):
        text = V6.format_address(0x20010DB8 << 96)
        assert text == "2001:db8::"
        assert V6.parse_address(text) == 0x20010DB8 << 96
        assert V4.format_address(0x01000000) == "1.0.0.0"


class TestEnvKnob:
    def test_default_is_v4(self, monkeypatch):
        monkeypatch.delenv("REPRO_ADDR_FAMILY", raising=False)
        assert addr_family() == "v4"

    def test_env_sets_family(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADDR_FAMILY", "v6")
        assert addr_family() == "v6"

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADDR_FAMILY", "v6")
        assert addr_family("v4") == "v4"

    def test_invalid_rejected_with_source(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADDR_FAMILY", "ipv5")
        with pytest.raises(ValueError) as exc:
            addr_family()
        assert "REPRO_ADDR_FAMILY" in str(exc.value)


# ---------------------------------------------------------------------------
# Satellite regressions
# ---------------------------------------------------------------------------


class TestLengthsExact:
    def test_non_power_of_two_interval_raises(self):
        # Coalescing 1.0.0.0/24 + 1.0.1.0/25 yields a 384-address run:
        # the old log2-round path silently called it a /23.5-ish /24.
        part = Partition(np.array([1 << 24]), np.array([(1 << 24) + 384]))
        with pytest.raises(ValueError, match="non-power-of-two"):
            part.lengths

    def test_aligned_intervals_exact(self):
        starts = np.array([0, 1 << 24], dtype=np.int64)
        ends = np.array([1 << 8, (1 << 24) + (1 << 16)], dtype=np.int64)
        assert Partition(starts, ends).lengths.tolist() == [24, 16]

    def test_v6_aligned_intervals_exact(self):
        base = 0x20010DB8 << 96
        part = Partition(
            V6.encode([base]), V6.encode([base + (1 << 96)])
        )
        assert part.lengths.tolist() == [32]

    def test_v6_non_power_of_two_raises(self):
        base = 0x20010DB8 << 96
        part = Partition(
            V6.encode([base]), V6.encode([base + 3 * (1 << 90)])
        )
        with pytest.raises(ValueError, match="non-power-of-two"):
            part.lengths


class TestPythonIntIteration:
    """Scalar iteration is the JSON boundary: never leak NumPy types."""

    def test_addrset_v4_iter(self):
        values = list(AddressSet([3, 1, 2]))
        assert values == [1, 2, 3]
        assert all(type(v) is int for v in values)
        json.dumps(values)

    def test_addrset_v6_iter(self):
        raw = [2**100, 5, 2**64]
        values = list(AddressSet(V6.encode(raw)))
        assert values == sorted(raw)
        assert all(type(v) is int for v in values)
        json.dumps(values)

    def test_permutation_iter(self):
        values = list(CyclicPermutation(50, seed=3))
        assert sorted(values) == list(range(50))
        assert all(type(v) is int for v in values)

    def test_prefix_targets_iter_v4(self):
        targets = PrefixTargets([Prefix.from_cidr("10.0.0.0/28")], seed=1)
        values = list(targets)
        assert sorted(values) == list(range(10 << 24, (10 << 24) + 16))
        assert all(type(v) is int for v in values)
        json.dumps(values)

    def test_prefix_targets_iter_v6(self):
        targets = PrefixTargets(
            [Prefix.from_cidr("2001:db8::/124")], seed=1
        )
        values = list(targets)
        base = 0x20010DB8 << 96
        assert sorted(values) == list(range(base, base + 16))
        assert all(type(v) is int for v in values)


# ---------------------------------------------------------------------------
# Hypothesis: 128-bit set algebra against the Python-set oracle
# ---------------------------------------------------------------------------


def _pyset(address_set: AddressSet) -> set:
    return set(iter(address_set))


@given(v6_addresses, v6_addresses)
@settings(max_examples=60, deadline=None)
def test_v6_addrset_algebra_matches_set_oracle(a, b):
    sa, sb = AddressSet(V6.encode(a)), AddressSet(V6.encode(b))
    oa, ob = set(a), set(b)
    assert _pyset(sa) == oa
    assert _pyset(sa | sb) == oa | ob
    assert _pyset(sa & sb) == oa & ob
    assert _pyset(sa - sb) == oa - ob
    assert _pyset(sa ^ sb) == oa ^ ob
    assert sa.intersection_count(sb) == len(oa & ob)
    assert sa.issubset(sb) == oa.issubset(ob)
    # Results stay in the v6 representation.
    for derived in (sa | sb, sa & sb, sa - sb, sa ^ sb):
        assert derived.values.dtype == np.dtype("S16")


@given(v6_addresses, v6_addresses)
@settings(max_examples=60, deadline=None)
def test_v6_addrset_membership_matches_oracle(a, b):
    sa = AddressSet(V6.encode(a))
    oa = set(a)
    mask = sa.membership(V6.encode(b))
    assert mask.tolist() == [v in oa for v in b]
    for v in b[:10]:
        assert (v in sa) == (v in oa)


# ---------------------------------------------------------------------------
# Hypothesis: the cyclic walk beyond 2^63
# ---------------------------------------------------------------------------


@given(
    st.integers(min_value=(1 << 63) + 1, max_value=1 << 96),
    st.integers(min_value=0, max_value=1 << 30),
)
@settings(max_examples=10, deadline=None)
def test_big_modulus_walk_matches_bigint_oracle(n, seed):
    """Sampled prefix of an n > 2^63 walk: unique, in range, exact."""
    perm = CyclicPermutation(n, seed=seed)
    assert perm.prime > n
    sampled = []
    for batch in perm.batches(1 << 10):
        assert batch.dtype == object  # Python ints, no silent overflow
        sampled.extend(batch.tolist())
        if len(sampled) >= 2000:
            break
    assert all(type(v) is int for v in sampled)
    assert all(0 <= v < n for v in sampled)
    assert len(set(sampled)) == len(sampled)
    p, g, start = perm.prime, perm._gen, perm._start
    expected, element = [], start
    while len(expected) < len(sampled):
        if element <= n:
            expected.append(element - 1)
        element = element * g % p
    assert sampled == expected


@given(
    st.integers(min_value=(1 << 63) + 1, max_value=1 << 96),
    st.integers(min_value=0, max_value=1 << 30),
    st.integers(min_value=2, max_value=5),
)
@settings(max_examples=10, deadline=None)
def test_big_modulus_shards_interleave_the_full_cycle(n, seed, shards):
    """Shard i carries exactly positions i, i+K, ... of the group walk.

    Full coverage is unobservable at 2^63+, but the interleaving
    invariant — which is what makes K shards a disjoint cover — is
    checkable on any prefix of the walk.
    """
    perm = CyclicPermutation(n, seed=seed)
    per_shard = 300
    lanes = []
    for i in range(shards):
        lane = []
        for batch in perm.shard(i, shards).batches(1 << 9):
            lane.extend(batch.tolist())
            if len(lane) >= per_shard:
                break
        lanes.append(lane[:per_shard])
    # Reconstruct the full-cycle prefix from the group positions the
    # lanes claim, and compare against the unsharded walk.
    p, g, start = perm.prime, perm._gen, perm._start
    full, element, positions = [], start, 0
    while positions < shards * per_shard:
        if element <= n:
            full.append((positions % shards, element - 1))
        element = element * g % p
        positions += 1
    for lane_index, value in full:
        lane = lanes[lane_index]
        if lane:
            assert lane.pop(0) == value


def test_prime_factors_exact_beyond_trial_division():
    """Pollard rho keeps generator search exact past trial range."""
    from repro.scan.permutation import _prime_factors

    mersennes = (2**61 - 1) * (2**31 - 1)  # both prime, both > 2^20
    n = 12 * mersennes
    factors = _prime_factors(n)
    assert factors == {2, 3, 2**31 - 1, 2**61 - 1}


# ---------------------------------------------------------------------------
# 128-bit counting: the differential oracle
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 128) - (1 << 20)),
            st.integers(min_value=1, max_value=1 << 18),
        ),
        min_size=1,
        max_size=12,
    ),
    st.data(),
)
@settings(max_examples=25, deadline=None)
def test_v6_backends_agree_on_random_intervals(raw, data):
    # Disjoint-ify: sort by start and clip each end to the next start.
    raw = sorted(dict(raw).items())
    starts, ends = [], []
    for i, (s, size) in enumerate(raw):
        e = s + size
        if i + 1 < len(raw):
            e = min(e, raw[i + 1][0])
        if e > s:
            starts.append(s)
            ends.append(e)
    if not starts:
        starts, ends = [0], [1]
    inside = [
        data.draw(st.integers(min_value=s, max_value=e - 1))
        for s, e in zip(starts, ends)
    ]
    outside = data.draw(v6_addresses)
    values = np.unique(V6.encode(inside + outside))
    counts = {
        name: count_with_backend(
            V6.encode(starts), V6.encode(ends), values, name
        ).tolist()
        for name in available_backends()
    }
    assert len(set(map(tuple, counts.values()))) == 1, counts


def test_v6_partition_exact_accounting():
    base = 0x20010DB8 << 96
    prefixes = [
        Prefix(base, 32, 128),
        Prefix(base + (1 << 96), 48, 128),
    ]
    part = Partition.from_prefixes(prefixes)
    assert part.sizes_exact == (1 << 96, 1 << 80)
    assert part.address_count() == (1 << 96) + (1 << 80)
    mask = np.array([True, False])
    assert part.masked_address_count(mask) == 1 << 96
    # float64 sizes stay exact for powers of two.
    assert part.sizes.tolist() == [float(1 << 96), float(1 << 80)]


# ---------------------------------------------------------------------------
# Dataset: synth preset + loader round trip
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def v6_dataset():
    return CensusDataset.generate("v6-tiny", seed=1)


def test_v6_synth_world_is_well_formed(v6_dataset):
    ds = v6_dataset
    assert ds.family == "v6"
    table = ds.topology.table
    assert all(p.bits == 128 for p in table.prefixes)
    part = table.partition("less-specific")
    snap = ds.series_for("http").seed_snapshot
    values = snap.addresses.values
    assert values.dtype == np.dtype("S16")
    # Every host lives inside the announced space.
    assert part.count_addresses(values).sum() == len(values)
    # Monthly churn: successive snapshots overlap but differ.
    series = ds.series_for("http")
    nxt = series[1].addresses
    overlap = snap.addresses.intersection_count(nxt)
    assert 0 < overlap < min(len(snap.addresses), len(nxt))


def test_v6_dataset_npz_round_trip(tmp_path, v6_dataset):
    path = tmp_path / "v6.npz"
    v6_dataset.save(path)
    loaded = CensusDataset.load(path)
    assert loaded.family == "v6"
    assert [str(p) for p in loaded.topology.table.prefixes] == [
        str(p) for p in v6_dataset.topology.table.prefixes
    ]
    assert loaded.topology.allocated_blocks == (
        v6_dataset.topology.allocated_blocks
    )
    a = v6_dataset.series_for("http").seed_snapshot.addresses.values
    b = loaded.series_for("http").seed_snapshot.addresses.values
    assert np.array_equal(a, b)


def test_v6_phi_selection_consistent_across_backends(v6_dataset):
    snap = v6_dataset.series_for("http").seed_snapshot
    table = v6_dataset.topology.table
    outcomes = set()
    for backend in available_backends():
        selection = TassStrategy(table, phi=0.9, backend=backend).plan(snap)
        outcomes.add(
            (
                len(selection),
                selection.selected_address_count(),
                selection.covered_hosts,
            )
        )
    assert len(outcomes) == 1
    (n, addresses, covered) = outcomes.pop()
    assert n > 0 and addresses > 1 << 64  # sums beyond int64, exactly
    assert covered / len(snap.addresses) >= 0.9


# ---------------------------------------------------------------------------
# v6 target streams and executor parity
# ---------------------------------------------------------------------------


def _v6_case():
    base = 0x20010DB8 << 96
    starts = V6.encode([base, base + (1 << 80)])
    ends = V6.encode([base + (1 << 8), base + (1 << 80) + (1 << 4)])
    hitlist = V6.encode(
        [base + 3, base + 7, base + (1 << 80) + 1, base + (1 << 90)]
    )
    return base, starts, ends, hitlist


def _drain(targets):
    out = []
    for shard in targets:
        for batch in shard.batches(batch_size=7):
            out.extend(batch.tolist())
    return sorted(out)


class TestV6IntervalTargets:
    def test_hitlist_filtered_to_coverage_and_samples_unique(self):
        base, starts, ends, hitlist = _v6_case()
        flat = _drain(
            shard_targets(
                (starts, ends), shards=1, seed=5, hitlist=hitlist, samples=6
            )
        )
        assert len(set(flat)) == len(flat)  # every probe exactly once
        covered = [
            (base, base + (1 << 8)),
            (base + (1 << 80), base + (1 << 80) + (1 << 4)),
        ]
        for raw in flat:
            value = int.from_bytes(raw.ljust(16, b"\0"), "big")
            assert any(s <= value < e for s, e in covered)
        present = set(flat)
        for member in (base + 3, base + 7, base + (1 << 80) + 1):
            assert V6.encode_scalar(member) in present
        # The out-of-coverage hitlist entry was dropped.
        assert V6.encode_scalar(base + (1 << 90)) not in present

    def test_shard_and_seeding_invariance(self):
        _, starts, ends, hitlist = _v6_case()
        kwargs = dict(seed=5, hitlist=hitlist, samples=6)
        one = _drain(shard_targets((starts, ends), shards=1, **kwargs))
        four = _drain(shard_targets((starts, ends), shards=4, **kwargs))
        assert one == four

    def test_pickle_round_trip(self):
        _, starts, ends, hitlist = _v6_case()
        targets = IntervalTargets(
            (starts, ends), seed=5, shard=1, shards=3,
            hitlist=hitlist, samples=6,
        )
        clone = pickle.loads(pickle.dumps(targets))
        assert _drain([targets]) == _drain([clone])

    def test_v4_rejects_seeding(self):
        starts = np.array([0], dtype=np.int64)
        ends = np.array([64], dtype=np.int64)
        with pytest.raises(ValueError, match="v6-only"):
            IntervalTargets((starts, ends), samples=4)

    def test_v4_pickle_state_unchanged(self):
        starts = np.array([0], dtype=np.int64)
        ends = np.array([64], dtype=np.int64)
        targets = IntervalTargets((starts, ends), seed=2, shard=0, shards=2)
        assert len(targets.__getstate__()) == 5  # the historical tuple


class TestV6ExecutorParity:
    def test_serial_process_distributed_agree(self):
        base, starts, ends, hitlist = _v6_case()
        responsive = V6.encode(
            sorted({base + 3, base + 9, base + (1 << 80) + 2})
        )
        outcomes = set()
        for shards, executor in [
            (1, "serial"), (4, "serial"), (4, "process"), (4, "distributed"),
        ]:
            sharded = run_sharded(
                (starts, ends),
                responsive,
                shards=shards,
                executor=executor,
                seed=5,
                hitlist=hitlist,
                samples=6,
            )
            outcomes.add(
                (sharded.result.probes_sent, sharded.result.responses)
            )
        assert len(outcomes) == 1
        probes, responses = outcomes.pop()
        assert probes > 0 and responses == 2


# ---------------------------------------------------------------------------
# The v6 campaign: orchestrator, checkpoints, resume
# ---------------------------------------------------------------------------


def build_mini_v6_dataset(
    seed: int = 7, months: int = 3, hosts: int = 1200
) -> CensusDataset:
    """A hand-built v6 world mirroring conftest's v4 mini dataset."""
    prefixes = [
        Prefix.from_cidr(c)
        for c in (
            "2001:db8::/32",
            "2400:cb00::/36",
            "2a00:1450::/48",
            "2c0f:f248::/44",
        )
    ]
    table = RoutingTable(prefixes)
    rng = np.random.default_rng(seed)
    weights = np.array([5.0, 0.5, 8.0, 0.3])
    probs = weights / weights.sum()
    networks = [int(p.network) for p in prefixes]
    snapshots = []
    for month in range(months):
        counts = rng.multinomial(hosts, probs)
        addresses = set()
        for network, count in zip(networks, counts):
            # Low-entropy tails: hosts cluster near the prefix base,
            # like the hitlist-style populations v6 scanning assumes.
            offsets = rng.integers(0, 1 << 20, int(count))
            addresses.update(network + int(o) for o in offsets)
        values = V6.encode(sorted(addresses))
        snapshots.append(
            Snapshot(
                values,
                np.arange(len(addresses)),
                np.zeros(len(addresses), dtype=np.int8),
                month=month,
            )
        )
    series = {"http": SnapshotSeries("http", snapshots)}
    asns = {p: 64512 + i for i, p in enumerate(prefixes)}
    blocks = [(networks[0], networks[0] + (1 << 96))]
    return CensusDataset(
        "mini-v6", seed, Topology(table, asns, blocks), series
    )


@pytest.fixture(scope="module")
def mini_v6_dataset() -> CensusDataset:
    return build_mini_v6_dataset()


def _v6_spec(**overrides):
    from repro.orchestrator.campaign import CampaignSpec

    base = dict(
        name="v6-campaign",
        preset="v6-tiny",
        dataset_seed=7,
        waves=3,
        phi=0.9,
        shards=3,
        executor="serial",
        family="v6",
        samples_per_prefix=8,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestV6Campaign:
    def test_full_run_and_kill_resume_byte_identity(
        self, tmp_path, mini_v6_dataset
    ):
        from repro.orchestrator.campaign import (
            CampaignRunner,
            run_campaign,
        )

        spec = _v6_spec()
        baseline = run_campaign(
            spec, dataset=mini_v6_dataset, directory=tmp_path / "base"
        )
        assert baseline["waves_completed"] == 3
        assert baseline["totals"]["responses"] > 0
        # announced_addresses is exact far beyond int64.
        assert baseline["announced_addresses"] > 1 << 64
        encoded = json.dumps(baseline, sort_keys=True)

        class Boom(Exception):
            pass

        directory = tmp_path / "killed"
        runner = CampaignRunner(
            spec, dataset=mini_v6_dataset, directory=directory
        )
        runner.store.write_spec(runner.spec.to_dict())
        checkpoints = []

        def bomb(r):
            checkpoints.append(r.state.shard)
            if len(checkpoints) == 2:
                raise Boom

        with pytest.raises(Boom):
            runner.run(on_checkpoint=bomb)
        resumed = CampaignRunner.resume(directory, dataset=mini_v6_dataset)
        status = resumed.run()
        assert json.dumps(status, sort_keys=True) == encoded

    def test_resume_rejects_family_mismatch(
        self, tmp_path, mini_v6_dataset, mini_dataset
    ):
        from repro.orchestrator.campaign import CampaignRunner

        runner = CampaignRunner(
            _v6_spec(waves=1), dataset=mini_v6_dataset, directory=tmp_path
        )
        runner.store.write_spec(runner.spec.to_dict())
        runner.run()
        with pytest.raises(ValueError, match="family"):
            CampaignRunner.resume(tmp_path, dataset=mini_dataset)

    def test_v4_spec_rejects_v6_dataset(self, mini_v6_dataset):
        from repro.orchestrator.campaign import (
            CampaignRunner,
            CampaignSpec,
        )

        with pytest.raises(ValueError, match="family"):
            CampaignRunner(
                CampaignSpec(preset="tiny"), dataset=mini_v6_dataset
            )

    def test_v6_forbids_explore_and_blocklist(self):
        with pytest.raises(ValueError, match="explore_frac is v4-only"):
            _v6_spec(explore_frac=0.1).resolved()
        with pytest.raises(ValueError, match="use_blocklist is v4-only"):
            _v6_spec(use_blocklist=True).resolved()

    def test_family_resolution_order(self, monkeypatch):
        from repro.orchestrator.campaign import CampaignSpec

        monkeypatch.delenv("REPRO_ADDR_FAMILY", raising=False)
        # Preset implies the family when nothing else names one.
        assert CampaignSpec(preset="v6-tiny").resolved().family == "v6"
        assert CampaignSpec(preset="tiny").resolved().family == "v4"
        # The environment knob outranks the preset ...
        monkeypatch.setenv("REPRO_ADDR_FAMILY", "v6")
        assert CampaignSpec(preset="tiny").resolved().family == "v6"
        # ... and the explicit argument outranks the environment.
        assert (
            CampaignSpec(preset="tiny", family="v4").resolved().family
            == "v4"
        )

    def test_obs_events_flow_on_v6(
        self, tmp_path, mini_v6_dataset, monkeypatch
    ):
        from repro.orchestrator.campaign import run_campaign

        monkeypatch.setenv("REPRO_OBS", "events")
        run_campaign(
            _v6_spec(waves=1),
            dataset=mini_v6_dataset,
            directory=tmp_path,
        )
        events = [
            json.loads(line)
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        kinds = {e.get("type") for e in events}
        assert {"campaign", "wave", "shard", "checkpoint"} <= kinds


# ---------------------------------------------------------------------------
# Wire codec: S16 through the distributed frame carrier
# ---------------------------------------------------------------------------


def test_encode_array_round_trips_s16():
    from repro.scan.distributed import decode_array, encode_array

    values = V6.encode([0, 5, 2**96 + 1, 2**128 - 1])
    carried = decode_array(encode_array(values))
    assert carried.dtype == np.dtype("S16")
    assert np.array_equal(carried, values)
