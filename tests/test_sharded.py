"""Sharded execution invariants: K-invariant merges, executor parity.

The load-bearing guarantee: a sharded run with K=8 produces a merged
``ScanResult`` byte-identical to K=1, and the selection feeding the
scan is byte-identical no matter how the scan itself is sharded or
which counting backend planned it.
"""

import dataclasses

import numpy as np
import pytest

from repro.bgp.backends import available_backends
from repro.bgp.table import LESS_SPECIFIC, Prefix, RoutingTable
from repro.census.addrset import AddressSet
from repro.core.tass import TassStrategy
from repro.scan.blocklist import Blocklist
from repro.scan.engine import EngineConfig
from repro.scan.sharded import (
    IntervalTargets,
    merge_results,
    run_sharded,
    shard_targets,
)

_CONFIG = EngineConfig(batch_size=1 << 11)


def _world():
    table = RoutingTable(
        [
            Prefix.from_cidr("1.0.0.0/18"),
            Prefix.from_cidr("2.4.0.0/16"),
            Prefix.from_cidr("9.9.9.0/24"),
        ]
    )
    partition = table.partition(LESS_SPECIFIC)
    rng = np.random.default_rng(42)
    responsive = AddressSet(
        np.concatenate(
            [
                partition.starts[i]
                + rng.integers(0, partition.sizes[i], 400)
                for i in range(len(partition))
            ]
        )
    )
    return table, partition, responsive


def _result_bytes(result) -> bytes:
    return repr(dataclasses.astuple(result)).encode()


@pytest.mark.parametrize("shards", [2, 3, 8])
def test_sharded_merge_is_byte_identical_to_serial(shards):
    table, _, responsive = _world()
    selection = TassStrategy(table, phi=0.95).plan(responsive)
    one = run_sharded(
        selection, responsive, shards=1, executor="serial", config=_CONFIG
    )
    many = run_sharded(
        selection,
        responsive,
        shards=shards,
        executor="serial",
        config=_CONFIG,
    )
    assert _result_bytes(one.result) == _result_bytes(many.result)
    assert many.shards == shards
    assert len(many.shard_results) == shards
    assert sum(r.probes_sent for r in many.shard_results) == (
        one.result.probes_sent
    )


def test_selection_outputs_shard_and_backend_invariant():
    table, _, responsive = _world()
    baseline = TassStrategy(table, phi=0.95).plan(responsive)
    for backend in available_backends():
        selection = TassStrategy(table, phi=0.95, backend=backend).plan(
            responsive
        )
        assert selection.starts.tobytes() == baseline.starts.tobytes()
        assert selection.ends.tobytes() == baseline.ends.tobytes()
        assert selection.covered_hosts == baseline.covered_hosts
    # Sharding the scan never perturbs what was selected.
    for shards in (1, 8):
        run_sharded(
            baseline, responsive, shards=shards, executor="serial",
            config=_CONFIG,
        )
        assert baseline.starts.tobytes() == (
            TassStrategy(table, phi=0.95).plan(responsive).starts.tobytes()
        )


def test_single_shard_process_request_reports_serial():
    table, _, responsive = _world()
    selection = TassStrategy(table, phi=0.9).plan(responsive)
    run = run_sharded(
        selection, responsive, shards=1, executor="process", config=_CONFIG
    )
    assert run.executor == "serial"
    assert run.shards == 1


def test_process_executor_matches_serial():
    table, _, responsive = _world()
    selection = TassStrategy(table, phi=0.9).plan(responsive)
    serial = run_sharded(
        selection, responsive, shards=4, executor="serial", config=_CONFIG
    )
    process = run_sharded(
        selection, responsive, shards=4, executor="process", config=_CONFIG
    )
    assert _result_bytes(serial.result) == _result_bytes(process.result)
    for left, right in zip(serial.shard_results, process.shard_results):
        assert _result_bytes(left) == _result_bytes(right)


def test_shards_cover_targets_exactly_once():
    _, partition, _ = _world()
    pieces = [
        np.concatenate(list(t.batches(1 << 10)))
        for t in shard_targets(partition, shards=5, seed=3)
    ]
    union = np.sort(np.concatenate(pieces))
    expected = np.concatenate(
        [
            np.arange(s, e)
            for s, e in zip(partition.starts, partition.ends)
        ]
    )
    assert np.array_equal(union, expected)


def test_blocklist_accounting_is_shard_invariant():
    table, partition, responsive = _world()
    blocklist = Blocklist(
        partition.starts[:1], partition.starts[:1] + 1024
    )
    runs = [
        run_sharded(
            partition,
            responsive,
            shards=k,
            executor="serial",
            config=_CONFIG,
            blocklist=blocklist,
            protocol="http",
        )
        for k in (1, 7)
    ]
    assert _result_bytes(runs[0].result) == _result_bytes(runs[1].result)
    assert runs[0].result.blocked == 1024
    assert runs[0].result.protocol == "http"


def test_env_knobs_select_shards_and_executor(monkeypatch):
    table, _, responsive = _world()
    selection = TassStrategy(table, phi=0.9).plan(responsive)
    monkeypatch.setenv("REPRO_SCAN_SHARDS", "4")
    monkeypatch.setenv("REPRO_SCAN_EXECUTOR", "serial")
    run = run_sharded(selection, responsive, config=_CONFIG)
    assert run.shards == 4
    assert run.executor == "serial"
    monkeypatch.setenv("REPRO_SCAN_EXECUTOR", "bogus")
    with pytest.raises(ValueError, match="unknown executor"):
        run_sharded(selection, responsive, config=_CONFIG)


def test_target_spec_normalisation():
    # Range size, raw interval arrays, and prefix lists all shard.
    for spec in (
        1000,
        (np.array([0, 5000]), np.array([1000, 6000])),
        [Prefix.from_cidr("10.0.0.0/24")],
    ):
        targets = shard_targets(spec, shards=2, seed=1)
        total = sum(
            sum(len(b) for b in t.batches(128)) for t in targets
        )
        assert total == IntervalTargets(spec).address_count()
    with pytest.raises(ValueError, match="sorted disjoint"):
        IntervalTargets((np.array([0, 10]), np.array([20, 30])))
    with pytest.raises(ValueError, match="0 <= shard < shards"):
        IntervalTargets(100, shard=2, shards=2)


@pytest.mark.parametrize("shards", [0, -3])
def test_non_positive_shard_counts_rejected(shards, monkeypatch):
    table, _, responsive = _world()
    selection = TassStrategy(table, phi=0.9).plan(responsive)
    with pytest.raises(ValueError, match="shards"):
        shard_targets(selection, shards=shards)
    with pytest.raises(ValueError, match="shards"):
        run_sharded(selection, responsive, shards=shards, config=_CONFIG)
    monkeypatch.setenv("REPRO_SCAN_SHARDS", str(shards))
    with pytest.raises(ValueError, match="shards"):
        run_sharded(selection, responsive, config=_CONFIG)


def test_merge_results_normalises_batches():
    from repro.scan.engine import ScanResult

    merged = merge_results(
        [
            ScanResult(probes_sent=100, responses=5, blocked=10, batches=3),
            ScanResult(probes_sent=50, responses=2, blocked=0, batches=9),
        ],
        batch_size=64,
    )
    assert merged.probes_sent == 150
    assert merged.responses == 7
    assert merged.blocked == 10
    assert merged.batches == -(-160 // 64)
    assert merge_results([], batch_size=64).probes_sent == 0


def test_merge_results_rejects_conflicting_protocols():
    from repro.scan.engine import ScanResult

    shards = [
        ScanResult(probes_sent=10, protocol="http"),
        ScanResult(probes_sent=10, protocol=None),
        ScanResult(probes_sent=10, protocol="ssh"),
    ]
    with pytest.raises(ValueError) as excinfo:
        merge_results(shards, batch_size=64)
    message = str(excinfo.value)
    assert "'http'" in message and "'ssh'" in message
    # A None protocol alongside one real protocol is *not* a conflict.
    merged = merge_results(shards[:2], batch_size=64)
    assert merged.protocol == "http"


@pytest.mark.parametrize(
    "spec",
    [
        # 4098 = 4099 - 1 with 4099 prime: the dense p - 1 == n fast
        # path, where batches are derived straight from the walk's
        # preallocated multiply buffer.
        4098,
        # Two intervals: the sparse path (`values <= n` filter copy).
        (np.array([0, 10000]), np.array([4096, 12000])),
    ],
    ids=["dense", "sparse"],
)
def test_interleaved_walks_are_immune_to_batch_sorting(spec):
    """``batches``'s in-place ``values.sort()`` must never corrupt state
    aliased with the memoized/preallocated :class:`CyclicPermutation`
    buffers (the PR-4 fast paths).

    Two interleaved walks over the same modulus share one memoized
    power table; each must still reproduce its own fresh,
    uninterleaved drain exactly.
    """
    interleaved: dict[str, list] = {"a": [], "b": []}
    live = {
        "a": IntervalTargets(spec, seed=1).batches(512),
        "b": IntervalTargets(spec, seed=2).batches(512),
    }
    while live:
        for name, gen in list(live.items()):
            batch = next(gen, None)
            if batch is None:
                del live[name]
            else:
                interleaved[name].append(batch.copy())

    for name, seed in (("a", 1), ("b", 2)):
        fresh = list(IntervalTargets(spec, seed=seed).batches(512))
        assert len(fresh) == len(interleaved[name])
        for left, right in zip(fresh, interleaved[name]):
            assert np.array_equal(left, right), name
