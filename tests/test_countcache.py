"""Cross-wave count reuse and interval coalescing.

Two invariants guard the PR-4 hot-path work:

- the :class:`~repro.bgp.backends.CountCache` must be a pure memo —
  identical arrays in, the *same* counts out, never a stale or wrong
  entry, bounded memory;
- a coalesced :class:`~repro.core.tass.Selection` must be observably
  identical to the uncoalesced interval set (``count_in`` /
  ``membership`` / ``probe_count``) under every counting backend.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.backends import (
    COUNT_CACHE,
    CountCache,
    available_backends,
    count_with_backend,
)
from repro.bgp.table import Partition, coalesce_intervals, interval_membership
from repro.core.tass import Selection


def _frozen(values) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    arr.setflags(write=False)
    return arr


def _partition() -> Partition:
    # Adjacent runs on purpose: [0,10)+[10,20) coalesce, [25,40)+[40,41)
    # coalesce, [50,60) stands alone.
    return Partition([0, 10, 25, 40, 50], [10, 20, 40, 41, 60])


# ---------------------------------------------------------------------------
# CountCache semantics
# ---------------------------------------------------------------------------


class TestCountCache:
    def test_hit_returns_the_same_array(self):
        cache = CountCache()
        part = _partition()
        values = _frozen([1, 5, 11, 39, 55])
        first = cache.counts(part, values)
        second = cache.counts(part, values)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1
        assert not first.flags.writeable
        assert first.tolist() == count_with_backend(
            part.starts, part.ends, values
        ).tolist()

    def test_distinct_values_objects_are_distinct_entries(self):
        cache = CountCache()
        part = _partition()
        a = _frozen([1, 2, 3])
        b = _frozen([1, 2, 3])  # equal content, different identity
        cache.counts(part, a)
        cache.counts(part, b)
        assert cache.misses == 2 and cache.hits == 0

    def test_writable_arrays_bypass_the_cache(self):
        cache = CountCache()
        part = _partition()
        values = np.asarray([1, 5, 11], dtype=np.int64)  # writable
        assert not CountCache.cacheable(values)
        cache.counts(part, values)
        cache.counts(part, values)
        assert len(cache) == 0 and cache.misses == 0

    def test_callable_backends_bypass_the_cache(self):
        cache = CountCache()
        part = _partition()
        values = _frozen([1, 5, 11])
        calls = []

        def backend(starts, ends, vals):
            calls.append(1)
            return count_with_backend(starts, ends, vals)

        cache.counts(part, values, backend)
        cache.counts(part, values, backend)
        assert len(calls) == 2 and len(cache) == 0

    def test_backend_name_is_part_of_the_key(self):
        cache = CountCache()
        part = _partition()
        values = _frozen([1, 5, 11, 39, 55])
        results = {
            name: cache.counts(part, values, name)
            for name in available_backends()
        }
        assert cache.misses == len(available_backends())
        reference = results["searchsorted"].tolist()
        for name, counts in results.items():
            assert counts.tolist() == reference, name

    def test_lru_bound_evicts_oldest(self):
        cache = CountCache(maxsize=2)
        part = _partition()
        frozen = [_frozen([i]) for i in range(3)]
        for arr in frozen:
            cache.counts(part, arr)
        assert len(cache) == 2
        cache.counts(part, frozen[0])  # evicted -> fresh miss
        assert cache.misses == 4

    def test_cache_does_not_keep_snapshots_alive(self):
        import gc
        import weakref

        cache = CountCache()
        part = _partition()
        values = _frozen([1, 5, 11])
        watcher = weakref.ref(values)
        cache.counts(part, values)
        assert len(cache) == 1
        del values
        gc.collect()
        # The cached entry held only a weakref: the snapshot is gone,
        # and the next insert sweeps the dead entry out.
        assert watcher() is None
        other = _frozen([2, 4])
        cache.counts(part, other)
        assert len(cache) == 1

    def test_recycled_id_never_serves_stale_counts(self):
        cache = CountCache()
        part = _partition()
        values = _frozen([1, 5, 11])
        first = cache.counts(part, values).tolist()
        # Simulate an id collision: a dead entry whose key survives.
        key = next(iter(cache._entries))
        stale = cache._entries[key]
        fresh = _frozen([55])
        cache._entries[(id(part), id(fresh), key[2])] = stale
        got = cache.counts(part, fresh)
        assert got.tolist() == count_with_backend(
            part.starts, part.ends, fresh
        ).tolist()
        assert got.tolist() != first

    def test_env_var_resolution_is_part_of_the_key(self, monkeypatch):
        cache = CountCache()
        part = _partition()
        values = _frozen([1, 5, 11])
        monkeypatch.setenv("REPRO_COUNT_BACKEND", "searchsorted")
        cache.counts(part, values)
        monkeypatch.setenv("REPRO_COUNT_BACKEND", "bitmap")
        cache.counts(part, values)
        assert cache.misses == 2 and cache.hits == 0

    def test_partition_count_addresses_routes_through_shared_cache(self):
        part = _partition()
        values = _frozen([1, 5, 11, 39, 55])
        COUNT_CACHE.clear()
        first = part.count_addresses(values)
        second = part.count_addresses(values)
        assert first is second
        assert COUNT_CACHE.hits >= 1
        COUNT_CACHE.clear()


# ---------------------------------------------------------------------------
# Interval coalescing
# ---------------------------------------------------------------------------


def test_coalesce_merges_adjacent_and_overlapping():
    starts, ends = coalesce_intervals(
        [0, 10, 25, 40, 50], [10, 20, 40, 41, 60]
    )
    assert starts.tolist() == [0, 25, 50]
    assert ends.tolist() == [20, 41, 60]
    # Nested/overlapping runs collapse too (the Blocklist case).
    starts, ends = coalesce_intervals([0, 2, 30], [20, 5, 40])
    assert starts.tolist() == [0, 30]
    assert ends.tolist() == [20, 40]


intervals_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=1, max_value=64),
    ),
    min_size=1,
    max_size=30,
)


def _disjoint_partition(raw) -> Partition:
    """Sorted disjoint (often adjacent) intervals from raw (gap, size)."""
    starts, ends, cursor = [], [], 0
    for gap, size in raw:
        cursor += gap  # gap 0 => adjacent to the previous interval
        starts.append(cursor)
        cursor += size
        ends.append(cursor)
    return Partition(starts, ends)


@settings(max_examples=50, deadline=None)
@given(
    raw=intervals_strategy,
    pick=st.data(),
)
def test_coalesced_selection_identical_across_backends(raw, pick):
    partition = _disjoint_partition(raw)
    k = len(partition)
    indices = pick.draw(
        st.lists(
            st.integers(min_value=0, max_value=k - 1),
            min_size=1,
            max_size=k,
            unique=True,
        )
    )
    selection = Selection(partition, indices, 0, 0, 1.0)
    hi = int(partition.ends[-1]) + 10
    values = np.unique(
        np.asarray(
            pick.draw(
                st.lists(
                    st.integers(min_value=0, max_value=hi), max_size=80
                )
            ),
            dtype=np.int64,
        )
    )

    cstarts, cends = selection.coalesced()
    assert len(cstarts) <= len(selection.starts)
    # Same covered space, still sorted disjoint with no adjacent runs.
    assert int((cends - cstarts).sum()) == selection.probe_count()
    assert np.all(cstarts[1:] > cends[:-1])

    expected_mask = interval_membership(
        selection.starts, selection.ends, values
    )
    assert selection.membership(values).tolist() == expected_mask.tolist()

    for backend in available_backends():
        expected = int(
            count_with_backend(
                selection.starts, selection.ends, values, backend
            ).sum()
        )
        # Writable values: the direct coalesced counting path.
        assert selection.count_in(values, backend=backend) == expected
        # Frozen values: the shared full-partition cache path.
        frozen = _frozen(values.copy())
        assert selection.count_in(frozen, backend=backend) == expected
        # Coalesced interval table counts the same total outright.
        assert (
            int(count_with_backend(cstarts, cends, values, backend).sum())
            == expected
        )
