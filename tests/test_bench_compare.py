"""The perf-regression gate: benchmarks/compare.py semantics.

The gate must demonstrably fail on an injected 30% slowdown at the
default 25% tolerance, pass inside tolerance, and absorb one noisy run
via best-of-N candidate selection.
"""

import json
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
COMPARE = ROOT / "benchmarks" / "compare.py"


def _bench_json(path: Path, means: dict) -> Path:
    path.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {"fullname": name, "stats": {"mean": mean}}
                    for name, mean in means.items()
                ]
            }
        )
    )
    return path


def _run(*args):
    return subprocess.run(
        [sys.executable, str(COMPARE), *map(str, args)],
        capture_output=True,
        text=True,
    )


def test_injected_30pct_slowdown_fails_the_gate(tmp_path):
    base = _bench_json(
        tmp_path / "base.json", {"bench::a": 0.100, "bench::b": 0.200}
    )
    slow = _bench_json(
        tmp_path / "slow.json", {"bench::a": 0.130, "bench::b": 0.190}
    )
    proc = _run(slow, "--against", base, "--tolerance", "0.25")
    assert proc.returncode == 1
    assert "bench::a" in proc.stdout
    assert "regressed" in proc.stdout


def test_within_tolerance_passes(tmp_path):
    base = _bench_json(tmp_path / "base.json", {"bench::a": 0.100})
    run = _bench_json(tmp_path / "run.json", {"bench::a": 0.120})
    proc = _run(run, "--against", base, "--tolerance", "0.25")
    assert proc.returncode == 0, proc.stdout


def test_best_of_two_absorbs_one_noisy_run(tmp_path):
    base = _bench_json(tmp_path / "base.json", {"bench::a": 0.100})
    noisy = _bench_json(tmp_path / "noisy.json", {"bench::a": 0.500})
    clean = _bench_json(tmp_path / "clean.json", {"bench::a": 0.105})
    assert _run(noisy, "--against", base).returncode == 1
    assert _run(noisy, clean, "--against", base).returncode == 0


def test_best_of_baselines_keeps_the_gate_strict(tmp_path):
    # A noisy (slow) baseline run would silently loosen the gate; with
    # --against repeated, the per-benchmark best across baselines is
    # what the candidate must beat.
    noisy = _bench_json(tmp_path / "noisy.json", {"bench::a": 0.500})
    clean = _bench_json(tmp_path / "clean.json", {"bench::a": 0.100})
    run = _bench_json(tmp_path / "run.json", {"bench::a": 0.140})
    assert _run(run, "--against", noisy).returncode == 0
    proc = _run(run, "--against", noisy, "--against", clean)
    assert proc.returncode == 1
    assert "best of 2 baseline(s)" in proc.stdout


def test_unmatched_benchmarks_never_fail_the_gate(tmp_path):
    base = _bench_json(tmp_path / "base.json", {"bench::gone": 0.1})
    run = _bench_json(tmp_path / "run.json", {"bench::new": 9.9})
    proc = _run(run, "--against", base)
    assert proc.returncode == 0
    assert "no baseline entry" in proc.stdout
    assert "not in this run" in proc.stdout


def test_gate_against_committed_baseline_format():
    """compare.py parses the real committed BENCH_small.json."""
    sys.path.insert(0, str(ROOT / "benchmarks"))
    try:
        from compare import load_means
    finally:
        sys.path.pop(0)
    means = load_means(ROOT / "BENCH_small.json")
    assert means and all(m >= 0 for m in means.values())
