"""Vectorized counting vs trie reference on a handcrafted table."""

import numpy as np

from repro.bgp.deaggregate import partition_table, split_range
from repro.bgp.table import (
    LESS_SPECIFIC,
    MORE_SPECIFIC,
    Partition,
    Prefix,
    RoutingTable,
)
from repro.census.addrset import AddressSet
from repro.core.clustering import refine_partition
from repro.core.density import count_with_trie
from repro.core.tass import select_by_density


def _table():
    a = Prefix.from_cidr("10.0.0.0/16")
    b = Prefix.from_cidr("10.2.0.0/15")
    c = Prefix.from_cidr("192.168.0.0/24")
    # b is deaggregated: one /17 child and one /20 grandchild level.
    b1 = Prefix.from_cidr("10.2.128.0/17")
    b1a = Prefix.from_cidr("10.2.128.0/20")
    return RoutingTable([a, b, c], {b: [b1], b1: [b1a]})


def test_count_addresses_handcrafted():
    table = _table()
    partition = table.partition(LESS_SPECIFIC)
    addresses = AddressSet(
        [
            Prefix.from_cidr("10.0.1.0/32").network,
            Prefix.from_cidr("10.0.2.0/32").network,
            Prefix.from_cidr("10.2.128.5/32").network,
            Prefix.from_cidr("192.168.0.200/32").network,
        ]
    )
    counts = partition.count_addresses(addresses.values)
    assert counts.tolist() == [2, 1, 1]
    assert counts.sum() == len(addresses)


def test_trie_agrees_with_vectorized_counting():
    table = _table()
    rng = np.random.default_rng(0)
    for view in (LESS_SPECIFIC, MORE_SPECIFIC):
        partition = table.partition(view)
        # Random addresses inside the announced space plus some outside.
        inside = np.concatenate(
            [
                partition.starts[i]
                + rng.integers(0, partition.sizes[i], 50)
                for i in range(len(partition))
            ]
        )
        outside = np.array(
            [0, Prefix.from_cidr("172.30.0.1/32").network, (1 << 32) - 1]
        )
        sample = AddressSet(np.concatenate([inside, outside]))
        vectorized = partition.count_addresses(sample.values)
        trie = count_with_trie(sample, partition)
        assert np.array_equal(vectorized, trie)
        assert vectorized.sum() == len(sample) - len(outside)


def test_more_specific_partition_preserves_space():
    table = _table()
    forest = {p: table.children_of(p) for p in table.prefixes}
    parts = partition_table(forest, table.l_prefixes)
    assert sum(p.size for p in parts) == sum(
        p.size for p in table.l_prefixes
    )
    # Parts are sorted and disjoint.
    for left, right in zip(parts, parts[1:]):
        assert left.end <= right.start
    # The deaggregated children survive as-is.
    assert Prefix.from_cidr("10.2.128.0/20") in parts


def test_split_range_covers_exactly():
    parts = list(split_range(5, 131))
    assert sum(p.size for p in parts) == 126
    assert parts[0].start == 5
    assert parts[-1].end == 131


def test_select_by_density_phi_thresholds():
    partition = Partition.from_prefixes(
        [
            Prefix.from_cidr("10.0.0.0/24"),  # 10 hosts in 256 -> dense
            Prefix.from_cidr("10.1.0.0/16"),  # 20 hosts in 65536 -> sparse
            Prefix.from_cidr("10.2.0.0/24"),  # empty
        ]
    )
    counts = np.array([10, 20, 0])
    full = select_by_density(partition, counts, 1.0)
    assert len(full) == 2  # the empty prefix is never selected
    assert full.host_coverage == 1.0
    partial = select_by_density(partition, counts, 0.3)
    assert len(partial) == 1  # the dense /24 alone covers 1/3 of hosts
    assert partial.selected_address_count() == 256


def test_refine_partition_stays_within_sub_slash24_parts():
    # Parts smaller than a /24: the refinement must clip to them, not
    # round out to whole /24 blocks.
    partition = Partition.from_prefixes(
        [Prefix.from_cidr("10.0.0.0/26"), Prefix.from_cidr("10.0.0.64/26")]
    )
    base = Prefix.from_cidr("10.0.0.0/26").network
    addresses = AddressSet([base + 5, base + 70])
    clustered = refine_partition(addresses, partition, max_gap=1)
    assert clustered.address_count() <= partition.address_count()
    # Every clustered interval lies inside the original partition.
    assert partition.membership(clustered.starts).all()
    assert partition.membership(clustered.ends - 1).all()
    assert clustered.count_addresses(addresses.values).sum() == len(addresses)


def test_refine_partition_clusters_occupied_slash24s():
    partition = Partition.from_prefixes(
        [Prefix.from_cidr("10.0.0.0/16")]
    )
    base = Prefix.from_cidr("10.0.0.0/16").network
    # Occupied /24 blocks 0, 1, 3 (gap of one empty block) and 10.
    addresses = AddressSet(
        [base + 5, base + (1 << 8) + 7, base + (3 << 8) + 1, base + (10 << 8)]
    )
    clustered = refine_partition(addresses, partition, max_gap=1)
    assert len(clustered) == 2  # blocks 0-3 merge; block 10 stands alone
    assert clustered.address_count() == 4 * 256 + 256
    counts = clustered.count_addresses(addresses.values)
    assert counts.sum() == len(addresses)
