"""Remote worker fleet: address book, auth handshake, join, restart.

The PR-7 guarantees on top of the distributed executor: a coordinator
dials *out* to pre-started ``--listen`` workers named in the address
book (mixing them freely with spawned children), every connection can
be gated behind a mutual HMAC-SHA256 challenge/response, a worker that
appears after dispatch started joins mid-wave, and a coordinator that
dies and is rebuilt reconnects the same remote fleet and resumes from
the checkpoint stream — all without perturbing a single merged byte.
"""

import dataclasses
import json
import queue
import socket
import threading

import numpy as np
import pytest

from conftest import build_mini_dataset
from repro.orchestrator import CampaignRunner, CampaignSpec, ReseedPolicy
from repro.scan.distributed import Coordinator, listen_main
from repro.scan.engine import EngineConfig
from repro.scan.sharded import run_sharded, shard_targets

_CONFIG = EngineConfig(batch_size=1 << 11)


def _world():
    rng = np.random.default_rng(23)
    responsive = np.unique(rng.integers(0, 300000, 6000))
    return 300000, responsive


def _result_bytes(result) -> bytes:
    return repr(dataclasses.astuple(result)).encode()


def _listen_worker(secret=None, max_sessions=1, auth_fail=False):
    """A pre-started --listen worker on a free port, in a thread."""
    ports: queue.Queue = queue.Queue()
    thread = threading.Thread(
        target=listen_main,
        args=("127.0.0.1", 0),
        kwargs=dict(
            secret=secret,
            max_sessions=max_sessions,
            auth_fail=auth_fail,
            on_bound=lambda _host, port: ports.put(port),
        ),
        daemon=True,
    )
    thread.start()
    return thread, ("127.0.0.1", ports.get(timeout=10))


def _serial_shards(spec, responsive, shards):
    return run_sharded(
        spec, responsive, shards=shards, executor="serial", config=_CONFIG
    ).shard_results


# ---------------------------------------------------------------------------
# Address book: remote-only and mixed fleets
# ---------------------------------------------------------------------------


def test_remote_only_fleet_matches_serial():
    spec, responsive = _world()
    serial = _serial_shards(spec, responsive, 4)
    t1, addr1 = _listen_worker()
    t2, addr2 = _listen_worker()
    targets = shard_targets(spec, shards=4, seed=0)
    worker_args = (responsive, _CONFIG.batch_size, None, None)
    with Coordinator(
        worker_args, workers=2, address_book=[addr1, addr2], secret=None
    ) as coordinator:
        results = list(coordinator.run(targets))
    # The whole fleet was dialed, nothing was spawned.
    assert coordinator.telemetry["remote_connected"] == 2
    assert coordinator.telemetry["remote_fleet"] == 2
    assert coordinator._spawn_ordinal == 0
    assert coordinator.failures == 0
    assert [_result_bytes(r) for r in results] == [
        _result_bytes(r) for r in serial
    ]
    t1.join(timeout=10)
    t2.join(timeout=10)
    assert not t1.is_alive() and not t2.is_alive()


def test_mixed_spawned_and_remote_fleet_matches_serial():
    spec, responsive = _world()
    serial = _serial_shards(spec, responsive, 4)
    thread, addr = _listen_worker()
    targets = shard_targets(spec, shards=4, seed=0)
    worker_args = (responsive, _CONFIG.batch_size, None, None)
    with Coordinator(
        worker_args, workers=2, address_book=[addr], secret=None
    ) as coordinator:
        results = list(coordinator.run(targets))
    # One dialed remote plus one spawned child, one fleet.
    assert coordinator.telemetry["remote_connected"] == 1
    assert coordinator._spawn_ordinal == 1
    assert coordinator.failures == 0
    assert [_result_bytes(r) for r in results] == [
        _result_bytes(r) for r in serial
    ]
    thread.join(timeout=10)


def test_dead_book_entry_never_charges_budget():
    # An address-book entry nobody listens on is redialed, not charged:
    # the run completes on the rest of the fleet.
    spec, responsive = _world()
    serial = _serial_shards(spec, responsive, 3)
    with socket.socket() as probe:  # a port that is certainly closed
        probe.bind(("127.0.0.1", 0))
        dead = probe.getsockname()[:2]
    targets = shard_targets(spec, shards=3, seed=0)
    worker_args = (responsive, _CONFIG.batch_size, None, None)
    with Coordinator(
        worker_args, workers=2, address_book=[dead], secret=None
    ) as coordinator:
        results = list(coordinator.run(targets))
    assert coordinator.failures == 0
    assert coordinator._governor.failures == 0
    assert coordinator.telemetry["remote_connected"] == 0
    assert [_result_bytes(r) for r in results] == [
        _result_bytes(r) for r in serial
    ]


# ---------------------------------------------------------------------------
# Graceful mid-wave join
# ---------------------------------------------------------------------------


def test_late_worker_joins_mid_wave():
    # A worker whose hello arrives *after* dispatch started gets init
    # plus a shard — it is not implicitly rejected.
    spec, responsive = _world()
    serial = _serial_shards(spec, responsive, 6)
    targets = shard_targets(spec, shards=6, seed=0)
    worker_args = (responsive, _CONFIG.batch_size, None, None)
    thread, addr = _listen_worker()
    with Coordinator(
        worker_args, workers=1, address_book=None, secret=None
    ) as coordinator:
        gen = coordinator.run(targets)
        results = [next(gen)]  # dispatch is well underway
        # The fleet learns of the pre-started remote only now — the
        # redial pump dials it on the next loop turn, mid-wave.
        coordinator._remote_due[addr] = 0.0
        results.extend(gen)
    assert coordinator.telemetry["remote_connected"] == 1
    assert coordinator.failures == 0
    assert [_result_bytes(r) for r in results] == [
        _result_bytes(r) for r in serial
    ]
    thread.join(timeout=10)


# ---------------------------------------------------------------------------
# Coordinator restart against a surviving remote fleet
# ---------------------------------------------------------------------------


def test_listen_worker_serves_sequential_coordinator_sessions():
    # The listen loop survives its coordinator: a second (restarted)
    # coordinator dialing the same book gets a fresh session and
    # byte-identical results.
    spec, responsive = _world()
    serial = _serial_shards(spec, responsive, 3)
    thread, addr = _listen_worker(max_sessions=2)
    targets = shard_targets(spec, shards=3, seed=0)
    worker_args = (responsive, _CONFIG.batch_size, None, None)
    runs = []
    for _ in range(2):
        with Coordinator(
            worker_args, workers=1, address_book=[addr], secret=None
        ) as coordinator:
            runs.append(list(coordinator.run(targets)))
        assert coordinator.telemetry["remote_connected"] == 1
    for results in runs:
        assert [_result_bytes(r) for r in results] == [
            _result_bytes(r) for r in serial
        ]
    thread.join(timeout=10)
    assert not thread.is_alive()


# ---------------------------------------------------------------------------
# Authenticated handshake
# ---------------------------------------------------------------------------


def test_authenticated_fleet_matches_serial():
    spec, responsive = _world()
    serial = _serial_shards(spec, responsive, 4)
    thread, addr = _listen_worker(secret="s3cret")
    targets = shard_targets(spec, shards=4, seed=0)
    worker_args = (responsive, _CONFIG.batch_size, None, None)
    with Coordinator(
        worker_args, workers=2, address_book=[addr], secret="s3cret"
    ) as coordinator:
        results = list(coordinator.run(targets))
    # Both the dialed remote and the spawned child (which inherits the
    # secret through its environment) authenticated.
    assert coordinator.telemetry["auth_rejects"] == 0
    assert coordinator.telemetry["remote_connected"] == 1
    assert coordinator.failures == 0
    assert [_result_bytes(r) for r in results] == [
        _result_bytes(r) for r in serial
    ]
    thread.join(timeout=10)


def test_wrong_secret_remote_rejected_without_charge():
    # A remote with the wrong secret refuses the coordinator's proof
    # (mutual auth); the reject is telemetry, never budget — the run
    # completes on the spawned half of the fleet.
    spec, responsive = _world()
    serial = _serial_shards(spec, responsive, 3)
    thread, addr = _listen_worker(secret="wrong")
    targets = shard_targets(spec, shards=3, seed=0)
    worker_args = (responsive, _CONFIG.batch_size, None, None)
    with Coordinator(
        worker_args, workers=2, address_book=[addr], secret="right"
    ) as coordinator:
        results = list(coordinator.run(targets))
    assert coordinator.telemetry["auth_rejects"] == 1
    assert coordinator.telemetry["remote_connected"] == 0
    assert coordinator.failures == 0
    assert coordinator._governor.failures == 0
    assert [_result_bytes(r) for r in results] == [
        _result_bytes(r) for r in serial
    ]
    thread.join(timeout=10)


def test_auth_fail_fault_exercises_reject_path():
    # The deterministic auth_fail fault: spawn ordinal 0 presents a
    # sabotaged proof, is rejected without charging the budget, and a
    # replacement drains its work.
    spec, responsive = _world()
    serial = _serial_shards(spec, responsive, 3)
    targets = shard_targets(spec, shards=3, seed=0)
    worker_args = (responsive, _CONFIG.batch_size, None, None)
    with Coordinator(
        worker_args,
        workers=1,
        secret="hunter2",
        fault_plan="auth_fail@0",
        address_book=None,
    ) as coordinator:
        results = list(coordinator.run(targets))
    assert coordinator.telemetry["auth_rejects"] == 1
    assert coordinator.failures == 0
    assert coordinator._governor.failures == 0
    assert coordinator._spawn_ordinal == 2  # the saboteur + its spare
    assert [_result_bytes(r) for r in results] == [
        _result_bytes(r) for r in serial
    ]


def test_unauthenticated_spawned_fleet_still_works():
    # secret=None disables the exchange outright (even if the env had
    # one, the coordinator scrubs it from its children).
    spec, responsive = _world()
    serial = _serial_shards(spec, responsive, 2)
    targets = shard_targets(spec, shards=2, seed=0)
    worker_args = (responsive, _CONFIG.batch_size, None, None)
    with Coordinator(worker_args, workers=2, secret=None) as coordinator:
        results = list(coordinator.run(targets))
    assert coordinator.telemetry["auth_rejects"] == 0
    assert [_result_bytes(r) for r in results] == [
        _result_bytes(r) for r in serial
    ]


# ---------------------------------------------------------------------------
# Campaign integration: coordinator death + resume over the address book
# ---------------------------------------------------------------------------


class _Killed(RuntimeError):
    pass


FLEET_SPEC = CampaignSpec(
    preset="mini",
    waves=2,
    phi=0.9,
    shards=3,
    executor="distributed",
    reseed=ReseedPolicy("interval", interval=0),
    batch_size=1 << 12,
)


def _status_bytes(status: dict) -> bytes:
    return json.dumps(status, sort_keys=True).encode()


def test_campaign_resume_reconnects_address_book(tmp_path, monkeypatch):
    # The tentpole end-to-end: the reference campaign runs on a purely
    # spawned fleet; the address-book campaign is killed mid-wave (its
    # coordinator dies with it), resumed, re-dials the surviving remote
    # fleet, and finishes byte-identical — fleet invariance + restart
    # survival in one assertion.
    monkeypatch.delenv("REPRO_DIST_ADDRESS_BOOK", raising=False)
    monkeypatch.delenv("REPRO_DIST_SECRET", raising=False)
    reference = CampaignRunner(
        FLEET_SPEC, dataset=build_mini_dataset()
    ).run()

    thread, addr = _listen_worker(secret="fleet-key", max_sessions=None)
    monkeypatch.setenv(
        "REPRO_DIST_ADDRESS_BOOK", "%s:%d" % addr
    )
    monkeypatch.setenv("REPRO_DIST_SECRET", "fleet-key")
    directory = tmp_path / "fleet"
    runner = CampaignRunner(
        FLEET_SPEC, dataset=build_mini_dataset(), directory=directory
    )
    runner.store.write_spec(runner.spec.to_dict())
    seen = [0]

    def kill(_):
        seen[0] += 1
        if seen[0] == 2:  # mid-wave, one shard checkpointed
            raise _Killed()

    with pytest.raises(_Killed):
        runner.run(on_checkpoint=kill)
    resumed = CampaignRunner.resume(
        directory, dataset=build_mini_dataset()
    )
    assert _status_bytes(resumed.run()) == _status_bytes(reference)
    assert thread.is_alive()  # the remote fleet outlives every run
