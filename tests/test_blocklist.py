"""Unit tests for blocklist interval handling (no dataset fixture)."""

import numpy as np

from repro.bgp.table import Prefix, ip_to_int
from repro.scan.blocklist import Blocklist, default_blocklist


def test_default_blocklist_blocks_reserved_space():
    blocklist = default_blocklist()
    assert blocklist.is_blocked(ip_to_int("10.1.2.3"))
    assert blocklist.is_blocked(ip_to_int("192.168.1.1"))
    assert blocklist.is_blocked(ip_to_int("224.0.0.1"))
    assert not blocklist.is_blocked(ip_to_int("8.8.8.8"))
    assert not blocklist.is_blocked(ip_to_int("1.2.3.4"))


def test_nested_intervals_are_coalesced():
    # A /16 nested inside a /8 must not shadow the enclosing block.
    blocklist = Blocklist.from_cidrs(["10.0.0.0/8", "10.1.0.0/16"])
    assert len(blocklist) == 1
    assert blocklist.is_blocked(ip_to_int("10.5.0.0"))
    assert blocklist.is_blocked(ip_to_int("10.1.0.1"))
    assert blocklist.address_count() == Prefix.from_cidr("10.0.0.0/8").size


def test_overlapping_and_adjacent_intervals_merge():
    blocklist = Blocklist(
        starts=[100, 150, 200, 400], ends=[180, 210, 300, 500]
    )
    assert len(blocklist) == 2
    probes = np.array([99, 100, 250, 299, 300, 450, 500])
    assert blocklist.blocked_mask(probes).tolist() == [
        False, True, True, True, False, True, False,
    ]
    assert blocklist.address_count() == 200 + 100


def test_filter_removes_blocked_probes():
    blocklist = Blocklist.from_cidrs(["10.0.0.0/8"])
    probes = np.array(
        [ip_to_int("9.255.255.255"), ip_to_int("10.0.0.1"), ip_to_int("11.0.0.0")]
    )
    assert blocklist.filter(probes).tolist() == [
        ip_to_int("9.255.255.255"),
        ip_to_int("11.0.0.0"),
    ]
