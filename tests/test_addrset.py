"""Unit tests for AddressSet algebra edge cases (no dataset fixture)."""

import numpy as np
import pytest

from repro.census.addrset import AddressSet


def test_empty_set():
    empty = AddressSet()
    assert len(empty) == 0
    assert not empty
    assert 5 not in empty
    other = AddressSet([1, 2, 3])
    assert len(empty | other) == 3
    assert len(other | empty) == 3
    assert len(empty & other) == 0
    assert len(other & empty) == 0
    assert len(empty - other) == 0
    assert len(other - empty) == 3
    assert empty.intersection_count(other) == 0


def test_constructor_sorts_and_dedupes():
    s = AddressSet([5, 1, 5, 3, 1, 1])
    assert s.values.tolist() == [1, 3, 5]
    assert len(s) == 3


def test_values_read_only():
    s = AddressSet([1, 2, 3])
    with pytest.raises(ValueError):
        s.values[0] = 99


def test_disjoint_ranges():
    a = AddressSet(np.arange(0, 100))
    b = AddressSet(np.arange(1000, 1100))
    assert len(a | b) == 200
    assert len(a & b) == 0
    assert (a - b) == a
    assert a.intersection_count(b) == 0


def test_overlapping_algebra():
    a = AddressSet([1, 2, 3, 4, 5])
    b = AddressSet([4, 5, 6, 7])
    assert (a | b).values.tolist() == [1, 2, 3, 4, 5, 6, 7]
    assert (a & b).values.tolist() == [4, 5]
    assert (a - b).values.tolist() == [1, 2, 3]
    assert (b - a).values.tolist() == [6, 7]
    assert (a ^ b).values.tolist() == [1, 2, 3, 6, 7]
    assert a.intersection_count(b) == 2
    assert b.intersection_count(a) == 2


def test_membership_mask():
    s = AddressSet([10, 20, 30])
    probes = np.array([5, 10, 15, 20, 25, 30, 35], dtype=np.int64)
    assert s.membership(probes).tolist() == [
        False, True, False, True, False, True, False,
    ]
    assert 10 in s
    assert 15 not in s


def test_union_matches_numpy_reference():
    rng = np.random.default_rng(7)
    a = AddressSet(rng.integers(0, 10_000, 2_000))
    b = AddressSet(rng.integers(0, 10_000, 3_000))
    assert np.array_equal(
        (a | b).values, np.union1d(a.values, b.values)
    )
    assert np.array_equal(
        (a & b).values, np.intersect1d(a.values, b.values)
    )
    assert np.array_equal(
        (a - b).values, np.setdiff1d(a.values, b.values)
    )
    assert a.intersection_count(b) == len(
        np.intersect1d(a.values, b.values)
    )


def test_subset():
    a = AddressSet([2, 4])
    b = AddressSet([1, 2, 3, 4])
    assert a.issubset(b)
    assert not b.issubset(a)
    assert AddressSet().issubset(a)
