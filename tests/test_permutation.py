"""Unit tests for the cyclic-group permutation (no dataset fixture)."""

import numpy as np
import pytest

from repro.scan.permutation import CyclicPermutation


@pytest.mark.parametrize("n", [1, 2, 3, 5, 16, 97, 100, 1000, 1 << 12])
def test_full_cycle_covers_every_element_once(n):
    perm = CyclicPermutation(n, seed=3)
    values = np.concatenate(list(perm.batches(64)))
    assert len(values) == n
    assert np.array_equal(np.sort(values), np.arange(n))


@pytest.mark.parametrize("batch_size", [1, 7, 64, 1 << 16])
def test_batch_sizes_do_not_change_coverage(batch_size):
    perm = CyclicPermutation(500, seed=11)
    values = np.concatenate(list(perm.batches(batch_size)))
    assert np.array_equal(np.sort(values), np.arange(500))


def test_batches_respect_batch_size():
    perm = CyclicPermutation(1000, seed=0)
    assert all(len(b) <= 64 for b in perm.batches(64))


def test_seed_changes_order():
    a = np.concatenate(list(CyclicPermutation(997, seed=1).batches(256)))
    b = np.concatenate(list(CyclicPermutation(997, seed=2).batches(256)))
    assert not np.array_equal(a, b)
    assert np.array_equal(np.sort(a), np.sort(b))


def test_deterministic_for_fixed_seed():
    a = np.concatenate(list(CyclicPermutation(512, seed=9).batches(100)))
    b = np.concatenate(list(CyclicPermutation(512, seed=9).batches(100)))
    assert np.array_equal(a, b)


def test_order_is_not_sequential():
    values = np.concatenate(list(CyclicPermutation(4096, seed=5).batches()))
    assert not np.array_equal(values, np.arange(4096))
