"""Unit tests for the cyclic-group permutation (no dataset fixture)."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.scan.permutation import CyclicPermutation, _mulmod


@pytest.mark.parametrize("n", [1, 2, 3, 5, 16, 97, 100, 1000, 1 << 12])
def test_full_cycle_covers_every_element_once(n):
    perm = CyclicPermutation(n, seed=3)
    values = np.concatenate(list(perm.batches(64)))
    assert len(values) == n
    assert np.array_equal(np.sort(values), np.arange(n))


@pytest.mark.parametrize("batch_size", [1, 7, 64, 1 << 16])
def test_batch_sizes_do_not_change_coverage(batch_size):
    perm = CyclicPermutation(500, seed=11)
    values = np.concatenate(list(perm.batches(batch_size)))
    assert np.array_equal(np.sort(values), np.arange(500))


def test_batches_respect_batch_size():
    perm = CyclicPermutation(1000, seed=0)
    assert all(len(b) <= 64 for b in perm.batches(64))


def test_seed_changes_order():
    a = np.concatenate(list(CyclicPermutation(997, seed=1).batches(256)))
    b = np.concatenate(list(CyclicPermutation(997, seed=2).batches(256)))
    assert not np.array_equal(a, b)
    assert np.array_equal(np.sort(a), np.sort(b))


def test_deterministic_for_fixed_seed():
    a = np.concatenate(list(CyclicPermutation(512, seed=9).batches(100)))
    b = np.concatenate(list(CyclicPermutation(512, seed=9).batches(100)))
    assert np.array_equal(a, b)


def test_order_is_not_sequential():
    values = np.concatenate(list(CyclicPermutation(4096, seed=5).batches()))
    assert not np.array_equal(values, np.arange(4096))


def test_iter_yields_every_element_without_lists():
    perm = CyclicPermutation(300, seed=4)
    seen = list(perm)
    assert sorted(int(v) for v in seen) == list(range(300))
    assert np.array_equal(
        np.asarray(seen), np.concatenate(list(perm.batches()))
    )


def test_batches_are_independent_arrays():
    # The walk may reuse scratch buffers internally, but every yielded
    # batch must be a fresh array a caller can keep or mutate.
    perm = CyclicPermutation(1000, seed=2)
    batches = list(perm.batches(64))
    frozen = [b.copy() for b in batches]
    batches[0][:] = -1
    for later, kept in zip(batches[1:], frozen[1:]):
        assert np.array_equal(later, kept)


# ---------------------------------------------------------------------------
# Big-modulus (p > 2^31) arithmetic: the 16-bit-split _mulmod path
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.integers(min_value=0, max_value=(1 << 33) - 1),
        min_size=1,
        max_size=50,
    ),
    st.integers(min_value=0, max_value=(1 << 33) - 1),
    st.integers(min_value=(1 << 31) + 1, max_value=(1 << 33) - 1),
)
def test_mulmod_big_modulus_matches_python_bigint(values, scalar, p):
    arr = np.asarray([v % p for v in values], dtype=np.int64)
    got = _mulmod(arr, scalar, p)
    expected = [v % p * scalar % p for v in values]
    assert got.tolist() == expected


@given(
    st.lists(
        st.integers(min_value=0, max_value=(1 << 33) - 1),
        min_size=1,
        max_size=50,
    ),
    st.integers(min_value=0, max_value=(1 << 33) - 1),
    st.integers(min_value=(1 << 31) + 1, max_value=(1 << 33) - 1),
)
def test_mulmod_big_modulus_out_buffers_match(values, scalar, p):
    arr = np.asarray([v % p for v in values], dtype=np.int64)
    out = np.empty_like(arr)
    tmp = np.empty_like(arr)
    got = _mulmod(arr, scalar, p, out=out, tmp=tmp)
    assert got is out
    assert out.tolist() == _mulmod(arr, scalar, p).tolist()


def test_permutation_beyond_int32_space():
    """End-to-end walk sampling over n > 2^31 (the big-modulus regime)."""
    n = (1 << 31) + 1000
    perm = CyclicPermutation(n, seed=7)
    assert perm.prime > 1 << 31
    p, g, start = perm.prime, perm._gen, perm._start

    sampled = []
    for batch in perm.batches(1 << 12):
        sampled.append(batch)
        if len(sampled) == 4:
            break
    sampled = np.concatenate(sampled)
    assert np.all(sampled >= 0) and np.all(sampled < n)
    assert len(np.unique(sampled)) == len(sampled)  # no repeats

    # Cross-check against the obviously-correct Python big-int walk.
    expected, element = [], start
    while len(expected) < len(sampled):
        if element <= n:
            expected.append(element - 1)
        element = element * g % p
    assert sampled.tolist() == expected
