"""Shared test fixtures: a hand-built miniature census dataset.

The orchestrator suites need whole campaigns to run in milliseconds, so
they use a four-prefix world with a few thousand hosts instead of a
generated preset — built directly from the loader's dataclasses, which
also exercises the dataset API surface without the synth generator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bgp.table import Prefix, RoutingTable
from repro.census.loader import (
    CensusDataset,
    Snapshot,
    SnapshotSeries,
    Topology,
)


def build_mini_dataset(
    seed: int = 7, months: int = 4, hosts: int = 3000
) -> CensusDataset:
    """A tiny deterministic world: two dense prefixes, two sparse ones."""
    prefixes = [
        Prefix.from_cidr(c)
        for c in ("1.0.0.0/18", "2.4.0.0/16", "5.5.0.0/17", "9.9.9.0/24")
    ]
    table = RoutingTable(prefixes)
    partition = table.partition("less-specific")
    rng = np.random.default_rng(seed)
    weights = np.array([5.0, 0.5, 0.2, 8.0])
    probs = weights / weights.sum()
    snapshots = []
    for month in range(months):
        counts = rng.multinomial(hosts, probs)
        addresses = np.unique(
            np.concatenate(
                [
                    partition.starts[i]
                    + rng.integers(0, partition.sizes[i], int(c))
                    for i, c in enumerate(counts)
                ]
            )
        )
        snapshots.append(
            Snapshot(
                addresses,
                np.arange(len(addresses)),
                np.zeros(len(addresses), dtype=np.int8),
                month=month,
            )
        )
    series = {"http": SnapshotSeries("http", snapshots)}
    asns = {p: 64512 + i for i, p in enumerate(prefixes)}
    topology = Topology(table, asns, [(1 << 24, 10 << 24)])
    return CensusDataset("mini", seed, topology, series)


@pytest.fixture
def mini_dataset() -> CensusDataset:
    return build_mini_dataset()
