"""Chaos matrix: executor invariance under every deterministic fault.

The acceptance bar for the fault plane is absolute: under EVERY fault
plan — worker crashes, hangs rescued by speculative re-dispatch,
corrupt/truncated/oversized frames, mid-result deaths, crash-looping
respawns — the distributed executor's merged results and a campaign's
resume artifacts must be byte-identical to an undisturbed serial run.
Anything else means retries perturb science.

Pure plan/backoff/deadline arithmetic is covered in
``tests/test_faults.py``; this file spends real processes.
"""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import build_mini_dataset
from repro.orchestrator import CampaignRunner, CampaignSpec, ReseedPolicy
import repro.orchestrator.campaign as campaign_mod
import repro.scan.distributed as distributed
from repro.scan.distributed import Coordinator
from repro.scan.engine import EngineConfig
from repro.scan.executors import (
    ExecutorFailure,
    register_executor,
    serial_executor,
)
from repro.scan.faults import ENV_FAULT_PLAN, WORKER_FAULT_KINDS, FaultPlan
from repro.scan.sharded import run_sharded, shard_targets

_CONFIG = EngineConfig(batch_size=1 << 11)

#: Tight enough that a hang is rescued in well under a second, loose
#: enough that honest shards on a loaded CI box never trip it.
_DEADLINE = 0.5


def _world():
    rng = np.random.default_rng(11)
    responsive = np.unique(rng.integers(0, 300000, 6000))
    return 300000, responsive


def _result_bytes(result) -> bytes:
    return repr(dataclasses.astuple(result)).encode()


def _serial_shards(spec, responsive, shards):
    run = run_sharded(
        spec, responsive, shards=shards, executor="serial", config=_CONFIG
    )
    return [_result_bytes(r) for r in run.shard_results]


def _run_under_plan(plan, shards=4, workers=2, **kwargs):
    """Drive the coordinator directly under ``plan``; return results."""
    spec, responsive = _world()
    targets = shard_targets(spec, shards=shards, seed=0)
    worker_args = (responsive, _CONFIG.batch_size, None, None)
    kwargs.setdefault("shard_deadline", _DEADLINE)
    kwargs.setdefault("respawn_base", 0.01)
    kwargs.setdefault("timeout", 60.0)
    with Coordinator(
        worker_args,
        workers=workers,
        fault_plan=plan,
        **kwargs,
    ) as coordinator:
        results = [_result_bytes(r) for r in coordinator.run(targets)]
    return results, coordinator


# ---------------------------------------------------------------------------
# The matrix: every fault kind, one at a time
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", WORKER_FAULT_KINDS)
def test_every_worker_fault_kind_preserves_results(kind):
    spec, responsive = _world()
    plan = f"{kind}@1:delay=0.2" if kind == "stall" else f"{kind}@1"
    results, coordinator = _run_under_plan(plan)
    assert coordinator.telemetry["faults_armed"] >= 1
    assert results == _serial_shards(spec, responsive, 4)


def test_spawn_crash_fault_preserves_results():
    spec, responsive = _world()
    # Ordinals 0-1 are the initial fleet; kill replacement ordinal 2
    # after a crash forces a respawn.
    results, coordinator = _run_under_plan("crash@0,spawn_crash@2")
    assert coordinator.telemetry["respawns"] >= 1
    assert results == _serial_shards(spec, responsive, 4)


# ---------------------------------------------------------------------------
# Hypothesis: random small plans never perturb the merge
# ---------------------------------------------------------------------------


_SPECS = st.builds(
    lambda kind, shard: f"{kind}@{shard}"
    + (":delay=0.1" if kind == "stall" else ""),
    st.sampled_from(WORKER_FAULT_KINDS),
    st.integers(min_value=0, max_value=2),
)


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(entries=st.lists(_SPECS, min_size=1, max_size=3))
def test_random_fault_plans_are_invariant(entries):
    spec, responsive = _world()
    plan = FaultPlan.parse(",".join(entries))
    results, _ = _run_under_plan(plan, shards=3)
    assert results == _serial_shards(spec, responsive, 3)


# ---------------------------------------------------------------------------
# Deadlines, speculation, duplicates
# ---------------------------------------------------------------------------


def test_hang_is_rescued_by_speculation():
    spec, responsive = _world()
    results, coordinator = _run_under_plan("hang@0", timeout=45.0)
    # The hung attempt never answered; a speculative copy on another
    # worker did — long before the 45s global timeout could.
    assert coordinator.telemetry["speculative_requeues"] >= 1
    assert results == _serial_shards(spec, responsive, 4)


def test_stalled_worker_loses_the_race_cleanly():
    spec, responsive = _world()
    # Shard 0 stalls well past its deadline, so a second attempt races
    # it; whichever result lands second is discarded unread.
    results, coordinator = _run_under_plan(
        "stall@0:delay=2", shards=4, timeout=45.0
    )
    assert coordinator.telemetry["speculative_requeues"] >= 1
    assert results == _serial_shards(spec, responsive, 4)


def test_deadline_disabled_leaves_slow_workers_alone():
    spec, responsive = _world()
    results, coordinator = _run_under_plan(
        "stall@1:delay=0.3", shard_deadline=None
    )
    assert coordinator.telemetry["speculative_requeues"] == 0
    assert coordinator.telemetry["deadline_kills"] == 0
    assert results == _serial_shards(spec, responsive, 4)


# ---------------------------------------------------------------------------
# Graceful degradation and the failure budget
# ---------------------------------------------------------------------------


def test_crash_loop_degrades_to_survivors():
    spec, responsive = _world()
    # One worker dies mid-shard; every replacement dies at exec.  The
    # crash-loop detector must halt respawning and finish the wave on
    # the lone survivor instead of thrashing forever.  The universal
    # stall keeps the wave alive long enough for the detector to see
    # three consecutive spawn-side deaths before the survivor drains
    # everything.
    results, coordinator = _run_under_plan(
        "crash@1,stall@*:delay=0.3:attempts=*,spawn_crash@2:attempts=*",
        shards=6,
        crash_loop_threshold=3,
        timeout=60.0,
    )
    assert coordinator.telemetry["degraded"] is True
    assert coordinator.telemetry["survivors"] >= 1
    assert results == _serial_shards(spec, responsive, 6)


def test_no_survivors_aborts_with_stderr_tails():
    spec, responsive = _world()
    targets = shard_targets(spec, shards=2, seed=0)
    worker_args = (responsive, _CONFIG.batch_size, None, None)
    with Coordinator(
        worker_args,
        workers=1,
        fault_plan="crash@0:attempts=*,crash@1:attempts=*,"
        "spawn_crash@1:attempts=*",
        respawn_base=0.01,
        crash_loop_threshold=3,
        timeout=30.0,
    ) as coordinator:
        with pytest.raises(ExecutorFailure, match="worker failures") as info:
            list(coordinator.run(targets))
    message = str(info.value)
    # The satellite contract: the abort carries bounded per-worker
    # stderr tails, and the injected deaths announced themselves there.
    assert "worker stderr tails" in message
    assert "injected fault" in message


def test_spawn_oserror_counts_against_budget(monkeypatch):
    spec, responsive = _world()
    real_popen = distributed.subprocess.Popen
    blown = []

    def flaky_popen(*args, **kwargs):
        if not blown:
            blown.append(True)
            raise OSError("exec scheduler refused")
        return real_popen(*args, **kwargs)

    monkeypatch.setattr(distributed.subprocess, "Popen", flaky_popen)
    results, coordinator = _run_under_plan(None, shards=3)
    assert coordinator.failures >= 1
    assert results == _serial_shards(spec, responsive, 3)


# ---------------------------------------------------------------------------
# Campaigns under fault plans: resume stays byte-identical
# ---------------------------------------------------------------------------


class _Killed(RuntimeError):
    pass


DIST_SPEC = CampaignSpec(
    preset="mini",
    waves=2,
    phi=0.9,
    shards=3,
    executor="distributed",
    reseed=ReseedPolicy("interval", interval=0),
    batch_size=1 << 12,
)


def _status_bytes(status: dict) -> bytes:
    return json.dumps(status, sort_keys=True).encode()


def test_campaign_kill_and_resume_under_fault_plan(tmp_path, monkeypatch):
    """SIGTERM + node chaos together: still byte-identical to calm."""
    monkeypatch.delenv(ENV_FAULT_PLAN, raising=False)
    reference = CampaignRunner(
        DIST_SPEC, dataset=build_mini_dataset()
    ).run()
    serial = CampaignRunner(
        dataclasses.replace(DIST_SPEC, executor="serial"),
        dataset=build_mini_dataset(),
    ).run()

    monkeypatch.setenv(ENV_FAULT_PLAN, "crash@1,corrupt@0,mid_result@2")
    directory = tmp_path / "chaos"
    runner = CampaignRunner(
        DIST_SPEC, dataset=build_mini_dataset(), directory=directory
    )
    runner.store.write_spec(runner.spec.to_dict())
    seen = [0]

    def kill(_):
        seen[0] += 1
        if seen[0] == 2:  # mid-wave, one shard checkpointed
            raise _Killed()

    with pytest.raises(_Killed):
        runner.run(on_checkpoint=kill)
    resumed = CampaignRunner.resume(
        directory, dataset=build_mini_dataset()
    )
    status = resumed.run()
    assert _status_bytes(status) == _status_bytes(reference)
    assert status["waves"] == serial["waves"]
    assert status["totals"] == serial["totals"]


# ---------------------------------------------------------------------------
# Wave-level retry policy
# ---------------------------------------------------------------------------


def _flaky_serial(cell):
    """A serial executor whose infrastructure 'collapses' on cue.

    ``cell["collapses"]`` counts down: while positive, each wave
    attempt yields one shard (so the retry genuinely resumes from a
    checkpoint, not from scratch) and then raises
    :class:`ExecutorFailure`.
    """

    def executor(targets, worker_args, wrap_targets=None):
        emitted = 0
        for result in serial_executor(
            targets, worker_args, wrap_targets=wrap_targets
        ):
            yield result
            emitted += 1
            if cell["collapses"] > 0 and emitted == 1:
                cell["collapses"] -= 1
                raise ExecutorFailure("injected infrastructure collapse")

    return executor


@pytest.fixture
def flaky_executor():
    from repro.scan.executors import _REGISTRY

    cell = {"collapses": 0}
    register_executor("flaky-serial")(_flaky_serial(cell))
    try:
        yield cell
    finally:
        del _REGISTRY["flaky-serial"]


FLAKY_SPEC = dataclasses.replace(
    DIST_SPEC, executor="flaky-serial", wave_retries=2,
    wave_retry_backoff=0.01,
)


def test_wave_retry_recovers_and_matches_serial(flaky_executor):
    serial = CampaignRunner(
        dataclasses.replace(DIST_SPEC, executor="serial"),
        dataset=build_mini_dataset(),
    ).run()
    flaky_executor["collapses"] = 2
    status = CampaignRunner(
        FLAKY_SPEC, dataset=build_mini_dataset()
    ).run()
    assert flaky_executor["collapses"] == 0
    assert status["waves"] == serial["waves"]
    assert status["totals"] == serial["totals"]


def test_wave_retry_backoff_is_deterministic(flaky_executor, monkeypatch):
    slept = []
    monkeypatch.setattr(
        campaign_mod, "_retry_sleep", lambda s: slept.append(s)
    )
    flaky_executor["collapses"] = 2
    CampaignRunner(FLAKY_SPEC, dataset=build_mini_dataset()).run()
    # backoff_delay(1, 0.01, cap), backoff_delay(2, 0.01, cap)
    assert slept == [0.01, 0.02]


def test_wave_retry_budget_exhaustion_raises(flaky_executor, tmp_path):
    flaky_executor["collapses"] = 5
    directory = tmp_path / "exhausted"
    runner = CampaignRunner(
        dataclasses.replace(FLAKY_SPEC, wave_retries=1),
        dataset=build_mini_dataset(),
        directory=directory,
    )
    runner.store.write_spec(runner.spec.to_dict())
    with pytest.raises(ExecutorFailure):
        runner.run()
    # The spent attempt budget is campaign state, checkpointed so a
    # resume replays the same remaining budget.
    manifest, _ = runner.store.load()
    assert manifest["wave_attempts"] == 2  # retries=1 -> 2 attempts
    progress = json.loads((directory / "progress.json").read_text())
    assert progress["wave_retries_used"] >= 2


def test_wave_retry_state_survives_resume(flaky_executor, tmp_path):
    serial = CampaignRunner(
        dataclasses.replace(DIST_SPEC, executor="serial"),
        dataset=build_mini_dataset(),
    ).run()
    flaky_executor["collapses"] = 1
    directory = tmp_path / "retry-resume"
    runner = CampaignRunner(
        dataclasses.replace(FLAKY_SPEC, wave_retries=0),
        dataset=build_mini_dataset(),
        directory=directory,
    )
    runner.store.write_spec(runner.spec.to_dict())
    with pytest.raises(ExecutorFailure):
        runner.run()
    # The collapse is over; the resumed campaign finishes the wave from
    # its checkpoint and the final artifacts match the serial baseline
    # exactly (wave_attempts resets on wave completion).
    status = CampaignRunner.resume(
        directory, dataset=build_mini_dataset()
    ).run()
    assert status["waves"] == serial["waves"]
    assert status["totals"] == serial["totals"]
    manifest, _ = runner.store.load()
    assert manifest["wave_attempts"] == 0
