"""ScanEngine batching and blocklist edge cases (no dataset fixture)."""

import numpy as np
import pytest

from repro.census.addrset import AddressSet
from repro.scan.blocklist import Blocklist
from repro.scan.engine import EngineConfig, ScanEngine, ScanResult
from repro.scan.targets import PrefixTargets, RangeTargets
from repro.bgp.table import Prefix


class _ListTargets:
    """Fixed batches, for driving the engine with exact boundaries."""

    def __init__(self, arrays):
        self._arrays = [np.asarray(a, dtype=np.int64) for a in arrays]

    def batches(self, batch_size):
        for array in self._arrays:
            for lo in range(0, len(array), batch_size):
                yield array[lo : lo + batch_size]


def test_empty_target_stream():
    result = ScanEngine().run(_ListTargets([]), AddressSet([1, 2, 3]))
    assert result == ScanResult(0, 0, 0, 0, None)
    assert result.hitrate == 0.0


def test_empty_responsive_set():
    result = ScanEngine().run(
        _ListTargets([np.arange(100)]), AddressSet()
    )
    assert result.probes_sent == 100
    assert result.responses == 0
    assert result.hitrate == 0.0


@pytest.mark.parametrize("n", [1, 63, 64, 65, 128])
def test_batch_boundary_sizes(n):
    """Streams at, below, and above the batch size count identically."""
    engine = ScanEngine(EngineConfig(batch_size=64))
    result = engine.run(RangeTargets(n, seed=5), AddressSet(np.arange(0, n, 2)))
    assert result.probes_sent == n
    assert result.responses == len(range(0, n, 2))
    assert result.batches >= -(-n // 64)


def test_blocklist_drops_and_accounts():
    blocklist = Blocklist([10], [20])
    engine = ScanEngine(EngineConfig(batch_size=8), blocklist)
    result = engine.run(
        _ListTargets([np.arange(30)]), AddressSet(np.arange(30))
    )
    assert result.blocked == 10
    assert result.probes_sent == 20
    assert result.responses == 20


def test_fully_blocked_batch():
    blocklist = Blocklist([0], [100])
    engine = ScanEngine(EngineConfig(batch_size=16), blocklist)
    result = engine.run(
        _ListTargets([np.arange(32)]), AddressSet(np.arange(32))
    )
    assert result.probes_sent == 0
    assert result.responses == 0
    assert result.blocked == 32
    assert result.batches == 2
    assert result.hitrate == 0.0


def test_prefix_targets_visit_prefix_space_exactly_once():
    prefixes = [
        Prefix.from_cidr("10.0.0.0/26"),
        Prefix.from_cidr("10.0.1.0/28"),
    ]
    targets = PrefixTargets(prefixes, seed=2)
    assert targets.probe_count() == 64 + 16
    values = np.sort(np.concatenate(list(targets.batches(16))))
    expected = np.concatenate(
        [np.arange(p.start, p.end) for p in prefixes]
    )
    assert np.array_equal(values, expected)


def test_engine_accepts_raw_arrays_as_responsive():
    result = ScanEngine().run(
        _ListTargets([np.arange(10)]), np.array([3, 1, 7])
    )
    assert result.responses == 3
    assert result.hitrate == pytest.approx(0.3)


def test_fused_engine_matches_filter_then_membership_reference():
    """Differential: the fused sorted pass == the naive filter+membership.

    The engine sorts batches, short-circuits untouched blocklist spans,
    and flips membership direction when the truth sliver is sparse —
    every one of those shortcuts must reproduce the reference
    semantics (drop blocked probes, then count responsive members)
    exactly, across randomized targets/truth/blocklists/batch sizes.
    """
    rng = np.random.default_rng(12)
    for trial in range(60):
        space = int(rng.integers(100, 5000))
        n = int(rng.integers(1, space))
        # Odd trials draw with replacement: duplicate probes of one
        # responsive address must each count as a response.
        targets = rng.choice(
            space, size=n, replace=bool(trial % 2)
        ).astype(np.int64)
        truth = AddressSet(
            rng.choice(
                space, size=int(rng.integers(0, space)), replace=False
            )
        )
        n_blocks = int(rng.integers(0, 4))
        block_starts = rng.integers(0, space, size=n_blocks)
        block_ends = block_starts + rng.integers(1, 200, size=n_blocks)
        blocklist = (
            Blocklist(block_starts, block_ends) if n_blocks else None
        )
        batch_size = int(rng.integers(1, 300))
        engine = ScanEngine(EngineConfig(batch_size=batch_size), blocklist)
        got = engine.run(_ListTargets([targets]), truth)

        allowed = (
            targets
            if blocklist is None
            else targets[blocklist.allowed_mask(targets)]
        )
        assert got.probes_sent == len(allowed), trial
        assert got.blocked == len(targets) - len(allowed), trial
        assert got.responses == int(truth.membership(allowed).sum()), trial
