"""Fault plane unit tests: plan syntax, matching, recovery arithmetic.

Everything here is pure — no sockets, no subprocesses, fake clocks
only.  The process-level chaos matrix that *uses* these plans lives in
``tests/test_chaos.py``.
"""

import pytest

import repro.env as env
from repro.scan.faults import (
    FAULT_KINDS,
    WORKER_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    RespawnGovernor,
    backoff_delay,
    deadline_action,
)


# ---------------------------------------------------------------------------
# Plan syntax
# ---------------------------------------------------------------------------


class TestPlanParsing:
    def test_single_entry_defaults(self):
        plan = FaultPlan.parse("crash@2")
        assert plan.specs == (FaultSpec("crash", shard=2),)

    def test_full_entry(self):
        (spec,) = FaultPlan.parse("stall@1:attempts=3:delay=2.5").specs
        assert spec == FaultSpec(
            "stall", shard=1, attempts=3, delay=2.5
        )

    def test_wildcard_shard_and_unbounded_attempts(self):
        (spec,) = FaultPlan.parse("hang@*:attempts=*").specs
        assert spec.shard is None and spec.attempts is None

    def test_separators_and_whitespace(self):
        plan = FaultPlan.parse(" crash@0 ; hang@1 , stall@2:delay=1 ")
        assert [s.kind for s in plan.specs] == ["crash", "hang", "stall"]

    def test_empty_and_none_mean_no_faults(self):
        assert not FaultPlan.parse(None)
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse("  ,  ; ")

    def test_roundtrip_through_string(self):
        text = "crash@2,hang@1:attempts=*,stall@0:delay=1.5,spawn_crash@4:attempts=2"
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.to_string()) == plan
        assert plan.to_string() == text

    @pytest.mark.parametrize(
        "bad",
        [
            "crash",                # no @shard
            "crash@x",              # non-integer shard
            "tornado@1",            # unknown kind
            "crash@1:attempts",     # option without value
            "crash@1:color=red",    # unknown option
            "crash@-1",             # negative shard
            "crash@1:attempts=0",   # zero attempts
            "spawn_crash@*",        # spawn faults need an ordinal
        ],
    )
    def test_bad_entries_raise(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_every_kind_parses(self):
        for kind in WORKER_FAULT_KINDS:
            assert FaultPlan.parse(f"{kind}@0")
        assert FaultPlan.parse("spawn_crash@0")
        assert FaultPlan.parse("auth_fail@0")

    def test_auth_fail_needs_explicit_ordinal(self):
        with pytest.raises(ValueError, match="spawn ordinal"):
            FaultPlan.parse("auth_fail@*")

    def test_legacy_crash_shards(self):
        plan = FaultPlan.crash_shards({3, 1})
        assert plan.to_string() == "crash@1,crash@3"
        loop = FaultPlan.crash_shards({0}, every_attempt=True)
        assert loop.specs[0].attempts is None


# ---------------------------------------------------------------------------
# Matching
# ---------------------------------------------------------------------------


class TestMatching:
    def test_first_attempt_only_by_default(self):
        plan = FaultPlan.parse("crash@2")
        assert plan.shard_fault(2, 0) is not None
        assert plan.shard_fault(2, 1) is None
        assert plan.shard_fault(1, 0) is None

    def test_bounded_attempts(self):
        plan = FaultPlan.parse("crash@0:attempts=2")
        assert plan.shard_fault(0, 0) and plan.shard_fault(0, 1)
        assert plan.shard_fault(0, 2) is None

    def test_unbounded_attempts_poison_shard(self):
        plan = FaultPlan.parse("crash@0:attempts=*")
        assert all(plan.shard_fault(0, k) for k in range(50))

    def test_wildcard_shard(self):
        plan = FaultPlan.parse("stall@*:delay=1")
        assert plan.shard_fault(0, 0) and plan.shard_fault(17, 0)

    def test_first_match_wins(self):
        plan = FaultPlan.parse("crash@1,hang@1:attempts=*")
        assert plan.shard_fault(1, 0).kind == "crash"
        assert plan.shard_fault(1, 1).kind == "hang"

    def test_spawn_fault_by_ordinal(self):
        plan = FaultPlan.parse("spawn_crash@3:attempts=2")
        assert plan.spawn_fault(2) is None
        assert plan.spawn_fault(3) and plan.spawn_fault(4)
        assert plan.spawn_fault(5) is None

    def test_spawn_faults_never_match_shards_and_vice_versa(self):
        plan = FaultPlan.parse("spawn_crash@0:attempts=*,crash@0")
        assert plan.shard_fault(0, 0).kind == "crash"
        assert plan.spawn_fault(0).kind == "spawn_crash"

    def test_auth_fail_matches_spawn_ordinals_like_spawn_crash(self):
        plan = FaultPlan.parse("auth_fail@1:attempts=2")
        assert plan.spawn_fault(0) is None
        assert plan.spawn_fault(1).kind == "auth_fail"
        assert plan.spawn_fault(2).kind == "auth_fail"
        assert plan.spawn_fault(3) is None
        assert plan.shard_fault(1, 0) is None

    def test_merged_with_preserves_order(self):
        merged = FaultPlan.parse("crash@1").merged_with(
            FaultPlan.parse("hang@1")
        )
        assert merged.shard_fault(1, 0).kind == "crash"


# ---------------------------------------------------------------------------
# Recovery arithmetic (deterministic clocks)
# ---------------------------------------------------------------------------


class TestBackoff:
    def test_no_failures_no_delay(self):
        assert backoff_delay(0, 0.05, 2.0) == 0.0
        assert backoff_delay(-1, 0.05, 2.0) == 0.0

    def test_exponential_doubling(self):
        delays = [backoff_delay(k, 0.05, 100.0) for k in range(1, 6)]
        assert delays == [0.05, 0.1, 0.2, 0.4, 0.8]

    def test_cap(self):
        assert backoff_delay(30, 0.05, 2.0) == 2.0

    def test_zero_base_disables(self):
        assert backoff_delay(5, 0.0, 2.0) == 0.0


class TestDeadlineAction:
    def test_disabled_deadline_is_always_ok(self):
        assert deadline_action(1e9, 0.0, None) == "ok"

    def test_within_deadline(self):
        assert deadline_action(10.0, 9.5, 1.0) == "ok"
        assert deadline_action(11.0, 10.0, 1.0) == "ok"  # exactly at

    def test_past_deadline_speculates(self):
        assert deadline_action(11.5, 10.0, 1.0) == "speculate"

    def test_far_past_deadline_kills(self):
        assert deadline_action(13.01, 10.0, 1.0) == "kill"
        assert deadline_action(12.99, 10.0, 1.0) == "speculate"

    def test_custom_hard_kill_factor(self):
        assert deadline_action(12.5, 10.0, 1.0, hard_kill_factor=2.0) == "kill"


class TestRespawnGovernor:
    def test_success_resets_consecutive_failures(self):
        gov = RespawnGovernor(base=0.05, crash_loop_threshold=3)
        gov.record_failure()
        gov.record_failure()
        assert not gov.in_crash_loop
        gov.record_success()
        assert gov.failures == 0
        gov.record_failure()
        assert not gov.in_crash_loop

    def test_crash_loop_trips_at_threshold(self):
        gov = RespawnGovernor(crash_loop_threshold=3)
        for _ in range(3):
            assert not gov.in_crash_loop
            gov.record_failure()
        assert gov.in_crash_loop

    def test_delay_follows_backoff(self):
        gov = RespawnGovernor(base=0.1, cap=0.25, crash_loop_threshold=99)
        assert gov.delay() == 0.0
        gov.record_failure()
        assert gov.delay() == 0.1
        gov.record_failure()
        assert gov.delay() == 0.2
        gov.record_failure()
        assert gov.delay() == 0.25  # capped

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RespawnGovernor(crash_loop_threshold=0)


# ---------------------------------------------------------------------------
# Env knobs
# ---------------------------------------------------------------------------


class TestEnvKnobs:
    def test_fault_plan_from_env(self, monkeypatch):
        monkeypatch.setenv(env.ENV_FAULT_PLAN, "crash@1,hang@2")
        plan = env.fault_plan()
        assert [s.kind for s in plan.specs] == ["crash", "hang"]

    def test_fault_plan_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(env.ENV_FAULT_PLAN, "crash@1")
        assert env.fault_plan("hang@0").specs[0].kind == "hang"
        passthrough = FaultPlan.parse("stall@0")
        assert env.fault_plan(passthrough) is passthrough

    def test_fault_plan_default_empty(self, monkeypatch):
        monkeypatch.delenv(env.ENV_FAULT_PLAN, raising=False)
        assert not env.fault_plan()

    def test_bad_fault_plan_names_source(self, monkeypatch):
        monkeypatch.setenv(env.ENV_FAULT_PLAN, "tornado@1")
        with pytest.raises(ValueError, match=env.ENV_FAULT_PLAN):
            env.fault_plan()

    def test_shard_deadline_default_and_disable(self, monkeypatch):
        monkeypatch.delenv(env.ENV_DIST_SHARD_DEADLINE, raising=False)
        assert env.dist_shard_deadline() == 30.0
        assert env.dist_shard_deadline(0) is None
        monkeypatch.setenv(env.ENV_DIST_SHARD_DEADLINE, "2.5")
        assert env.dist_shard_deadline() == 2.5

    def test_shard_deadline_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(env.ENV_DIST_SHARD_DEADLINE, "soon")
        with pytest.raises(ValueError, match="shard deadline"):
            env.dist_shard_deadline()
        with pytest.raises(ValueError, match="shard deadline"):
            env.dist_shard_deadline(-1)

    def test_respawn_base_and_crash_loop(self, monkeypatch):
        monkeypatch.setenv(env.ENV_DIST_RESPAWN_BASE, "0.2")
        assert env.dist_respawn_base() == 0.2
        monkeypatch.setenv(env.ENV_DIST_CRASH_LOOP, "5")
        assert env.dist_crash_loop_threshold() == 5
        with pytest.raises(ValueError, match="crash-loop"):
            env.dist_crash_loop_threshold(0)

    def test_all_kinds_documented_in_module(self):
        import repro.scan.faults as faults

        for kind in FAULT_KINDS:
            assert kind in faults.__doc__
