"""The observability plane: tracer, metrics, schema, report — and the
wall-clock-side contract.

The load-bearing property: ``REPRO_OBS`` never touches deterministic
state.  A campaign run with observability off, on, or toggled between a
kill and its resume produces byte-identical ``status.json`` and
``checkpoint.npz`` — including the distributed executor under an
injected fault plan.
"""

import json

import pytest

from conftest import build_mini_dataset
from repro import obs
from repro.obs.events import NullTracer, Tracer
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import format_event, load_rollup, render_report
from repro.obs.schema import validate_events, validate_file
from repro.orchestrator import (
    CampaignRunner,
    CampaignSpec,
    ReseedPolicy,
)
from repro.orchestrator.campaign import PROGRESS_KEYS


class _Killed(RuntimeError):
    """Raised by the checkpoint hook to simulate a kill at a boundary."""


SPEC = CampaignSpec(
    preset="mini",
    waves=2,
    phi=0.9,
    shards=3,
    executor="serial",
    reseed=ReseedPolicy("interval", interval=2),
    batch_size=1 << 12,
)


def _run(spec, directory, on_checkpoint=None):
    runner = CampaignRunner(
        spec, dataset=build_mini_dataset(), directory=directory
    )
    runner.store.write_spec(runner.spec.to_dict())
    runner.run(on_checkpoint=on_checkpoint)
    return runner


def _deterministic_bytes(directory):
    from repro.orchestrator.checkpoint import CheckpointStore

    status = json.loads((directory / "status.json").read_text())
    return (
        json.dumps(status, sort_keys=True).encode(),
        CheckpointStore(directory).checkpoint_path.read_bytes(),
    )


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_envelope_nesting_and_schema(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with Tracer(path) as tracer:
            campaign = tracer.begin(
                "campaign", name="x", waves=1, executor="serial"
            )
            tracer.current = campaign
            wave = tracer.begin("wave", wave=0, month=0)
            tracer.point("checkpoint", wave=0, shard=1, parent=wave)
            tracer.end("wave", wave)
            tracer.current = None
            tracer.end("campaign", campaign)
        lines = path.read_text().splitlines()
        assert validate_events(lines) == []
        records = [json.loads(line) for line in lines]
        assert [r["ev"] for r in records] == [
            "begin", "begin", "point", "end", "end",
        ]
        # The wave span nested under `current` implicitly; the point
        # under its explicit parent.
        assert records[1]["parent"] == records[0]["span"]
        assert records[2]["parent"] == records[1]["span"]
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert len({r["run"] for r in records}) == 1

    def test_resume_appends_under_fresh_run_id(self, tmp_path):
        path = tmp_path / "events.jsonl"
        for _ in range(2):
            with Tracer(path) as tracer:
                span = tracer.begin("campaign", name="x", waves=1,
                                    executor="serial")
                tracer.end("campaign", span)
        lines = path.read_text().splitlines()
        assert validate_events(lines) == []
        assert len({json.loads(line)["run"] for line in lines}) == 2

    def test_emit_after_close_is_a_noop(self, tmp_path):
        tracer = Tracer(tmp_path / "events.jsonl")
        tracer.close()
        assert tracer.point("checkpoint", wave=0, shard=0) is not None
        assert tracer.emitted == 0

    def test_null_tracer_returns_none(self):
        tracer = NullTracer()
        assert tracer.begin("wave", wave=0, month=0) is None
        assert tracer.point("checkpoint", wave=0, shard=0) is None
        assert tracer.end("wave", None) is None
        assert tracer.current is None


class TestSchemaValidator:
    def _valid_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with Tracer(path) as tracer:
            span = tracer.begin("campaign", name="x", waves=1,
                                executor="serial")
            tracer.end("campaign", span)
        return path.read_text().splitlines()

    def test_unknown_type_rejected(self, tmp_path):
        lines = self._valid_lines(tmp_path)
        record = json.loads(lines[0])
        record["type"] = "mystery"
        assert validate_events([json.dumps(record)])

    def test_seq_regression_rejected(self, tmp_path):
        lines = self._valid_lines(tmp_path)
        first, second = (json.loads(line) for line in lines)
        second["seq"] = first["seq"]
        errors = validate_events(
            [json.dumps(first), json.dumps(second)]
        )
        assert any("seq" in e for e in errors)

    def test_missing_required_data_key_rejected(self, tmp_path):
        lines = self._valid_lines(tmp_path)
        record = json.loads(lines[0])
        del record["data"]["waves"]
        assert validate_events([json.dumps(record)])

    def test_unclosed_span_is_not_an_error(self, tmp_path):
        # A killed campaign legitimately leaves spans open.
        lines = self._valid_lines(tmp_path)
        assert validate_events(lines[:1]) == []

    def test_garbage_line_rejected(self):
        assert validate_events(["this is not json"])


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        registry.gauge("b").set(2.5)
        for value in (0.3, 0.4, 3.0):
            registry.histogram("c").observe(value)
        snapshot = registry.snapshot()
        assert snapshot["a"] == {"kind": "counter", "value": 5}
        assert snapshot["b"] == {"kind": "gauge", "value": 2.5}
        hist = snapshot["c"]
        assert hist["count"] == 3
        assert hist["min"] == 0.3 and hist["max"] == 3.0
        assert hist["buckets"] == {"0.5": 2, "4.0": 1}
        # The snapshot is strict JSON.
        json.dumps(snapshot, allow_nan=False)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="x"):
            registry.gauge("x")

    def test_fold_counts(self):
        registry = MetricsRegistry()
        registry.fold_counts(
            "t", {"n": 2, "flag": True, "label": "skip", "none": None}
        )
        registry.fold_counts("t", {"n": 3, "flag": False})
        snapshot = registry.snapshot()
        assert snapshot["t.n"]["value"] == 5
        assert snapshot["t.flag"]["value"] == 1
        assert "t.label" not in snapshot


class TestMergeTelemetry:
    def test_numeric_add_bool_count_sample_latest(self):
        totals = {}
        obs.merge_telemetry(
            totals, {"failures": 2, "degraded": True, "survivors": 4}
        )
        obs.merge_telemetry(
            totals, {"failures": 1, "degraded": False, "survivors": 3}
        )
        assert totals == {"failures": 3, "degraded": 1, "survivors": 3}

    def test_none_sample_keeps_previous(self):
        totals = {"survivors": 5}
        obs.merge_telemetry(totals, {"survivors": None})
        assert totals["survivors"] == 5


class TestObserveScope:
    def test_defaults_outside_any_scope(self):
        assert isinstance(obs.get_tracer(), NullTracer)
        assert obs.get_registry() is None

    def test_install_and_restore(self, tmp_path):
        registry = MetricsRegistry()
        with Tracer(tmp_path / "e.jsonl") as tracer:
            with obs.observe(tracer=tracer, registry=registry):
                assert obs.get_tracer() is tracer
                assert obs.get_registry() is registry
            assert isinstance(obs.get_tracer(), NullTracer)
            assert obs.get_registry() is None

    def test_mailbox_is_always_on(self):
        obs.take_executor_telemetry()  # drain any leftovers
        obs.publish_executor_telemetry({"failures": 1})
        obs.publish_executor_telemetry({"failures": 2})
        assert obs.take_executor_telemetry() == [
            {"failures": 1}, {"failures": 2},
        ]
        assert obs.take_executor_telemetry() == []


# ---------------------------------------------------------------------------
# The wall-clock-side contract
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["events", "full"])
def test_byte_identity_serial(tmp_path, monkeypatch, mode):
    monkeypatch.setenv("REPRO_OBS", "off")
    _run(SPEC, tmp_path / "off")
    monkeypatch.setenv("REPRO_OBS", mode)
    _run(SPEC, tmp_path / "on")
    assert _deterministic_bytes(tmp_path / "off") == (
        _deterministic_bytes(tmp_path / "on")
    )
    assert not (tmp_path / "off" / "events.jsonl").exists()
    assert (tmp_path / "on" / "events.jsonl").exists()
    assert (tmp_path / "on" / "metrics.json").exists() == (
        mode == "full"
    )
    assert validate_file(tmp_path / "on" / "events.jsonl") == []


def test_byte_identity_toggled_mid_resume(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "off")
    _run(SPEC, tmp_path / "base")
    expected = _deterministic_bytes(tmp_path / "base")

    seen = [0]

    def kill(_):
        seen[0] += 1
        if seen[0] == 3:
            raise _Killed()

    directory = tmp_path / "toggled"
    monkeypatch.setenv("REPRO_OBS", "events")
    with pytest.raises(_Killed):
        _run(SPEC, directory, on_checkpoint=kill)
    monkeypatch.setenv("REPRO_OBS", "full")
    CampaignRunner.resume(directory, dataset=build_mini_dataset()).run()
    assert _deterministic_bytes(directory) == expected
    # Both processes appended to one log, each under its own run id,
    # and the whole file still validates (open spans included).
    lines = (directory / "events.jsonl").read_text().splitlines()
    assert validate_events(lines) == []
    assert len({json.loads(line)["run"] for line in lines}) == 2


def test_byte_identity_distributed_under_faults(tmp_path, monkeypatch):
    spec = CampaignSpec(
        preset="mini",
        waves=2,
        phi=0.9,
        shards=3,
        executor="distributed",
        batch_size=1 << 12,
    )
    monkeypatch.setenv("REPRO_DIST_WORKERS", "2")
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    monkeypatch.setenv("REPRO_OBS", "off")
    _run(spec, tmp_path / "off")
    monkeypatch.setenv("REPRO_OBS", "full")
    monkeypatch.setenv("REPRO_FAULT_PLAN", "crash@1")
    _run(spec, tmp_path / "full")
    assert _deterministic_bytes(tmp_path / "off") == (
        _deterministic_bytes(tmp_path / "full")
    )
    assert validate_file(tmp_path / "full" / "events.jsonl") == []
    events = [
        json.loads(line)
        for line in (tmp_path / "full" / "events.jsonl")
        .read_text()
        .splitlines()
    ]
    types = {record["type"] for record in events}
    assert {"worker_spawn", "worker_connect", "shard_dispatch",
            "shard_result", "fault_armed", "worker_drop",
            "fault_fired"} <= types
    # The fleet's failure accounting survived into progress.json.
    progress = json.loads(
        (tmp_path / "full" / "progress.json").read_text()
    )
    telemetry = progress["executor_telemetry"]
    assert telemetry["failures"] >= 1
    assert telemetry["faults_armed"] >= 1
    # Worker stats shipped home landed in the metrics snapshot.
    metrics = json.loads(
        (tmp_path / "full" / "metrics.json").read_text()
    )
    assert any(name.startswith("worker.") for name in metrics)
    assert metrics["dist.bytes_in"]["value"] > 0
    assert metrics["dist.bytes_out"]["value"] > 0


def test_resume_seeds_cumulative_telemetry(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "off")
    seen = [0]

    def kill(_):
        seen[0] += 1
        if seen[0] == 2:
            raise _Killed()

    directory = tmp_path / "campaign"
    with pytest.raises(_Killed):
        _run(SPEC, directory, on_checkpoint=kill)
    # Pretend the killed run had accumulated fleet telemetry and spent
    # a wave retry; the resume must continue those counters, not reset
    # them (the distributed path exercises the merge end to end).
    progress = json.loads((directory / "progress.json").read_text())
    progress["wave_retries_used"] = 2
    progress["executor_telemetry"] = {"failures": 3, "respawns": 1}
    (directory / "progress.json").write_text(json.dumps(progress))
    runner = CampaignRunner.resume(
        directory, dataset=build_mini_dataset()
    )
    assert runner._retries_used == 2
    assert runner._telemetry_totals == {"failures": 3, "respawns": 1}
    runner.run()
    final = json.loads((directory / "progress.json").read_text())
    assert final["wave_retries_used"] == 2
    assert final["executor_telemetry"] == {
        "failures": 3, "respawns": 1,
    }


def test_fresh_run_clears_stale_observability(tmp_path, monkeypatch):
    from repro.orchestrator.checkpoint import CheckpointStore

    monkeypatch.setenv("REPRO_OBS", "events")
    directory = tmp_path / "campaign"
    _run(SPEC, directory)
    assert (directory / "events.jsonl").exists()
    store = CheckpointStore(directory)
    store.clear()
    assert not (directory / "events.jsonl").exists()
    assert not (directory / "progress.json").exists()
    assert not store.has_checkpoint()
    assert not store.journal_path.exists()
    assert not (directory / "status.json").exists()


# ---------------------------------------------------------------------------
# Introspection surfaces
# ---------------------------------------------------------------------------


def test_report_rollup_and_rendering(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "full")
    directory = tmp_path / "campaign"
    _run(SPEC, directory)
    rollup = load_rollup(directory)
    assert rollup["campaign"]["finished"] is True
    assert len(rollup["waves"]) == SPEC.waves
    assert all(row["seconds"] is not None for row in rollup["waves"])
    assert len(rollup["shards"]) == SPEC.waves * SPEC.shards
    assert rollup["events"]["total"] > 0
    assert rollup["metrics"]["campaign.checkpoints"]["value"] >= (
        SPEC.waves * SPEC.shards
    )
    json.dumps(rollup, allow_nan=False)
    text = render_report(rollup)
    assert "per-wave:" in text and "per-shard:" in text
    assert "finished" in text


def test_obs_cli_report_and_validate(tmp_path, monkeypatch, capsys):
    from repro.obs.__main__ import main as obs_main

    monkeypatch.setenv("REPRO_OBS", "events")
    directory = tmp_path / "campaign"
    _run(SPEC, directory)
    assert obs_main(["validate", "--dir", str(directory)]) == 0
    capsys.readouterr()
    assert obs_main(["report", "--dir", str(directory), "--json"]) == 0
    rollup = json.loads(capsys.readouterr().out)
    assert rollup == json.loads(json.dumps(rollup))

    # A tampered log fails validation with a non-zero exit.
    events = directory / "events.jsonl"
    events.write_text(
        events.read_text() + '{"not": "an event"}\n'
    )
    assert obs_main(["validate", "--events", str(events)]) == 1


def test_status_follow_replays_until_campaign_end(
    tmp_path, monkeypatch, capsys
):
    from repro.orchestrator.checkpoint import CheckpointStore
    from repro.orchestrator.cli import _follow_events

    monkeypatch.setenv("REPRO_OBS", "events")
    directory = tmp_path / "campaign"
    _run(SPEC, directory)
    # The campaign already ended, so the follower replays the log and
    # returns as soon as it sees the campaign span close.
    assert _follow_events(CheckpointStore(directory)) == 0
    out = capsys.readouterr().out
    assert "campaign" in out and "checkpoint" in out


def test_format_event_is_one_line():
    line = format_event(
        {
            "ts": 1754630000.125,
            "ev": "point",
            "type": "checkpoint",
            "data": {"wave": 1, "shard": 2},
        }
    )
    assert "\n" not in line
    assert "checkpoint" in line and "wave=1" in line and "shard=2" in line
