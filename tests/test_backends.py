"""Differential oracle for the counting-backend registry.

Every backend registered in :mod:`repro.bgp.backends` must agree
*exactly* with the pure-Python radix-trie reference on randomized
routing tables and address populations — this is the safety net that
makes swapping backends (by argument or ``$REPRO_COUNT_BACKEND``)
a no-risk operation.
"""

import numpy as np
import pytest

from repro.bgp.backends import (
    DEFAULT_BACKEND,
    ENV_VAR,
    available_backends,
    count_with_backend,
    get_backend,
    register_backend,
    resolve_backend_name,
)
from repro.bgp.table import (
    LESS_SPECIFIC,
    MORE_SPECIFIC,
    Partition,
    Prefix,
    RoutingTable,
)
from repro.census.addrset import AddressSet
from repro.core.density import count_with_trie
from repro.core.tass import TassStrategy


def _random_table(rng) -> RoutingTable:
    """A random forest of disjoint l-prefixes with nested children."""
    l_prefixes = []
    children = {}
    cursor = int(rng.integers(1, 90)) << 24
    for _ in range(int(rng.integers(3, 12))):
        length = int(rng.integers(12, 25))
        size = 1 << (32 - length)
        cursor = -(-cursor // size) * size  # align up
        parent = Prefix(cursor, length)
        l_prefixes.append(parent)
        cursor += size + int(rng.integers(0, 4)) * size
        if length <= 22 and rng.random() < 0.7:
            child = Prefix(parent.network, length + 2)
            children[parent] = [child]
            if rng.random() < 0.5:
                children[child] = [Prefix(child.network, length + 4)]
    return RoutingTable(l_prefixes, children)


def _random_addresses(rng, partition) -> np.ndarray:
    inside = np.concatenate(
        [
            partition.starts[i]
            + rng.integers(0, partition.sizes[i], int(rng.integers(0, 80)))
            for i in range(len(partition))
        ]
        + [np.zeros(0, dtype=np.int64)]
    )
    outside = rng.integers(0, 1 << 32, 40)
    return AddressSet(np.concatenate([inside, outside])).values


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("view", [LESS_SPECIFIC, MORE_SPECIFIC])
def test_all_backends_agree_with_trie_on_random_tables(seed, view):
    rng = np.random.default_rng(seed)
    partition = _random_table(rng).partition(view)
    values = _random_addresses(rng, partition)
    oracle = count_with_backend(
        partition.starts, partition.ends, values, "trie"
    )
    # The prefix-shaped trie reference agrees with the interval trie.
    assert np.array_equal(oracle, count_with_trie(values, partition))
    for name in available_backends():
        counts = count_with_backend(
            partition.starts, partition.ends, values, name
        )
        assert np.array_equal(counts, oracle), name


@pytest.mark.parametrize("seed", range(4))
def test_backends_agree_on_unaligned_intervals(seed):
    """Backends must handle arbitrary [start, end), not just CIDRs."""
    rng = np.random.default_rng(100 + seed)
    edges = np.sort(rng.choice(1 << 20, size=14, replace=False))
    starts, ends = edges[0::2], edges[1::2]
    values = AddressSet(rng.integers(0, 1 << 20, 3000)).values
    oracle = count_with_backend(starts, ends, values, "trie")
    for name in available_backends():
        got = count_with_backend(starts, ends, values, name)
        assert np.array_equal(got, oracle), name


@pytest.mark.parametrize("name", ["searchsorted", "bitmap", "trie"])
def test_backend_handles_empty_inputs(name):
    empty = np.empty(0, dtype=np.int64)
    assert count_with_backend(empty, empty, empty, name).tolist() == []
    starts = np.array([10], dtype=np.int64)
    ends = np.array([20], dtype=np.int64)
    assert count_with_backend(starts, ends, empty, name).tolist() == [0]


def test_registry_resolution(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert resolve_backend_name(None) == DEFAULT_BACKEND
    assert resolve_backend_name("trie") == "trie"
    assert {"searchsorted", "bitmap", "trie"} <= set(available_backends())
    with pytest.raises(ValueError, match="unknown counting backend"):
        get_backend("no-such-backend")
    # Callables pass straight through.
    fn = lambda s, e, v: np.zeros(len(s), dtype=np.int64)  # noqa: E731
    assert get_backend(fn) is fn


def test_env_var_selects_default_backend(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "bitmap")
    assert resolve_backend_name(None) == "bitmap"
    rng = np.random.default_rng(7)
    partition = _random_table(rng).partition(LESS_SPECIFIC)
    values = _random_addresses(rng, partition)
    via_env = partition.count_addresses(values)
    monkeypatch.delenv(ENV_VAR)
    assert np.array_equal(via_env, partition.count_addresses(values))
    monkeypatch.setenv(ENV_VAR, "no-such-backend")
    with pytest.raises(ValueError, match="unknown counting backend"):
        partition.count_addresses(values)


def test_backend_threads_through_strategy_and_partition():
    rng = np.random.default_rng(11)
    table = _random_table(rng)
    partition = table.partition(LESS_SPECIFIC)
    values = _random_addresses(rng, partition)
    baseline = TassStrategy(table, phi=0.9).plan(AddressSet(values))
    for name in available_backends():
        strategy = TassStrategy(table, phi=0.9, backend=name)
        selection = strategy.plan(AddressSet(values))
        assert np.array_equal(selection.indices, baseline.indices), name
        assert selection.count_in(values, backend=name) == baseline.count_in(
            values
        )
    # A table-level default backend is inherited by its partitions.
    pinned = RoutingTable(table.l_prefixes, count_backend="bitmap")
    assert pinned.partition(LESS_SPECIFIC).count_backend == "bitmap"
    assert np.array_equal(
        pinned.partition(LESS_SPECIFIC).count_addresses(values),
        partition.count_addresses(values),
    )


def test_table_level_backend_reaches_campaign_replay():
    """Selection.count_in inherits the partition's count_backend."""
    calls = []

    @register_backend("test-recording")
    def recording(starts, ends, values):
        calls.append(len(starts))
        return count_with_backend(starts, ends, values, "searchsorted")

    try:
        rng = np.random.default_rng(13)
        table = _random_table(rng)
        pinned = RoutingTable(table.l_prefixes, count_backend="test-recording")
        values = _random_addresses(rng, pinned.partition(LESS_SPECIFIC))
        selection = TassStrategy(pinned).plan(AddressSet(values))
        planning_calls = len(calls)
        assert planning_calls > 0  # plan counted through the pinned backend
        selection.count_in(values)  # replay must use the same backend
        assert len(calls) == planning_calls + 1
    finally:
        from repro.bgp import backends

        backends._REGISTRY.pop("test-recording", None)


def test_registering_a_custom_backend(monkeypatch):
    calls = []

    @register_backend("test-custom")
    def custom(starts, ends, values):
        calls.append(len(values))
        return count_with_backend(starts, ends, values, "searchsorted")

    try:
        partition = Partition.from_prefixes(
            [Prefix.from_cidr("10.0.0.0/24")]
        )
        values = np.array([Prefix.from_cidr("10.0.0.5/32").network])
        counts = partition.count_addresses(values, backend="test-custom")
        assert counts.tolist() == [1]
        assert calls == [1]
    finally:
        from repro.bgp import backends

        backends._REGISTRY.pop("test-custom", None)
